//! Shared fixtures for the cross-crate integration tests.

use pm_datagen::{Dataset, DatasetProfile};
use pm_model::UserId;
use pm_porder::Preference;

/// A small but non-trivial movie-like dataset used by several tests.
pub fn small_movie_dataset(seed: u64) -> Dataset {
    let profile = DatasetProfile::movie()
        .with_users(20)
        .with_objects(200)
        .with_interactions(50);
    Dataset::generate(&profile, seed)
}

/// A small publication-like dataset.
pub fn small_publication_dataset(seed: u64) -> Dataset {
    let profile = DatasetProfile::publication()
        .with_users(16)
        .with_objects(180)
        .with_interactions(40);
    Dataset::generate(&profile, seed)
}

/// Wraps every user into its own singleton cluster (virtual preference =
/// the user's own preference).
pub fn singleton_clusters(preferences: &[Preference]) -> Vec<(Vec<UserId>, Preference)> {
    preferences
        .iter()
        .enumerate()
        .map(|(i, p)| (vec![UserId::from(i)], p.clone()))
        .collect()
}

/// Puts all users into one cluster whose virtual preference is their exact
/// common preference relation.
pub fn one_cluster(preferences: &[Preference]) -> Vec<(Vec<UserId>, Preference)> {
    vec![(
        (0..preferences.len()).map(UserId::from).collect(),
        Preference::common_of(preferences.iter()),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_expected_sizes() {
        let movie = small_movie_dataset(1);
        assert_eq!(movie.num_users(), 20);
        assert_eq!(movie.num_objects(), 200);
        let publication = small_publication_dataset(1);
        assert_eq!(publication.num_users(), 16);
        let singles = singleton_clusters(&movie.preferences);
        assert_eq!(singles.len(), 20);
        let one = one_cluster(&movie.preferences);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].0.len(), 20);
    }
}
