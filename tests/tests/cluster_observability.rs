//! Observability contract of the coordinator: the cluster `METRICS`
//! exposition (the `pm_cluster_*` / `pm_coord_*` / `pm_node_*` families)
//! is wire contract, pinned by a golden file, and its skeleton is stable
//! across node counts — dashboards built against a 3-node cluster keep
//! working against 1 or 30.

use pm_coord::{spawn_node, Cluster, ClusterConfig, NodeHandle, NodeSpec, Topology};
use pm_engine::BackendSpec;

/// Stands up `n` bare nodes and a connected [`Cluster`] over them.
fn cluster_of(n: usize) -> (Vec<NodeHandle>, Cluster) {
    let spec = NodeSpec::new(BackendSpec::parse("baseline").unwrap(), 2);
    let nodes: Vec<NodeHandle> = (0..n).map(|_| spawn_node(&spec).unwrap()).collect();
    let topology = Topology::new(nodes.iter().map(|h| h.addr().to_owned()).collect()).unwrap();
    let cluster = Cluster::connect(&topology, ClusterConfig::default()).unwrap();
    (nodes, cluster)
}

/// Drives enough traffic that every family has a real observation:
/// registrations (node_users), replicated ingest (seq, backlog, rpc
/// latency), a routed read, and one error.
fn exercise(cluster: &mut Cluster) {
    let line = |cluster: &mut Cluster, line: &str| -> String {
        match cluster.handle(line) {
            pm_coord::Routed::Line(text) => text,
            other => panic!("unexpected routing for `{line}`: {other:?}"),
        }
    };
    for user in 0..4u32 {
        let r = line(cluster, &format!("REGISTER {user} 0>1,1>2;-;2>0;-"));
        assert!(r.starts_with("OK REGISTERED"), "{r}");
    }
    for i in 0..4 {
        let r = line(
            cluster,
            &format!("INGEST {},{},{},{}", i % 3, i % 2, i % 4, i % 5),
        );
        assert!(r.starts_with("OK INGESTED"), "{r}");
    }
    assert!(line(cluster, "FRONTIER 0").starts_with("OK"));
    assert!(line(cluster, "QUERY 0").starts_with("OK"));
    assert!(line(cluster, "STATS").starts_with("OK"));
    assert!(line(cluster, "HEALTH").starts_with("OK"));
    assert!(line(cluster, "GARBAGE").starts_with("ERR"));
}

/// Scrapes through the wire verb and validates the advertised length.
fn scrape(cluster: &mut Cluster) -> String {
    let response = match cluster.handle("METRICS") {
        pm_coord::Routed::Line(text) => text,
        other => panic!("unexpected routing for METRICS: {other:?}"),
    };
    let (header, body) = response.split_once('\n').expect("header + body");
    let bytes: usize = header
        .strip_prefix("OK METRICS ")
        .unwrap_or_else(|| panic!("bad METRICS header: {header}"))
        .parse()
        .expect("byte length");
    assert_eq!(body.len(), bytes, "header length must match the body");
    body.to_owned()
}

/// The structural skeleton (see `observability.rs`): comment lines kept,
/// values dropped, shape-dependent label values (`node`, `le`, plus the
/// build-info identity labels `version`/`nodes`) normalized to `*`, and
/// repeats dropped globally (a per-node histogram renders its whole
/// bucket/sum/count block once per node, so adjacent collapsing alone
/// would leave the skeleton node-count dependent) — identical for any
/// node count.
fn skeleton(exposition: &str) -> Vec<String> {
    let normalize = |name_and_labels: &str| -> String {
        let Some((name, labels)) = name_and_labels.split_once('{') else {
            return name_and_labels.to_owned();
        };
        let labels = labels.trim_end_matches('}');
        let normalized: Vec<String> = labels
            .split(',')
            .map(|pair| {
                let (key, _value) = pair.split_once('=').expect("k=\"v\" label");
                match key {
                    "node" | "le" | "version" | "nodes" => format!("{key}=\"*\""),
                    _ => pair.to_owned(),
                }
            })
            .collect();
        format!("{name}{{{}}}", normalized.join(","))
    };
    let mut lines: Vec<String> = Vec::new();
    for line in exposition.lines() {
        let entry = if line.starts_with('#') {
            line.to_owned()
        } else {
            let name_and_labels = line.rsplit_once(' ').map_or(line, |(head, _value)| head);
            normalize(name_and_labels)
        };
        if !lines.contains(&entry) {
            lines.push(entry);
        }
    }
    lines
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/cluster_metrics_exposition.golden"
);

#[test]
fn cluster_metrics_exposition_skeleton_matches_golden_file() {
    let (nodes, mut cluster) = cluster_of(3);
    exercise(&mut cluster);
    let skeleton = skeleton(&scrape(&mut cluster)).join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &skeleton).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        skeleton, golden,
        "cluster metric names / HELP / TYPE / label sets changed; if \
         intentional, regenerate with UPDATE_GOLDEN=1 and document the rename"
    );
    drop(cluster);
    for node in nodes {
        node.kill();
    }
}

#[test]
fn cluster_metrics_skeleton_is_stable_across_node_counts() {
    let reference = {
        let (nodes, mut cluster) = cluster_of(1);
        exercise(&mut cluster);
        let skeleton = skeleton(&scrape(&mut cluster));
        drop(cluster);
        for node in nodes {
            node.kill();
        }
        skeleton
    };
    let (nodes, mut cluster) = cluster_of(3);
    exercise(&mut cluster);
    assert_eq!(
        skeleton(&scrape(&mut cluster)),
        reference,
        "skeleton differs between 1-node and 3-node clusters"
    );
    drop(cluster);
    for node in nodes {
        node.kill();
    }
}

#[test]
fn cluster_exposition_carries_real_per_node_observations() {
    let (nodes, mut cluster) = cluster_of(3);
    exercise(&mut cluster);
    let body = scrape(&mut cluster);
    for node in 0..3 {
        assert!(
            body.contains(&format!("pm_node_up{{node=\"{node}\"}} 1")),
            "{body}"
        );
        assert!(
            body.contains(&format!("pm_node_rpc_ns_count{{node=\"{node}\"}}")),
            "{body}"
        );
    }
    assert!(body.contains("pm_cluster_nodes 3"), "{body}");
    assert!(body.contains("pm_cluster_seq 4"), "{body}");
    assert!(body.contains("pm_coord_request_errors_total 1"), "{body}");
    drop(cluster);
    for node in nodes {
        node.kill();
    }
}
