//! Property-based tests (proptest) of the core invariants:
//! strict-partial-order laws, the paper's theorems relating cluster and user
//! frontiers, and agreement between the incremental monitors and a naive
//! recompute-from-scratch oracle.

use proptest::prelude::*;

use pm_cluster::{Clustering, ExactMeasure};
use pm_core::{
    BaselineMonitor, BaselineSwMonitor, ContinuousMonitor, FilterThenVerifyMonitor, HistoryMode,
};
use pm_integration_tests::one_cluster;
use pm_model::{AttrId, Object, ObjectId, UserId, ValueId};
use pm_obs::LogHistogram;
use pm_porder::{
    naive_pareto_frontier, CompiledPreference, CompiledRelation, Dominance, HasseDiagram,
    Preference, Relation,
};

/// Asserts the two ISSUE invariants on a preference pair set: used by the
/// churn properties below to check that a cluster's common relation equals
/// the intersection of its members' relations on every attribute.
fn assert_common_is_intersection(
    label: &str,
    common: &Preference,
    members: &[UserId],
    preference_of: impl Fn(UserId) -> Preference,
) {
    let expected = Preference::common_of(
        members
            .iter()
            .map(|&m| preference_of(m))
            .collect::<Vec<_>>()
            .iter(),
    );
    let arity = expected.arity().max(common.arity());
    for attr in 0..arity {
        let attr = AttrId::from(attr);
        let pairs = |p: &Preference| -> std::collections::HashSet<(ValueId, ValueId)> {
            if attr.index() < p.arity() {
                p.relation(attr).pairs().collect()
            } else {
                Default::default()
            }
        };
        assert_eq!(
            pairs(common),
            pairs(&expected),
            "{label}: common relation of {members:?} on {attr} is not the intersection"
        );
    }
}

const DOMAIN: u32 = 6;
const ATTRS: usize = 3;

/// Strategy: an arbitrary edge list over a small domain. Edges that would
/// break the strict-partial-order laws are skipped at construction time,
/// which mirrors how relations are built from real data.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..20).prop_map(|edges| {
        let mut rel = Relation::new();
        for (x, y) in edges {
            let _ = rel.insert(ValueId::new(x), ValueId::new(y));
        }
        rel
    })
}

fn preference_strategy() -> impl Strategy<Value = Preference> {
    proptest::collection::vec(relation_strategy(), ATTRS).prop_map(Preference::from_relations)
}

fn objects_strategy(max: usize) -> impl Strategy<Value = Vec<Object>> {
    proptest::collection::vec(proptest::collection::vec(0..DOMAIN, ATTRS), 1..max).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, vals)| {
                    Object::new(
                        ObjectId::from(i),
                        vals.into_iter().map(ValueId::new).collect(),
                    )
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every constructed relation is a valid strict partial order.
    #[test]
    fn relations_are_strict_partial_orders(rel in relation_strategy()) {
        prop_assert!(rel.validate().is_ok());
        for (x, y) in rel.pairs() {
            prop_assert!(x != y);
            prop_assert!(!rel.prefers(y, x));
        }
    }

    /// Intersection of two relations is contained in both and is itself a
    /// strict partial order (Theorem 4.2).
    #[test]
    fn intersection_is_common_subrelation(a in relation_strategy(), b in relation_strategy()) {
        let common = a.intersection(&b);
        prop_assert!(common.validate().is_ok());
        for (x, y) in common.pairs() {
            prop_assert!(a.prefers(x, y) && b.prefers(x, y));
        }
        prop_assert_eq!(common.len(), a.intersection_size(&b));
        prop_assert_eq!(a.union_size(&b), a.len() + b.len() - common.len());
    }

    /// The Hasse diagram is a subgraph of the relation whose reachability
    /// (from the maximal values) covers every mentioned value.
    #[test]
    fn hasse_diagram_is_consistent(rel in relation_strategy()) {
        let hasse = HasseDiagram::of(&rel);
        for (x, y) in hasse.cover_edges() {
            prop_assert!(rel.prefers(x, y));
        }
        prop_assert!(hasse.edge_count() <= rel.len());
        for v in rel.values() {
            prop_assert!(hasse.distance_from_maximal(v).is_some());
            let w = hasse.weight(v);
            prop_assert!(w > 0.0 && w <= 1.0);
        }
        for &m in hasse.maximal_values() {
            prop_assert_eq!(hasse.distance_from_maximal(m), Some(0));
            prop_assert_eq!(hasse.weight(m), 1.0);
        }
    }

    /// Object dominance is antisymmetric and irreflexive.
    #[test]
    fn dominance_is_antisymmetric(pref in preference_strategy(), objects in objects_strategy(8)) {
        for a in &objects {
            prop_assert_eq!(pref.compare(a, a), Dominance::Identical);
            for b in &objects {
                let ab = pref.compare(a, b);
                let ba = pref.compare(b, a);
                prop_assert_eq!(ab, ba.flip());
            }
        }
    }

    /// The incremental baseline monitor agrees with the naive oracle.
    #[test]
    fn baseline_matches_naive_frontier(
        prefs in proptest::collection::vec(preference_strategy(), 1..4),
        objects in objects_strategy(24),
    ) {
        let mut monitor = BaselineMonitor::new(prefs.clone());
        for object in objects.clone() {
            monitor.process(object);
        }
        for (user, pref) in prefs.iter().enumerate() {
            let mut oracle = naive_pareto_frontier(pref, &objects);
            oracle.sort_unstable();
            prop_assert_eq!(monitor.frontier(UserId::from(user)), oracle);
        }
    }

    /// FilterThenVerify with one all-users cluster produces exactly the
    /// baseline's frontiers and target users (Lemma 4.6).
    #[test]
    fn filter_then_verify_equals_baseline(
        prefs in proptest::collection::vec(preference_strategy(), 1..4),
        objects in objects_strategy(20),
    ) {
        let mut baseline = BaselineMonitor::new(prefs.clone());
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(prefs.clone(), one_cluster(&prefs));
        for object in objects {
            let a = baseline.process(object.clone());
            let b = ftv.process(object);
            prop_assert_eq!(a.target_users, b.target_users);
        }
        for user in 0..prefs.len() {
            prop_assert_eq!(
                baseline.frontier(UserId::from(user)),
                ftv.frontier(UserId::from(user))
            );
        }
    }

    /// Theorem 4.5: the cluster frontier always contains every member's
    /// frontier.
    #[test]
    fn cluster_frontier_contains_member_frontiers(
        prefs in proptest::collection::vec(preference_strategy(), 2..4),
        objects in objects_strategy(20),
    ) {
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(prefs.clone(), one_cluster(&prefs));
        for object in objects {
            ftv.process(object);
            let pu = ftv.cluster_frontier(0);
            for user in 0..prefs.len() {
                for id in ftv.frontier(UserId::from(user)) {
                    prop_assert!(pu.contains(&id));
                }
            }
        }
    }

    /// The sliding-window baseline matches the oracle recomputed over the
    /// currently alive objects, at every step.
    #[test]
    fn sliding_baseline_matches_windowed_oracle(
        prefs in proptest::collection::vec(preference_strategy(), 1..3),
        objects in objects_strategy(24),
        window in 1usize..10,
    ) {
        let mut monitor = BaselineSwMonitor::new(prefs.clone(), window);
        for (i, object) in objects.iter().enumerate() {
            monitor.process(object.clone());
            let start = (i + 1).saturating_sub(window);
            let alive = &objects[start..=i];
            for (user, pref) in prefs.iter().enumerate() {
                let mut oracle = naive_pareto_frontier(pref, alive);
                oracle.sort_unstable();
                prop_assert_eq!(monitor.frontier(UserId::from(user)), oracle);
            }
        }
    }

    /// The per-user buffer always contains the per-user frontier
    /// (Def. 7.4) and only alive objects.
    #[test]
    fn sliding_buffer_contains_frontier(
        prefs in proptest::collection::vec(preference_strategy(), 1..3),
        objects in objects_strategy(20),
        window in 2usize..8,
    ) {
        let mut monitor = BaselineSwMonitor::new(prefs.clone(), window);
        for (i, object) in objects.iter().enumerate() {
            monitor.process(object.clone());
            let oldest_alive = (i + 1).saturating_sub(window) as u64;
            for user in 0..prefs.len() {
                let frontier = monitor.frontier(UserId::from(user));
                let buffer = monitor.buffer(UserId::from(user));
                for id in &frontier {
                    prop_assert!(buffer.contains(id));
                }
                for id in &buffer {
                    prop_assert!(id.raw() >= oldest_alive, "expired object in buffer");
                }
            }
        }
    }

    /// The bitset-compiled relation agrees with the hash-map relation on
    /// every value pair of the domain, plus size and round-trip.
    #[test]
    fn compiled_relation_agrees_with_relation(rel in relation_strategy()) {
        let compiled = CompiledRelation::compile(&rel);
        prop_assert_eq!(compiled.len(), rel.len());
        prop_assert_eq!(compiled.is_empty(), rel.is_empty());
        for x in 0..DOMAIN {
            for y in 0..DOMAIN {
                let (x, y) = (ValueId::new(x), ValueId::new(y));
                prop_assert_eq!(compiled.prefers(x, y), rel.prefers(x, y));
                prop_assert_eq!(compiled.comparable(x, y), rel.comparable(x, y));
            }
        }
        prop_assert_eq!(compiled.to_relation(), rel);
    }

    /// Compiled relations over a shared universe reproduce intersection,
    /// union and the bitwise-AND common relation of the hash-map form.
    #[test]
    fn compiled_intersection_agrees_with_relation(
        a in relation_strategy(),
        b in relation_strategy(),
    ) {
        let (va, vb) = (a.values(), b.values());
        let mut universe: Vec<ValueId> = va.union(&vb).copied().collect();
        universe.sort_unstable();
        let ca = CompiledRelation::compile_with_universe(&a, &universe);
        let cb = CompiledRelation::compile_with_universe(&b, &universe);
        prop_assert_eq!(ca.intersection_size(&cb), a.intersection_size(&b));
        prop_assert_eq!(ca.union_size(&cb), a.union_size(&b));
        prop_assert_eq!(ca.intersect(&cb).to_relation(), a.intersection(&b));
    }

    /// The compiled Hasse value weights match HasseDiagram's on every
    /// interned value (the weighted similarity measures rely on this).
    #[test]
    fn compiled_weights_agree_with_hasse(rel in relation_strategy()) {
        let compiled = CompiledRelation::compile(&rel);
        let hasse = HasseDiagram::of(&rel);
        let weights = compiled.value_weights();
        for (idx, &value) in compiled.universe().iter().enumerate() {
            prop_assert!(
                (weights[idx] - hasse.weight(value)).abs() < 1e-15,
                "weight mismatch at {}", value
            );
        }
    }

    /// The compiled preference's object comparison agrees with the
    /// hash-map preference on random objects, hence so does dominance.
    #[test]
    fn compiled_preference_compare_agrees(
        pref in preference_strategy(),
        objects in objects_strategy(10),
    ) {
        let compiled = CompiledPreference::compile(&pref);
        prop_assert_eq!(compiled.arity(), pref.arity());
        prop_assert_eq!(compiled.total_pairs(), pref.total_pairs());
        for a in &objects {
            for b in &objects {
                prop_assert_eq!(compiled.compare(a, b), pref.compare(a, b));
                prop_assert_eq!(compiled.dominates(a, b), pref.dominates(a, b));
            }
        }
        let verdicts = compiled.dominates_batch(&objects[0], objects.iter());
        for (b, verdict) in objects.iter().zip(verdicts) {
            prop_assert_eq!(verdict, pref.compare(&objects[0], b));
        }
    }

    /// Common preference relations: Preference::common_of is contained in
    /// every member preference on every attribute (Def. 4.1).
    #[test]
    fn common_preference_is_shared_by_all(prefs in proptest::collection::vec(preference_strategy(), 1..5)) {
        let common = Preference::common_of(prefs.iter());
        for attr in 0..common.arity() {
            let attr = AttrId::from(attr);
            for (x, y) in common.relation(attr).pairs() {
                for pref in &prefs {
                    prop_assert!(pref.prefers(attr, x, y));
                }
            }
            prop_assert!(common.relation(attr).validate().is_ok());
        }
    }

    /// History compaction never evicts an object that a full-history
    /// replay would place in any observed user's frontier (the ISSUE
    /// invariant), collapses only value-duplicates beyond that, and keeps
    /// both live frontiers and late-registration backfill exactly equal to
    /// the full stream for every observed preference.
    #[test]
    fn compaction_never_evicts_observed_frontier_objects(
        prefs in proptest::collection::vec(preference_strategy(), 1..4),
        objects in objects_strategy(40),
    ) {
        let mut monitor =
            BaselineMonitor::with_history(prefs.clone(), HistoryMode::Compact { cap: None });
        for object in objects.clone() {
            monitor.process(object);
        }
        monitor.compact_history_now();
        let retained = monitor.retained_history_ids();
        prop_assert_eq!(
            retained.len() as u64 + monitor.history_evicted(),
            objects.len() as u64
        );
        for (user, pref) in prefs.iter().enumerate() {
            let mut full = naive_pareto_frontier(pref, &objects);
            full.sort_unstable();
            for id in &full {
                prop_assert!(
                    retained.binary_search(id).is_ok(),
                    "compaction evicted frontier object {} of user {}", id, user
                );
            }
            // Live frontiers are independent of history retention.
            prop_assert_eq!(monitor.frontier(UserId::from(user)), full);
        }
        // Backfill with every observed preference replays to the exact
        // full-stream frontier from the compacted history alone.
        for pref in prefs.clone() {
            let added = monitor.add_user(pref.clone());
            let mut full = naive_pareto_frontier(&pref, &objects);
            full.sort_unstable();
            prop_assert_eq!(monitor.frontier(added), full);
        }
    }

    /// Interleaved ingest / add_user / update_user churn on a compacting
    /// history, with sweeps forced after every segment: as long as churn
    /// preferences stay inside the observed universe (they are drawn from
    /// the initial pool), every backfill and every live frontier equals
    /// the full-history replay.
    #[test]
    fn compacted_churn_backfill_stays_exact_for_seen_preferences(
        initial in proptest::collection::vec(preference_strategy(), 1..4),
        segments in proptest::collection::vec(
            (objects_strategy(10), 0u8..255, 0u8..2), 1..5),
    ) {
        let mut monitor =
            BaselineMonitor::with_history(initial.clone(), HistoryMode::Compact { cap: None });
        let mut prefs = initial.clone();
        let mut history: Vec<Object> = Vec::new();
        let mut next_obj = 0u64;
        for (objects, pick, op) in segments {
            for object in objects {
                let object = Object::new(ObjectId::new(next_obj), object.values().to_vec());
                next_obj += 1;
                monitor.process(object.clone());
                history.push(object);
            }
            monitor.compact_history_now();
            let pool_pref = initial[(pick as usize) % initial.len()].clone();
            let changed = if op == 0 {
                prefs.push(pool_pref.clone());
                monitor.add_user(pool_pref)
            } else {
                let user = UserId::from((pick as usize) % prefs.len());
                prefs[user.index()] = pool_pref.clone();
                monitor.update_user(user, pool_pref);
                user
            };
            let mut full = naive_pareto_frontier(&prefs[changed.index()], &history);
            full.sort_unstable();
            prop_assert_eq!(
                monitor.frontier(changed), full,
                "backfill of user {} diverged from full history", changed
            );
            // The invariant holds for every live user after every sweep.
            let retained = monitor.retained_history_ids();
            for (user, pref) in prefs.iter().enumerate() {
                for id in naive_pareto_frontier(pref, &history) {
                    prop_assert!(
                        retained.binary_search(&id).is_ok(),
                        "sweep evicted frontier object {} of user {}", id, user
                    );
                }
            }
        }
    }

    /// After a random insert/remove/update sequence, the incrementally
    /// maintained clustering still partitions the users, holds no empty
    /// cluster, and every cluster's common relation equals the intersection
    /// of its members' relations — in particular, an in-place UPDATE
    /// (stay-put re-AND-fold or local repair + re-insertion) preserves all
    /// three invariants.
    #[test]
    fn clustering_churn_keeps_common_relations_exact(
        initial in proptest::collection::vec(preference_strategy(), 0..5),
        ops in proptest::collection::vec((0u8..3, preference_strategy(), 0u8..255), 1..20),
        branch in 0usize..3,
    ) {
        let branch_cut = [0.0, 0.3, 100.0][branch];
        let mut clustering = Clustering::new(&initial, ExactMeasure::Jaccard, branch_cut);
        let mut live: Vec<(UserId, Preference)> = initial
            .iter()
            .enumerate()
            .map(|(i, p)| (UserId::from(i), p.clone()))
            .collect();
        let mut next_id = initial.len() as u32;
        for (op, pref, pick) in ops {
            if op == 0 || live.is_empty() {
                let user = UserId::new(next_id);
                next_id += 1;
                clustering.insert_user(user, &pref);
                live.push((user, pref));
            } else if op == 2 {
                // In-place preference update of a random live user.
                let idx = (pick as usize) % live.len();
                let user = live[idx].0;
                clustering.update_user(user, &pref);
                live[idx].1 = pref;
            } else {
                let idx = (pick as usize) % live.len();
                let (user, _) = live.swap_remove(idx);
                clustering.remove_user(user);
            }
            prop_assert_eq!(clustering.num_users(), live.len());
            let mut seen = std::collections::HashSet::new();
            for k in 0..clustering.num_clusters() {
                let members = clustering.members(k).to_vec();
                prop_assert!(!members.is_empty(), "cluster {} is empty", k);
                for &m in &members {
                    prop_assert!(seen.insert(m), "user {} in two clusters", m);
                }
                assert_common_is_intersection(
                    "clustering churn",
                    &clustering.common_preference(k),
                    &members,
                    |m| clustering.preference_of(m).expect("member stored").clone(),
                );
            }
            prop_assert_eq!(seen.len(), live.len());
        }
    }

    /// Interleaved ingest / add_user / update_user / remove_user on a
    /// FilterThenVerify monitor with a maintained clustering keeps every
    /// per-user frontier exactly equal to a fresh baseline over the same
    /// history (Lemma 4.6 under churn), and keeps the cluster invariants of
    /// the ISSUE: no empty cluster, common relation = intersection of
    /// members'.
    #[test]
    fn ftv_dynamic_membership_stays_exact(
        initial in proptest::collection::vec(preference_strategy(), 1..4),
        segments in proptest::collection::vec(
            (objects_strategy(8), preference_strategy(), 0u8..255, 0u8..4), 1..5),
        branch in 0usize..3,
    ) {
        let branch_cut = [0.0, 0.4, 100.0][branch];
        let clustering = Clustering::new(&initial, ExactMeasure::Jaccard, branch_cut);
        let mut ftv = FilterThenVerifyMonitor::with_clustering(initial.clone(), clustering);
        let mut prefs = initial;
        let mut history: Vec<Object> = Vec::new();
        let mut next_obj = 0u64;
        for (objects, new_pref, pick, op) in segments {
            for object in objects {
                let object = Object::new(ObjectId::new(next_obj), object.values().to_vec());
                next_obj += 1;
                ftv.process(object.clone());
                history.push(object);
            }
            if op == 2 {
                // In-place preference update of a random existing user: no
                // id changes, exactness must survive the cluster diff.
                let idx = (pick as usize) % prefs.len();
                ftv.update_user(UserId::from(idx), new_pref.clone());
                prefs[idx] = new_pref;
            } else {
                let added = ftv.add_user(new_pref.clone());
                prop_assert_eq!(added.index(), prefs.len());
                prefs.push(new_pref);
            }
            if op == 1 && prefs.len() > 1 {
                let idx = (pick as usize) % prefs.len();
                ftv.remove_user(UserId::from(idx));
                prefs.swap_remove(idx);
            }
            // Exactness: frontiers equal a fresh baseline replay.
            let mut baseline = BaselineMonitor::new(prefs.clone());
            for object in &history {
                baseline.process(object.clone());
            }
            for user in 0..prefs.len() {
                prop_assert_eq!(
                    ftv.frontier(UserId::from(user)),
                    baseline.frontier(UserId::from(user)),
                    "user {} after churn", user
                );
            }
            // Cluster invariants.
            let mut seen = std::collections::HashSet::new();
            for k in 0..ftv.num_clusters() {
                let members = ftv.cluster_members(k).to_vec();
                prop_assert!(!members.is_empty(), "cluster {} is empty", k);
                for &m in &members {
                    prop_assert!(seen.insert(m), "user {} in two clusters", m);
                }
                assert_common_is_intersection(
                    "ftv churn",
                    ftv.virtual_preference(k),
                    &members,
                    |m| ftv.preference(m).clone(),
                );
            }
            prop_assert_eq!(seen.len(), prefs.len());
        }
    }

    /// The lock-free log-bucket histogram honours its documented contract
    /// against an exact sorted reference, through record, snapshot *and*
    /// merge: counts and sums are exact, and every reported quantile is an
    /// upper bound on the true order statistic within the documented ≤2%
    /// relative error (1/64 bucket width; values below 64 are exact).
    #[test]
    fn log_histogram_quantiles_stay_within_relative_error_bound(
        // Right-shifting by a random amount spreads values across the whole
        // magnitude range instead of clustering near u64::MAX.
        left in proptest::collection::vec(
            (0..=u64::MAX, 0..64u32).prop_map(|(v, s)| v >> s), 1..200),
        right in proptest::collection::vec(
            (0..=u64::MAX, 0..64u32).prop_map(|(v, s)| v >> s), 0..200),
    ) {
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        for &v in &left {
            a.record(v);
        }
        for &v in &right {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let mut exact: Vec<u64> = left.iter().chain(&right).copied().collect();
        exact.sort_unstable();
        prop_assert_eq!(merged.count(), exact.len() as u64);
        let true_sum = exact.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(merged.sum(), true_sum);

        for q in [0.0f64, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            // Same rank rule the histogram documents: the ceil(q*n)-th
            // smallest observation, clamped into 1..=n.
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let reported = merged.quantile(q);
            prop_assert!(
                reported >= truth,
                "q={q}: reported {reported} below exact {truth}"
            );
            prop_assert!(
                (reported - truth) as f64 <= truth as f64 * 0.02 + 1.0,
                "q={q}: reported {reported} beyond 2% of exact {truth}"
            );
        }
    }
}
