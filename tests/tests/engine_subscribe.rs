//! Live frontier subscriptions over the readiness reactor.
//!
//! The central oracle: a subscriber that applies the `EVENT` delta stream
//! to its `OK SUBSCRIBED` snapshot must agree with a fresh `FRONTIER`
//! query at *every* point of an interleaved
//! `INGEST`/`EXPIRE`/`REGISTER`/`UPDATE`/`UNREGISTER` stream, on every
//! backend and shard count. The barrier trick making "every point"
//! testable: per-connection outboxes are FIFO, so once the control
//! connection has its response, a `HEALTH` round trip on the subscriber
//! connection flushes every event the op produced before the `OK HEALTH`
//! line.
//!
//! The satellites: `HELLO` negotiation and the binary frame mode, lagged
//! eviction under a tiny outbox bound, half-closed subscribers, malformed
//! frames, and a many-idle-subscribers smoke proving the reactor does not
//! spend a thread per connection.

use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pm_engine::reactor::{serve_with, ReactorConfig};
use pm_engine::{BackendSpec, EngineConfig, EngineService, ShardedEngine};
use pm_model::{AttrId, ValueId};
use pm_porder::Preference;

/// A chain preference over values `0..5` on both attributes, rotated by
/// `u` so users disagree about what dominates what.
fn chain_pref(u: usize) -> Preference {
    let mut p = Preference::new(2);
    for attr in 0..2u32 {
        let attr = AttrId::new(attr);
        let vals: Vec<u32> = (0..5).map(|i| (i + u as u32) % 5).collect();
        for w in vals.windows(2) {
            p.prefer(attr, ValueId::new(w[0]), ValueId::new(w[1]));
        }
    }
    p
}

/// Spawns a reactor-served engine on an ephemeral port.
fn spawn(backend: &str, shards: usize, users: usize, config: ReactorConfig) -> SocketAddr {
    let prefs: Vec<Preference> = (0..users).map(chain_pref).collect();
    let spec = BackendSpec::parse(backend).expect("valid backend");
    let engine = ShardedEngine::new(prefs, &EngineConfig::new(shards), &spec);
    let service = Arc::new(EngineService::new(engine, spec, 2, 4096));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve_with(listener, service, config));
    addr
}

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        // One write per request: a formatting write_fmt can split the line
        // across segments and trip Nagle / delayed-ACK stalls.
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end_matches(['\r', '\n']).to_owned()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line()
    }
}

/// Parses a comma-separated object-id list (`""` is empty).
fn parse_objects(list: &str) -> BTreeSet<u64> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("object id"))
        .collect()
}

type Frontiers = HashMap<u32, BTreeSet<u64>>;

/// Applies one `EVENT <user> +a,-b,...` line to the tracked frontiers.
fn apply_event(line: &str, state: &mut Frontiers) {
    let rest = line.strip_prefix("EVENT ").expect("event line");
    let (user, deltas) = rest.split_once(' ').expect("user and deltas");
    let user: u32 = user.parse().unwrap();
    let frontier = state.get_mut(&user).expect("subscribed user");
    for delta in deltas.split(',') {
        let (sign, object) = delta.split_at(1);
        let object: u64 = object.parse().unwrap();
        match sign {
            "+" => assert!(frontier.insert(object), "duplicate enter {line}"),
            "-" => assert!(frontier.remove(&object), "spurious leave {line}"),
            other => panic!("bad delta sign {other} in {line}"),
        }
    }
}

/// Sends a request on the subscriber connection, applying any `EVENT`
/// lines queued ahead of the response, and returns the response line.
fn sub_ask(sub: &mut Client, state: &mut Frontiers, request: &str) -> String {
    sub.send(request);
    loop {
        let line = sub.read_line();
        if line.starts_with("EVENT ") {
            apply_event(&line, state);
        } else {
            return line;
        }
    }
}

/// The FIFO barrier: after the control connection's op completed, a
/// `HEALTH` round trip on the subscriber connection delivers every event
/// the op produced.
fn barrier(sub: &mut Client, state: &mut Frontiers) {
    let line = sub_ask(sub, state, "HEALTH");
    assert!(line.starts_with("OK HEALTH"), "{line}");
}

/// Subscribes and seeds the tracked frontier from the snapshot.
fn subscribe(sub: &mut Client, state: &mut Frontiers, user: u32) {
    let line = sub_ask(sub, state, &format!("SUBSCRIBE {user}"));
    let prefix = format!("OK SUBSCRIBED {user} ");
    let snapshot = line
        .strip_prefix(&prefix)
        .unwrap_or_else(|| panic!("unexpected subscribe reply {line}"));
    state.insert(user, parse_objects(snapshot));
}

/// A tiny deterministic xorshift so the op stream needs no RNG crate.
fn next(rng: &mut u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng
}

fn run_oracle(backend: &str, shards: usize) {
    let ctx = format!("backend={backend} shards={shards}");
    let addr = spawn(backend, shards, 6, ReactorConfig::default());
    let mut ctl = Client::connect(addr);
    let mut sub = Client::connect(addr);
    let mut state: Frontiers = HashMap::new();
    for user in 0..4u32 {
        subscribe(&mut sub, &mut state, user);
    }

    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (shards as u64);
    let mut next_user = 6u32;
    let mut extras: Vec<u32> = Vec::new();
    for step in 0..60 {
        match step % 6 {
            0..=2 => {
                let rows: Vec<String> = (0..1 + next(&mut rng) % 3)
                    .map(|_| format!("{},{}", next(&mut rng) % 5, next(&mut rng) % 5))
                    .collect();
                let r = ctl.ask(&format!("INGEST {}", rows.join(";")));
                assert!(r.starts_with("OK INGESTED"), "{ctx}: {r}");
            }
            3 => {
                let r = ctl.ask("EXPIRE");
                assert!(r.starts_with("OK EXPIRED"), "{ctx}: {r}");
            }
            4 => {
                let user = next_user;
                next_user += 1;
                let rotate = (next(&mut rng) % 5) as u32;
                let chain: Vec<String> = (0..4)
                    .map(|i| format!("{}>{}", (i + rotate) % 5, (i + 1 + rotate) % 5))
                    .collect();
                let row = chain.join(",");
                let r = ctl.ask(&format!("REGISTER {user} {row};{row}"));
                assert!(
                    r.starts_with(&format!("OK REGISTERED {user} ")),
                    "{ctx}: {r}"
                );
                subscribe(&mut sub, &mut state, user);
                extras.push(user);
            }
            _ => {
                if extras.len() >= 2 {
                    let user = extras.remove(0);
                    let r = ctl.ask(&format!("UNREGISTER {user}"));
                    assert!(r.starts_with("OK UNREGISTERED"), "{ctx}: {r}");
                    barrier(&mut sub, &mut state);
                    // Unregistering empties the frontier via leave events.
                    assert!(
                        state[&user].is_empty(),
                        "{ctx}: stale frontier after UNREGISTER {user}: {:?}",
                        state[&user]
                    );
                    let r = sub_ask(&mut sub, &mut state, &format!("UNSUBSCRIBE {user}"));
                    assert_eq!(r, format!("OK UNSUBSCRIBED {user}"), "{ctx}");
                    state.remove(&user);
                } else {
                    let user = ((step / 6) % 4) as u32;
                    let rotate = (next(&mut rng) % 5) as u32;
                    let chain: Vec<String> = (0..4)
                        .map(|i| format!("{}>{}", (i + rotate) % 5, (i + 1 + rotate) % 5))
                        .collect();
                    let row = chain.join(",");
                    let r = ctl.ask(&format!("UPDATE {user} {row};{row}"));
                    assert!(r.starts_with(&format!("OK UPDATED {user} ")), "{ctx}: {r}");
                }
            }
        }
        barrier(&mut sub, &mut state);
        for (&user, tracked) in &state {
            let fresh = ctl.ask(&format!("FRONTIER {user}"));
            let snapshot = fresh
                .strip_prefix(&format!("OK FRONTIER {user} "))
                .unwrap_or_else(|| panic!("{ctx}: {fresh}"));
            assert_eq!(
                tracked,
                &parse_objects(snapshot),
                "{ctx} step {step}: subscriber view of user {user} diverged"
            );
        }
    }
}

/// The tentpole oracle: snapshot + delta stream == fresh query, at every
/// event, across the exact backends and shard counts.
#[test]
fn subscription_deltas_track_fresh_frontier_queries() {
    for backend in ["baseline", "ftv:0.4", "baseline-sw:12", "ftv-sw:0.4:12"] {
        for shards in [1usize, 2, 4, 8] {
            run_oracle(backend, shards);
        }
    }
}

#[test]
fn hello_and_subscription_prechecks_pin_their_wire_lines() {
    let addr = spawn("baseline", 2, 4, ReactorConfig::default());
    let mut c = Client::connect(addr);
    let hello = c.ask("HELLO");
    assert!(
        hello.starts_with("OK HELLO pm-server proto=text version="),
        "{hello}"
    );
    assert!(
        hello.contains("backend=baseline shards=2 arity=2"),
        "{hello}"
    );
    // Unknown capabilities answer ERR without killing the connection or
    // switching the mode.
    assert_eq!(
        c.ask("HELLO gzip"),
        "ERR unknown capability `gzip` (expected text, frame or node)"
    );
    assert!(c.ask("HEALTH").starts_with("OK HEALTH"), "still text mode");
    // Subscription prechecks are per-connection reactor state.
    assert_eq!(c.ask("SUBSCRIBE 99"), "ERR unknown user 99");
    assert_eq!(c.ask("SUBSCRIBE 1"), "OK SUBSCRIBED 1 ");
    assert_eq!(c.ask("SUBSCRIBE 1"), "ERR already subscribed to user 1");
    assert_eq!(c.ask("UNSUBSCRIBE 2"), "ERR not subscribed to user 2");
    assert_eq!(c.ask("UNSUBSCRIBE 1"), "OK UNSUBSCRIBED 1");
    assert_eq!(c.ask("UNSUBSCRIBE 1"), "ERR not subscribed to user 1");
    assert_eq!(c.ask("QUIT"), "OK BYE");
    let mut rest = String::new();
    assert_eq!(c.reader.read_line(&mut rest).unwrap(), 0, "EOF after BYE");
}

/// Writes one client→server frame: `[u32 BE length][UTF-8 request line]`.
fn send_frame(stream: &mut TcpStream, line: &str) {
    let mut frame = Vec::with_capacity(4 + line.len());
    frame.extend_from_slice(&(line.len() as u32).to_be_bytes());
    frame.extend_from_slice(line.as_bytes());
    stream.write_all(&frame).expect("send frame");
}

/// Reads one server→client frame, returning `(kind, payload)`.
fn read_frame(reader: &mut impl Read) -> (u8, Vec<u8>) {
    let mut len = [0u8; 4];
    reader.read_exact(&mut len).expect("frame length");
    let len = u32::from_be_bytes(len) as usize;
    assert!(len >= 1, "frame must carry a kind byte");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("frame body");
    (body[0], body[1..].to_vec())
}

#[test]
fn frame_mode_carries_subscriptions_and_events() {
    let addr = spawn("baseline", 2, 4, ReactorConfig::default());
    let mut sub = Client::connect(addr);
    // The HELLO answer itself still arrives in the old (text) mode.
    let hello = sub.ask("HELLO frame");
    assert!(
        hello.starts_with("OK HELLO pm-server proto=frame version="),
        "{hello}"
    );

    send_frame(&mut sub.stream, "SUBSCRIBE 1");
    let (kind, payload) = read_frame(&mut sub.reader);
    assert_eq!(kind, 12, "Subscribed frame");
    assert_eq!(&payload[..4], &1u32.to_be_bytes(), "user id");
    assert_eq!(&payload[4..8], &0u32.to_be_bytes(), "empty snapshot");

    // The first object ever enters every frontier: the subscriber gets an
    // Event frame, fenced by a Health frame via the FIFO barrier.
    let mut ctl = Client::connect(addr);
    assert!(ctl.ask("INGEST 3,4").starts_with("OK INGESTED"));
    send_frame(&mut sub.stream, "HEALTH");
    let (kind, payload) = read_frame(&mut sub.reader);
    assert_eq!(kind, 15, "Event frame");
    assert_eq!(&payload[..4], &1u32.to_be_bytes(), "user id");
    assert_eq!(&payload[4..8], &1u32.to_be_bytes(), "one delta");
    assert_eq!(payload[8], 1, "entered");
    assert_eq!(&payload[9..17], &0u64.to_be_bytes(), "object id");
    let (kind, _) = read_frame(&mut sub.reader);
    assert_eq!(kind, 10, "Health frame");

    // QUIT answers a Bye frame, then the connection closes.
    send_frame(&mut sub.stream, "QUIT");
    let (kind, payload) = read_frame(&mut sub.reader);
    assert_eq!(kind, 14, "Bye frame");
    assert!(payload.is_empty());
    let mut rest = Vec::new();
    assert_eq!(sub.reader.read_to_end(&mut rest).unwrap(), 0, "EOF");
}

#[test]
fn malformed_frames_answer_err_and_unframeable_input_closes() {
    let addr = spawn(
        "baseline",
        1,
        2,
        ReactorConfig {
            max_outbox: 1 << 20,
            max_line: 1024,
        },
    );
    let mut c = Client::connect(addr);
    assert!(c.ask("HELLO frame").starts_with("OK HELLO"));

    // Non-UTF-8 payload: an ERR frame, and the connection keeps serving.
    c.stream.write_all(&2u32.to_be_bytes()).unwrap();
    c.stream.write_all(&[0xff, 0xfe]).unwrap();
    let (kind, payload) = read_frame(&mut c.reader);
    assert_eq!(kind, 0);
    assert_eq!(payload, b"frame payload is not valid UTF-8");
    send_frame(&mut c.stream, "HEALTH");
    let (kind, _) = read_frame(&mut c.reader);
    assert_eq!(kind, 10, "recovered after the bad frame");

    // A frame longer than max_line has no resync point: terminal ERR, EOF.
    c.stream.write_all(&4096u32.to_be_bytes()).unwrap();
    let (kind, payload) = read_frame(&mut c.reader);
    assert_eq!(kind, 0);
    assert!(
        String::from_utf8_lossy(&payload).contains("exceeds"),
        "{payload:?}"
    );
    let mut rest = Vec::new();
    assert_eq!(c.reader.read_to_end(&mut rest).unwrap(), 0, "EOF");
}

#[test]
fn half_closed_subscriber_keeps_receiving_events() {
    let addr = spawn("baseline", 1, 2, ReactorConfig::default());
    let mut sub = Client::connect(addr);
    assert_eq!(sub.ask("SUBSCRIBE 0"), "OK SUBSCRIBED 0 ");
    // The subscriber is done talking; its event stream must survive.
    sub.stream.shutdown(Shutdown::Write).unwrap();

    let mut ctl = Client::connect(addr);
    assert!(ctl.ask("INGEST 3,4").starts_with("OK INGESTED"));
    assert_eq!(sub.read_line(), "EVENT 0 +0");

    // Full close: the next fan-out write fails and the reactor drops the
    // connection without disturbing anyone else.
    drop(sub);
    assert!(ctl.ask("INGEST 2,3").starts_with("OK INGESTED"));
    assert!(ctl.ask("INGEST 1,2").starts_with("OK INGESTED"));
    assert!(ctl.ask("HEALTH").starts_with("OK HEALTH"));
}

#[test]
fn lagged_subscribers_are_evicted_with_terminal_err() {
    // 64 subscribed users on one connection multiply every arrival into 64
    // events; a tiny outbox bound plus an unread socket must trip the
    // eviction rather than buffer without limit.
    let users = 64;
    let addr = spawn(
        "baseline-sw:4",
        1,
        users,
        ReactorConfig {
            max_outbox: 1024,
            max_line: 16 << 20,
        },
    );
    let mut sub = Client::connect(addr);
    for user in 0..users as u32 {
        assert!(sub
            .ask(&format!("SUBSCRIBE {user}"))
            .starts_with("OK SUBSCRIBED"));
    }

    let mut ctl = Client::connect(addr);
    let row = "0,1;1,2;2,3;3,4;4,0";
    for _ in 0..2_000 {
        assert!(ctl.ask(&format!("INGEST {row}")).starts_with("OK INGESTED"));
    }

    // The subscriber now reads everything it was sent: a prefix of the
    // event stream, then the terminal eviction notice, then EOF.
    let mut lagged = false;
    loop {
        let mut line = String::new();
        if sub.reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim_end();
        if line == "ERR lagged" {
            lagged = true;
        } else {
            assert!(line.starts_with("EVENT "), "{line}");
            assert!(!lagged, "no events after the terminal ERR");
        }
    }
    assert!(lagged, "subscriber was never evicted");

    // The engine survived and reports the eviction in its gauges.
    let metrics = ctl.ask("METRICS");
    let len: usize = metrics
        .strip_prefix("OK METRICS ")
        .expect("metrics header")
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    ctl.reader.read_exact(&mut body).unwrap();
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("\npm_subscribers 0\n"), "subscribers gauge");
}

/// One reactor thread, not one thread per connection: thousands of idle
/// subscribers must not grow the process' thread count.
#[cfg(target_os = "linux")]
#[test]
fn idle_subscriber_army_needs_no_extra_threads() {
    // Two fds per subscriber (client + server end); scale to the limit the
    // environment actually grants.
    let limit = pm_reactor::raise_nofile_limit(25_000).unwrap_or(1024);
    let subscribers = 10_000.min((limit.saturating_sub(500) / 2) as usize);
    assert!(
        subscribers >= 100,
        "fd limit too low to say anything: {limit}"
    );

    let addr = spawn("baseline", 2, 4, ReactorConfig::default());
    let mut army: Vec<TcpStream> = Vec::with_capacity(subscribers);
    for _ in 0..subscribers {
        let mut stream = TcpStream::connect(addr).expect("connect subscriber");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(b"SUBSCRIBE 0\n").unwrap();
        let mut byte = [0u8; 1];
        let mut line = Vec::new();
        while byte[0] != b'\n' {
            stream.read_exact(&mut byte).unwrap();
            line.push(byte[0]);
        }
        assert!(line.starts_with(b"OK SUBSCRIBED 0"), "{line:?}");
        army.push(stream);
    }

    let threads: usize = std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .unwrap();
    assert!(
        threads < 64,
        "{subscribers} subscribers should not need {threads} threads"
    );

    // The army is live, not just parked: everyone gets the first arrival.
    let mut ctl = Client::connect(addr);
    assert!(ctl.ask("INGEST 3,4").starts_with("OK INGESTED"));
    for index in [0, subscribers - 1] {
        let stream = &mut army[index];
        let mut byte = [0u8; 1];
        let mut line = Vec::new();
        while byte[0] != b'\n' {
            stream.read_exact(&mut byte).unwrap();
            line.push(byte[0]);
        }
        assert_eq!(&line[..], b"EVENT 0 +0\n");
    }
}
