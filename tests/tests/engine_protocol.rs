//! Protocol edge cases of the `pm-server` serving layer: malformed
//! requests, empty batches, unknown commands and oversized attribute lists
//! must all come back as `ERR` lines — never by killing the connection or
//! the engine — and the connection must keep serving valid requests
//! afterwards, both through [`EngineService`] directly and over real TCP.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pm_engine::server::serve;
use pm_engine::{BackendSpec, EngineConfig, EngineService, ShardedEngine};
use pm_integration_tests::small_movie_dataset;

/// Arity of the movie schema used by all tests here.
const ARITY: usize = 4;

fn movie_service(backend: &str) -> EngineService {
    let dataset = small_movie_dataset(7);
    assert_eq!(dataset.dimensions(), ARITY);
    let spec = BackendSpec::parse(backend).expect("valid backend");
    let engine = ShardedEngine::new(dataset.preferences, &EngineConfig::new(2), &spec);
    EngineService::new(engine, spec, ARITY, 64)
}

/// A 2-user, 2-attribute service whose users share the chain preference
/// `2 ≻ 1 ≻ 0` on both attributes — domination is then certain for every
/// registered user, which makes compaction sweeps deterministic.
fn chain_service(backend: &str) -> EngineService {
    let prefs: Vec<pm_porder::Preference> = (0..2)
        .map(|_| {
            let mut p = pm_porder::Preference::new(2);
            for attr in 0..2u32 {
                let attr = pm_model::AttrId::new(attr);
                p.prefer(attr, pm_model::ValueId::new(2), pm_model::ValueId::new(1));
                p.prefer(attr, pm_model::ValueId::new(1), pm_model::ValueId::new(0));
            }
            p
        })
        .collect();
    let spec = BackendSpec::parse(backend).expect("valid backend");
    let engine = ShardedEngine::new(prefs, &EngineConfig::new(2), &spec);
    EngineService::new(engine, spec, 2, 64)
}

/// Pulls one `key=` field out of a STATS response line.
fn stats_field<'a>(stats: &'a str, key: &str) -> &'a str {
    stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix(key))
        .unwrap_or_else(|| panic!("STATS lacks {key}: {stats}"))
}

#[test]
fn stats_reports_retained_history_per_shard() {
    // Unlimited append-only history: every shard retains every arrival.
    let svc = chain_service("baseline");
    for i in 0..10 {
        let r = svc.respond_line(&format!("INGEST {},{}", i % 3, i % 3));
        assert!(r.starts_with("OK INGESTED"), "{r}");
    }
    let stats = svc.respond_line("STATS");
    assert_eq!(stats_field(&stats, "history_objects="), "10,10", "{stats}");
    assert_eq!(stats_field(&stats, "history_saved="), "0,0", "{stats}");

    // Truncating cap: the newest 4 objects survive, 6 were dropped.
    let capped = chain_service("baseline:4");
    for i in 0..10 {
        capped.respond_line(&format!("INGEST {},{}", i % 3, i % 3));
    }
    let stats = capped.respond_line("STATS");
    assert_eq!(stats_field(&stats, "history_objects="), "4,4", "{stats}");
    assert_eq!(stats_field(&stats, "history_saved="), "6,6", "{stats}");

    // Sliding backends keep no backfill history (the window is the state).
    let sliding = chain_service("baseline-sw:4");
    for i in 0..10 {
        sliding.respond_line(&format!("INGEST {},{}", i % 3, i % 3));
    }
    let stats = sliding.respond_line("STATS");
    assert_eq!(stats_field(&stats, "history_objects="), "0,0", "{stats}");
}

#[test]
fn compact_backend_saves_history_and_keeps_backfill_exact_over_protocol() {
    let svc = chain_service("ftv:0.4:compact");
    let reference = chain_service("ftv:0.4");
    // 150 batches of `0,0;1,1` (dominated) and one final `2,2` (dominating):
    // past the sweep interval the dominated vectors are evicted — every
    // registered user agrees they can never re-enter a frontier.
    for _ in 0..150 {
        assert!(svc.respond_line("INGEST 0,0;1,1").starts_with("OK"));
        assert!(reference.respond_line("INGEST 0,0;1,1").starts_with("OK"));
    }
    assert!(svc.respond_line("INGEST 2,2").starts_with("OK"));
    assert!(reference.respond_line("INGEST 2,2").starts_with("OK"));
    let stats = svc.respond_line("STATS");
    let retained: u64 = stats_field(&stats, "history_objects=")
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let saved: u64 = stats_field(&stats, "history_saved=")
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(retained < 301, "compaction never kicked in: {stats}");
    assert!(saved > 0, "{stats}");
    assert_eq!(retained + saved, 301, "{stats}");
    let full = reference.respond_line("STATS");
    assert_eq!(stats_field(&full, "history_objects="), "301,301", "{full}");
    // A late registration with a seen preference backfills identically on
    // the compacted and the full-history service.
    let register = "REGISTER 9 2>1,1>0;2>1,1>0";
    assert!(svc.respond_line(register).starts_with("OK REGISTERED 9"));
    assert!(reference
        .respond_line(register)
        .starts_with("OK REGISTERED 9"));
    assert_eq!(
        svc.respond_line("FRONTIER 9"),
        reference.respond_line("FRONTIER 9"),
        "compacted backfill diverged from full history"
    );
    // The compact spec round-trips through HEALTH for observability.
    assert!(
        svc.respond_line("HEALTH")
            .contains("backend=ftv:0.4:compact"),
        "{}",
        svc.respond_line("HEALTH")
    );
}

#[test]
fn compact_hard_cap_is_visible_and_service_survives() {
    let svc = chain_service("baseline:compact:16");
    for i in 0..40 {
        assert!(svc
            .respond_line(&format!("INGEST {},{}", i % 3, (i + 1) % 3))
            .starts_with("OK"));
    }
    let stats = svc.respond_line("STATS");
    for retained in stats_field(&stats, "history_objects=").split(',') {
        let retained: u64 = retained.parse().unwrap();
        assert!(retained <= 16, "hard cap exceeded: {stats}");
    }
    // Best-effort backfill still serves without disturbing the connection.
    assert!(svc
        .respond_line("REGISTER 7 0>1;1>0")
        .starts_with("OK REGISTERED 7"));
    assert!(svc.respond_line("FRONTIER 7").starts_with("OK FRONTIER 7"));
}

#[test]
fn malformed_ingest_lines_return_errors() {
    let svc = movie_service("baseline");
    for line in [
        "INGEST",           // no rows at all
        "INGEST ",          // whitespace only
        "INGEST a,b,c,d",   // non-numeric values
        "INGEST 1,2,3,4;",  // trailing empty row
        "INGEST ;1,2,3,4",  // leading empty row
        "INGEST 1,,3,4",    // empty value inside a row
        "INGEST 1,2,3,4;x", // second row malformed
        "INGEST -1,2,3,4",  // negative value
        "INGEST 1 2 3 4",   // wrong separator
    ] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // The service still ingests a valid batch afterwards.
    assert!(svc
        .respond_line("INGEST 0,0,0,0")
        .starts_with("OK INGESTED 1"));
}

#[test]
fn oversized_and_undersized_attribute_lists_are_rejected() {
    let svc = movie_service("baseline");
    // One value too many, one too few, and a wildly oversized row.
    let huge = vec!["1"; 10_000].join(",");
    for line in [
        "INGEST 1,2,3,4,5".to_owned(),
        "INGEST 1,2,3".to_owned(),
        format!("INGEST {huge}"),
        // A valid row followed by an oversized one: the whole batch must be
        // rejected atomically, before any id is assigned.
        "INGEST 1,2,3,4;1,2,3,4,5".to_owned(),
    ] {
        let response = svc.respond_line(&line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // Batch rejection assigned no ids: the next accepted object is o0.
    let ok = svc.respond_line("INGEST 0,1,2,3");
    assert!(ok.starts_with("OK INGESTED 1 0:"), "{ok}");
}

#[test]
fn malformed_query_and_frontier_arguments_are_errors() {
    let svc = movie_service("baseline");
    for line in [
        "QUERY",         // missing id
        "QUERY abc",     // non-numeric
        "QUERY o",       // prefix without digits
        "QUERY -3",      // negative
        "QUERY 1 2",     // trailing garbage
        "FRONTIER",      // missing id
        "FRONTIER oops", // non-numeric
        "FRONTIER c",    // prefix without digits
    ] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // Well-formed but unknown ids are errors too, not panics.
    assert!(svc.respond_line("QUERY 999999").starts_with("ERR"));
    assert!(svc.respond_line("FRONTIER 999999").starts_with("ERR"));
}

#[test]
fn unknown_commands_and_bad_arity_verbs_are_errors() {
    let svc = movie_service("baseline-sw:16");
    for line in [
        "BOGUS",
        "INGESTT 1,2,3,4",
        "EXPIRE now",
        "STATS извините", // non-ASCII argument to a nullary verb
        "QUIT QUIT",
    ] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // None of that disturbed the engine: it still answers health checks.
    assert!(svc.respond_line("HEALTH").starts_with("OK HEALTH"));
}

#[test]
fn tcp_connection_survives_a_barrage_of_garbage() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let svc = Arc::new(movie_service("ftv:0.4"));
    let server_svc = Arc::clone(&svc);
    std::thread::spawn(move || serve(listener, server_svc));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut ask = |req: &str| -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed on {req:?}");
        line.trim_end().to_owned()
    };

    let huge_row = vec!["9"; 4_096].join(",");
    let garbage = [
        "GARBAGE VERB",
        "INGEST x,y,z,w",
        "INGEST 1,2,3,4,5,6,7,8",
        "QUERY not-an-id",
        "FRONTIER ☃",
        &huge_row, // a raw value row with no verb at all
    ];
    for (i, req) in garbage.iter().enumerate() {
        let response = ask(req);
        assert!(response.starts_with("ERR"), "garbage #{i} -> {response}");
    }
    // After all of that, the same connection still works end to end.
    assert!(ask("INGEST 0,1,2,3").starts_with("OK INGESTED 1"));
    assert!(ask("QUERY 0").starts_with("OK QUERY 0"));
    assert!(ask("FRONTIER 0").starts_with("OK FRONTIER 0"));
    assert!(ask("STATS").contains("ingested=1"));
    assert_eq!(ask("QUIT"), "OK BYE");
}

#[test]
fn malformed_register_lines_return_errors() {
    let svc = movie_service("baseline");
    for line in [
        "REGISTER",                  // no arguments at all
        "REGISTER 5",                // user id but no preference rows
        "REGISTER x 0>1;;;",         // bad user id
        "REGISTER 5 0>1",            // 1 row, schema has 4 attributes
        "REGISTER 5 0>1;;;;;",       // 6 rows, schema has 4
        "REGISTER 5 0-1;;;",         // tuple without '>'
        "REGISTER 5 a>b;;;",         // non-numeric values
        "REGISTER 5 0>1,;;;",        // dangling comma
        "REGISTER 5 1>1;;;",         // reflexive tuple (non-canonical)
        "REGISTER 5 0>1,1>0;;;",     // cyclic tuples (non-canonical)
        "REGISTER 5 0>1,1>2,2>0;;;", // longer cycle via closure
    ] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // The dataset registers users 0..19 up front: duplicates are rejected.
    let dup = svc.respond_line("REGISTER 5 0>1;;;");
    assert!(dup.starts_with("ERR user 5 is already registered"), "{dup}");
    // None of that registered anyone or killed the engine.
    assert!(svc
        .respond_line("FRONTIER 25")
        .starts_with("ERR unknown user"));
    let ok = svc.respond_line("REGISTER 25 0>1;-;-;2>0");
    assert!(ok.starts_with("OK REGISTERED 25 shard="), "{ok}");
    assert!(svc
        .respond_line("FRONTIER 25")
        .starts_with("OK FRONTIER 25"));
}

#[test]
fn malformed_update_lines_return_errors() {
    let svc = movie_service("ftv:0.4");
    for line in [
        "UPDATE",                  // no arguments at all
        "UPDATE 5",                // user id but no preference rows
        "UPDATE x 0>1;;;",         // bad user id
        "UPDATE 5 0>1",            // 1 row, schema has 4 attributes
        "UPDATE 5 0>1;;;;;",       // 6 rows, schema has 4
        "UPDATE 5 0-1;;;",         // tuple without '>'
        "UPDATE 5 a>b;;;",         // non-numeric values
        "UPDATE 5 0>1,;;;",        // dangling comma
        "UPDATE 5 1>1;;;",         // reflexive tuple (non-canonical)
        "UPDATE 5 0>1,1>0;;;",     // cyclic tuples (non-canonical)
        "UPDATE 5 0>1,1>2,2>0;;;", // longer cycle via closure
        "UPDATE 99 0>1;;;",        // well-formed but unknown user
    ] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // None of that changed anyone or killed the engine: a genuine update on
    // a registered user still works, in place.
    let ok = svc.respond_line("UPDATE 5 0>1;-;-;2>0");
    assert!(ok.starts_with("OK UPDATED 5 shard="), "{ok}");
    assert!(svc.respond_line("FRONTIER 5").starts_with("OK FRONTIER 5"));
    assert!(svc.respond_line("HEALTH").contains("users=20"));
}

#[test]
fn update_churn_over_tcp_is_observable_in_stats() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let svc = Arc::new(movie_service("baseline"));
    let server_svc = Arc::clone(&svc);
    std::thread::spawn(move || serve(listener, server_svc));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut ask = |req: &str| -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed on {req:?}");
        line.trim_end().to_owned()
    };

    let before = ask("STATS");
    assert!(before.contains("users=20"), "{before}");
    assert!(before.contains("updates=0"), "{before}");
    let shard_users_before = before
        .split_whitespace()
        .find(|f| f.starts_with("shard_users="))
        .expect("STATS reports shard_users=")
        .to_owned();
    // Two in-place updates: the user count and per-shard split must not
    // move, while the updates counter does.
    assert!(ask("UPDATE 3 0>1;-;-;-").starts_with("OK UPDATED 3"));
    assert!(ask("UPDATE 3 -;1>0;-;-").starts_with("OK UPDATED 3"));
    assert!(ask("INGEST 0,0,0,0").starts_with("OK INGESTED 1"));
    let after = ask("STATS");
    assert!(after.contains("users=20"), "{after}");
    assert!(after.contains("updates=2"), "{after}");
    assert!(after.contains(&shard_users_before), "{after}");
    // Malformed updates in between never kill the connection.
    assert!(ask("UPDATE 999 0>1;-;-;-").starts_with("ERR"));
    assert!(ask("FRONTIER 3").starts_with("OK FRONTIER 3"));
    assert_eq!(ask("QUIT"), "OK BYE");
}

#[test]
fn unregister_of_unknown_users_is_an_error_not_fatal() {
    let svc = movie_service("ftv-sw:0.4:16");
    for line in ["UNREGISTER", "UNREGISTER nope", "UNREGISTER 9999"] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // A real unregister works once, then errors on repeat.
    assert_eq!(svc.respond_line("UNREGISTER 3"), "OK UNREGISTERED 3");
    assert!(svc
        .respond_line("UNREGISTER 3")
        .starts_with("ERR user 3 is not registered"));
    // The connection and engine keep serving.
    assert!(svc
        .respond_line("INGEST 0,1,2,3")
        .starts_with("OK INGESTED 1"));
    assert!(svc
        .respond_line("FRONTIER 3")
        .starts_with("ERR unknown user"));
    assert!(svc.respond_line("HEALTH").starts_with("OK HEALTH"));
}

#[test]
fn register_churn_over_tcp_survives_and_is_observable() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let svc = Arc::new(movie_service("baseline-sw:32"));
    let server_svc = Arc::clone(&svc);
    std::thread::spawn(move || serve(listener, server_svc));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut ask = |req: &str| -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed on {req:?}");
        line.trim_end().to_owned()
    };

    // STATS reports the per-shard live user counts before and after churn.
    let before = ask("STATS");
    assert!(before.contains("users=20"), "{before}");
    assert!(before.contains("shard_users="), "{before}");
    assert!(ask("REGISTER 40 0>1;-;-;-").starts_with("OK REGISTERED 40"));
    assert!(ask("REGISTER 41 -;1>0;-;-").starts_with("OK REGISTERED 41"));
    assert!(ask("INGEST 0,0,0,0;1,1,1,1").starts_with("OK INGESTED 2"));
    let during = ask("STATS");
    assert!(during.contains("users=22"), "{during}");
    assert!(ask("UNREGISTER 40").starts_with("OK UNREGISTERED 40"));
    let after = ask("STATS");
    assert!(after.contains("users=21"), "{after}");
    // Malformed churn requests in between never kill the connection.
    assert!(ask("REGISTER 41 -;1>0;-;-").starts_with("ERR"));
    assert!(ask("UNREGISTER 40").starts_with("ERR"));
    assert!(ask("FRONTIER 41").starts_with("OK FRONTIER 41"));
    assert_eq!(ask("QUIT"), "OK BYE");
}

#[test]
fn empty_batch_rows_do_not_reach_the_engine() {
    let svc = movie_service("baseline");
    // Whitespace-only and semicolon-only payloads must be parse errors.
    for line in ["INGEST  ", "INGEST ;", "INGEST ;;", "INGEST  ;  "] {
        let response = svc.respond_line(line);
        assert!(response.starts_with("ERR"), "{line:?} -> {response}");
    }
    // No object ids were consumed by the rejected batches.
    let ok = svc.respond_line("INGEST 3,2,1,0");
    assert!(ok.starts_with("OK INGESTED 1 0:"), "{ok}");
    // And the engine's ingest counter saw exactly one object.
    assert!(svc.respond_line("STATS").contains("ingested=1"));
}
