//! Fingerprint-interning battery: the engine-level preference interner
//! must track the *distinct*-preference population exactly through every
//! membership verb — convergence (an UPDATE makes one user's preference
//! identical to another's, so their fingerprints coalesce into one
//! bucket), divergence (a later UPDATE splits the bucket again),
//! retirement (unregistering the last holder of a fingerprint drops it),
//! and re-registration of a recycled id into an existing bucket — while
//! every frontier stays exact against a per-user oracle, across all four
//! backends and 1/2/4/8 shards.
//!
//! A kill-and-recover cycle then proves the interned representation is a
//! pure optimisation of the durable state: a service recovered from a
//! copied WAL directory (snapshot + log tail) reports the identical
//! `(distinct, bytes)` footprint and identical frontiers.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use pm_core::{BaselineMonitor, BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::durability::{recover_or_create, DurabilityConfig};
use pm_engine::{BackendSpec, EngineConfig, EngineService, ShardedEngine};
use pm_model::{Object, ObjectId, UserId};
use pm_porder::Preference;
use pm_wal::SyncPolicy;

const WINDOW: usize = 90;
const BATCH: usize = 24;
const INITIAL_USERS: usize = 12;
const POOL: usize = 4;

/// The distinct-fingerprint count of a reference population — what
/// `ShardedEngine::preference_footprint` must report at every step.
fn expected_distinct(population: &BTreeMap<u32, Preference>) -> u64 {
    population
        .values()
        .map(Preference::fingerprint)
        .collect::<HashSet<_>>()
        .len() as u64
}

/// Asserts the engine's interner agrees with the reference population on
/// the distinct count (bytes are representation-dependent, but must be
/// nonzero whenever anyone is registered).
fn assert_footprint(engine: &ShardedEngine, population: &BTreeMap<u32, Preference>, tag: &str) {
    let (distinct, bytes) = engine.preference_footprint();
    assert_eq!(
        distinct,
        expected_distinct(population),
        "{tag}: interner distinct count drifted from the population"
    );
    assert_eq!(bytes > 0, !population.is_empty(), "{tag}: footprint bytes");
    assert_eq!(engine.num_users(), population.len(), "{tag}: num_users");
}

/// Ground truth: one single-user exact monitor per registered user,
/// backfilled from the alive objects at registration time.
struct Oracle {
    window: Option<usize>,
    history: Vec<Object>,
    users: BTreeMap<u32, Box<dyn ContinuousMonitor>>,
}

impl Oracle {
    fn new(window: Option<usize>) -> Self {
        Self {
            window,
            history: Vec::new(),
            users: BTreeMap::new(),
        }
    }

    fn register(&mut self, user: UserId, pref: Preference) {
        let mut monitor: Box<dyn ContinuousMonitor> = match self.window {
            Some(w) => Box::new(BaselineSwMonitor::new(vec![pref], w)),
            None => Box::new(BaselineMonitor::new(vec![pref])),
        };
        let start = match self.window {
            Some(w) => self.history.len().saturating_sub(w),
            None => 0,
        };
        for object in &self.history[start..] {
            monitor.process(object.clone());
        }
        assert!(self.users.insert(user.raw(), monitor).is_none());
    }

    fn unregister(&mut self, user: UserId) {
        assert!(self.users.remove(&user.raw()).is_some());
    }

    fn update(&mut self, user: UserId, pref: Preference) {
        self.unregister(user);
        self.register(user, pref);
    }

    fn ingest(&mut self, object: Object) -> Vec<UserId> {
        self.history.push(object.clone());
        let mut targets = Vec::new();
        for (&raw, monitor) in self.users.iter_mut() {
            if monitor.process(object.clone()).has_targets() {
                targets.push(UserId::new(raw));
            }
        }
        targets
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        self.users[&user.raw()].frontier(UserId::new(0))
    }
}

/// Drives one backend through the convergence/divergence script on every
/// shard count. The preference pool has [`POOL`] distinct members shared
/// by [`INITIAL_USERS`] users, so the script can move the distinct count
/// in both directions and watch the interner follow.
fn run_backend(spec: BackendSpec, window: Option<usize>, label: &str) {
    let profile = DatasetProfile::movie()
        .with_users(INITIAL_USERS)
        .with_objects(200)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 71);
    let stream: Vec<Object> = dataset.stream(7 * BATCH).iter().collect();
    let pool: Vec<Preference> = dataset.preferences[..POOL].to_vec();
    // Two preferences outside the pool, for unique-bucket churn.
    let solo_a = dataset.preferences[POOL].clone();
    let solo_b = dataset.preferences[POOL + 1].clone();
    assert_eq!(
        {
            let all: HashSet<_> = dataset
                .preferences
                .iter()
                .map(|p| p.fingerprint())
                .collect();
            all.len()
        },
        INITIAL_USERS,
        "the generated preferences must be pairwise distinct"
    );

    for shards in [1usize, 2, 4, 8] {
        let tag = format!("{label}/{shards}");
        let initial: Vec<Preference> = (0..INITIAL_USERS).map(|u| pool[u % POOL].clone()).collect();
        let engine = ShardedEngine::new(initial.clone(), &EngineConfig::new(shards), &spec);
        let mut oracle = Oracle::new(window);
        let mut population: BTreeMap<u32, Preference> = BTreeMap::new();
        for (u, pref) in initial.iter().enumerate() {
            oracle.register(UserId::from(u), pref.clone());
            population.insert(u as u32, pref.clone());
        }
        assert_eq!(expected_distinct(&population), POOL as u64);
        assert_footprint(&engine, &population, &tag);

        let mut chunks = stream.chunks(BATCH);
        let mut ingest = |engine: &ShardedEngine, oracle: &mut Oracle| {
            let chunk = chunks.next().expect("script exhausted the stream").to_vec();
            let arrivals = engine.process_batch(chunk.clone());
            for (object, arrival) in chunk.iter().zip(&arrivals) {
                assert_eq!(
                    arrival.target_users,
                    oracle.ingest(object.clone()),
                    "{tag}: arrival {} disagrees with oracle",
                    object.id()
                );
            }
        };

        // A new user with a unique preference opens a fifth bucket.
        ingest(&engine, &mut oracle);
        engine.register(UserId::new(200), solo_a.clone()).unwrap();
        oracle.register(UserId::new(200), solo_a.clone());
        population.insert(200, solo_a.clone());
        assert_eq!(expected_distinct(&population), POOL as u64 + 1);
        assert_footprint(&engine, &population, &tag);
        let (_, bytes_before_converge) = engine.preference_footprint();

        // Convergence: the unique user adopts a pooled preference — its
        // old bucket dies, the interner shrinks, frontiers must follow
        // the per-user semantics exactly.
        ingest(&engine, &mut oracle);
        engine.update(UserId::new(200), pool[2].clone()).unwrap();
        oracle.update(UserId::new(200), pool[2].clone());
        population.insert(200, pool[2].clone());
        assert_eq!(expected_distinct(&population), POOL as u64);
        assert_footprint(&engine, &population, &tag);
        let (_, bytes_after_converge) = engine.preference_footprint();
        assert!(
            bytes_after_converge < bytes_before_converge,
            "{tag}: convergence must shrink the interned footprint \
             ({bytes_after_converge} vs {bytes_before_converge})"
        );

        // Divergence: the same user splits off into a fresh bucket again.
        ingest(&engine, &mut oracle);
        engine.update(UserId::new(200), solo_b.clone()).unwrap();
        oracle.update(UserId::new(200), solo_b.clone());
        population.insert(200, solo_b.clone());
        assert_eq!(expected_distinct(&population), POOL as u64 + 1);
        assert_footprint(&engine, &population, &tag);

        // Retirement: unregistering every holder of pool[3] (users 3, 7,
        // 11) drops that fingerprint; the first two removals must not.
        ingest(&engine, &mut oracle);
        for raw in [3u32, 7, 11] {
            engine.unregister(UserId::new(raw)).unwrap();
            oracle.unregister(UserId::new(raw));
            population.remove(&raw);
            assert_footprint(&engine, &population, &tag);
        }
        assert_eq!(expected_distinct(&population), POOL as u64);

        // Recycled id into an existing bucket: distinct count unchanged.
        ingest(&engine, &mut oracle);
        engine.register(UserId::new(3), pool[0].clone()).unwrap();
        oracle.register(UserId::new(3), pool[0].clone());
        population.insert(3, pool[0].clone());
        assert_eq!(expected_distinct(&population), POOL as u64);
        assert_footprint(&engine, &population, &tag);

        ingest(&engine, &mut oracle);
        for &raw in population.keys() {
            let user = UserId::new(raw);
            assert_eq!(
                engine.frontier(user),
                oracle.frontier(user),
                "{tag}: final frontier of user {raw}"
            );
        }
    }
}

#[test]
fn interner_tracks_churn_baseline() {
    run_backend(BackendSpec::baseline(), None, "baseline");
}

#[test]
fn interner_tracks_churn_filter_then_verify() {
    run_backend(BackendSpec::ftv(0.45), None, "ftv");
}

#[test]
fn interner_tracks_churn_baseline_sw() {
    run_backend(
        BackendSpec::BaselineSw { window: WINDOW },
        Some(WINDOW),
        "baseline-sw",
    );
}

#[test]
fn interner_tracks_churn_filter_then_verify_sw() {
    // Singleton clusters (unreachable branch cut) keep the sliding
    // filter-then-verify backend exact, so the oracle is well-defined.
    run_backend(
        BackendSpec::FilterThenVerifySw {
            branch_cut: 100.0,
            window: WINDOW,
        },
        Some(WINDOW),
        "ftv-sw",
    );
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-fingerprint-test-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Flat copy of a WAL directory, standing in for the on-disk state a
/// crash would leave behind.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Kill-and-recover: after shared-preference churn, a snapshot (the
/// deduplicated v2 format) and a log tail, the recovered service must
/// report the identical interner footprint and identical frontiers.
#[test]
fn interner_footprint_survives_kill_and_recover() {
    let profile = DatasetProfile::movie()
        .with_users(INITIAL_USERS)
        .with_objects(200)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 71);
    let stream: Vec<Object> = dataset.stream(5 * BATCH).iter().collect();
    let pool: Vec<Preference> = dataset.preferences[..POOL].to_vec();
    let genesis: Vec<Preference> = (0..INITIAL_USERS).map(|u| pool[u % POOL].clone()).collect();

    for (backend, shards) in [("baseline", 2usize), ("ftv:0.4:compact", 4)] {
        let dir = test_dir(&format!("recover-{shards}"));
        let spec = BackendSpec::parse(backend).unwrap();
        let durability = DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            snapshot_every: 0,
        };
        let open = |d: &Path| -> EngineService {
            let config = DurabilityConfig {
                dir: d.to_path_buf(),
                sync: SyncPolicy::Always,
                snapshot_every: 0,
            };
            let (service, _) = recover_or_create(
                genesis.clone(),
                &EngineConfig::new(shards),
                &spec,
                dataset.dimensions(),
                256,
                &config,
            )
            .unwrap();
            service
        };
        let (live, report) = recover_or_create(
            genesis.clone(),
            &EngineConfig::new(shards),
            &spec,
            dataset.dimensions(),
            256,
            &durability,
        )
        .unwrap();
        assert!(report.is_none(), "fresh dir must not recover");

        let mut chunks = stream.chunks(BATCH);
        live.engine().process_batch(chunks.next().unwrap().to_vec());
        // Shared-preference churn: a unique bucket opens, converges onto
        // the pool, and a pooled registration lands in an existing bucket.
        let engine = live.engine();
        engine
            .register(UserId::new(300), dataset.preferences[POOL].clone())
            .unwrap();
        engine.process_batch(chunks.next().unwrap().to_vec());
        engine.update(UserId::new(300), pool[1].clone()).unwrap();
        engine.register(UserId::new(301), pool[0].clone()).unwrap();
        engine.unregister(UserId::new(2)).unwrap();
        // The snapshot writes the deduplicated preference-table format;
        // the mutations after it land in the recovered log tail.
        let r = live.respond_line("SNAPSHOT");
        assert!(r.starts_with("OK SNAPSHOT lsn="), "{r}");
        engine.process_batch(chunks.next().unwrap().to_vec());
        engine.register(UserId::new(302), pool[3].clone()).unwrap();
        engine.process_batch(chunks.next().unwrap().to_vec());

        // User 300 converged back onto the pool, so only the pool's
        // fingerprints survive.
        let footprint = engine.preference_footprint();
        assert_eq!(footprint.0, POOL as u64, "live distinct count");
        let users: Vec<u32> = (0..INITIAL_USERS as u32)
            .filter(|&u| u != 2)
            .chain([300, 301, 302])
            .collect();

        let copy = test_dir(&format!("recover-copy-{shards}"));
        copy_dir(&dir, &copy);
        let recovered = open(&copy);
        assert_eq!(
            recovered.engine().preference_footprint(),
            footprint,
            "{backend}/{shards}: interner footprint diverged across recovery"
        );
        for &raw in &users {
            let user = UserId::new(raw);
            assert_eq!(
                recovered.engine().frontier(user),
                live.engine().frontier(user),
                "{backend}/{shards}: frontier of user {raw} diverged across recovery"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&copy).unwrap();
    }
}
