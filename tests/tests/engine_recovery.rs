//! Durability: kill-and-recover oracle plus a WAL corruption battery.
//!
//! The oracle simulates a crash by copying the WAL directory at barriers
//! while the live service keeps running with `--wal-sync=always` (so the
//! copy sees exactly the acknowledged mutation prefix, like a machine
//! losing power would). A service recovered from the copy must answer
//! `FRONTIER`, `QUERY` and `STATS` identically to the live one at the
//! barrier — across backends and shard counts, through mid-stream
//! registration, in-place update, unregistration and a manual `SNAPSHOT`.
//!
//! Exactness caveats (documented in the README): the `comparisons` work
//! counter is iteration-order dependent (hash-map frontiers + early-exit
//! dominance scans) and is excluded from the STATS comparison for every
//! backend; the sliding-window filter-then-verify backends cluster
//! incrementally and are not exact across recovery at all, so they are
//! not in the oracle matrix.
//!
//! The corruption battery checks that a torn final record, a bit-flipped
//! CRC, a truncated segment header and a corrupt or missing snapshot all
//! recover cleanly: the valid prefix is restored, the garbage is truncated
//! or skipped, and the server keeps serving.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use pm_engine::durability::{recover_or_create, DurabilityConfig};
use pm_engine::{BackendSpec, EngineConfig, EngineService};
use pm_model::{AttrId, ValueId};
use pm_porder::Preference;
use pm_wal::SyncPolicy;

const ARITY: usize = 3;
const DOM: usize = 6;
const HISTORY: usize = 64;
const GENESIS_USERS: usize = 12;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-recovery-test-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Flat copy of a WAL directory (segments + snapshots), standing in for
/// the on-disk state a crash would leave behind.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Chain preferences over `ARITY` attributes with a user-specific break,
/// so users disagree and frontiers are non-trivial but stay small.
fn population(n: usize) -> Vec<Preference> {
    (0..n)
        .map(|u| {
            let mut p = Preference::new(ARITY);
            for attr in 0..ARITY {
                let skip = (u + attr) % (DOM - 1);
                for v in 0..DOM - 1 {
                    if v == skip {
                        continue;
                    }
                    p.prefer(
                        AttrId::from(attr),
                        ValueId::new((v + 1) as u32),
                        ValueId::new(v as u32),
                    );
                }
            }
            p
        })
        .collect()
}

/// A deterministic `INGEST` line for objects `start..start + count`.
fn ingest_line(start: usize, count: usize) -> String {
    let groups: Vec<String> = (start..start + count)
        .map(|i| {
            (0..ARITY)
                .map(|a| (((i * 7 + a * 3) ^ (i / 4)) % DOM).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    format!("INGEST {}", groups.join(";"))
}

fn durability(dir: &Path, sync: SyncPolicy) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        sync,
        snapshot_every: 0,
    }
}

fn recover(dir: &Path, backend: &str, shards: usize, sync: SyncPolicy) -> EngineService {
    let spec = BackendSpec::parse(backend).unwrap();
    let (service, _) = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(shards),
        &spec,
        ARITY,
        HISTORY,
        &durability(dir, sync),
    )
    .unwrap();
    service
}

/// The `STATS` key=value tokens that must survive recovery bit-identically.
/// Rates, percentiles, skew, queue depths and history gauges are runtime
/// artifacts. `comparisons` is a *work* counter, not logical state: the
/// per-user frontier is a hash map, so the dominance scan's early exit
/// lands after an iteration-order-dependent number of tests, and two
/// engines processing the identical stream count differently (the
/// filter-then-verify backends additionally re-cluster on recovery).
/// Frontiers and notifications are order-independent and compared exactly.
fn normalized_stats(service: &EngineService) -> Vec<String> {
    let keep = [
        "ingested=",
        "users=",
        "shards=",
        "shard_users=",
        "registrations=",
        "unregistrations=",
        "updates=",
        "notifications=",
        "expirations=",
    ];
    service
        .respond_line("STATS")
        .split_whitespace()
        .filter(|tok| keep.iter().any(|k| tok.starts_with(k)))
        .map(str::to_owned)
        .collect()
}

/// Copies the live WAL dir (the simulated crash), recovers a fresh service
/// from the copy, and demands identical answers at the wire surface.
fn check_barrier(
    live: &EngineService,
    dir: &Path,
    backend: &str,
    shards: usize,
    users: &[u32],
    ingested: usize,
    tag: &str,
) {
    let copy = test_dir(&format!("barrier-{tag}"));
    copy_dir(dir, &copy);
    let recovered = recover(&copy, backend, shards, SyncPolicy::Always);

    for &user in users {
        let q = format!("FRONTIER {user}");
        assert_eq!(
            live.respond_line(&q),
            recovered.respond_line(&q),
            "{backend}/{shards} {tag}: frontier of user {user} diverged"
        );
    }
    // The full QUERY-able window, including ids evicted on both sides.
    for id in ingested.saturating_sub(HISTORY)..ingested {
        let q = format!("QUERY {id}");
        assert_eq!(
            live.respond_line(&q),
            recovered.respond_line(&q),
            "{backend}/{shards} {tag}: QUERY {id} diverged"
        );
    }
    assert_eq!(
        normalized_stats(live),
        normalized_stats(&recovered),
        "{backend}/{shards} {tag}: STATS diverged"
    );
    fs::remove_dir_all(&copy).unwrap();
}

/// One full kill-and-recover run: ingest, churn every membership verb,
/// snapshot mid-stream, and validate a recovery at every barrier.
fn kill_and_recover(backend: &str, shards: usize) {
    let dir = test_dir(&format!("oracle-{shards}"));
    let live = recover(&dir, backend, shards, SyncPolicy::Always);
    let mut users: Vec<u32> = (0..GENESIS_USERS as u32).collect();
    let mut ingested = 0usize;

    let ingest = |live: &EngineService, n: usize, ingested: &mut usize| {
        for _ in 0..n / 8 {
            let r = live.respond_line(&ingest_line(*ingested, 8));
            assert!(r.starts_with("OK INGESTED 8"), "{r}");
            *ingested += 8;
        }
    };

    ingest(&live, 40, &mut ingested);
    check_barrier(&live, &dir, backend, shards, &users, ingested, "ingest");

    let r = live.respond_line("REGISTER 100 0>1,1>2;-;2>0");
    assert!(r.starts_with("OK REGISTERED 100"), "{r}");
    users.push(100);
    ingest(&live, 16, &mut ingested);
    check_barrier(&live, &dir, backend, shards, &users, ingested, "register");

    let r = live.respond_line("UPDATE 3 5>4;4>3;-");
    assert!(r.starts_with("OK UPDATED 3"), "{r}");
    ingest(&live, 16, &mut ingested);
    check_barrier(&live, &dir, backend, shards, &users, ingested, "update");

    assert_eq!(live.respond_line("UNREGISTER 5"), "OK UNREGISTERED 5");
    users.retain(|&u| u != 5);
    ingest(&live, 16, &mut ingested);
    check_barrier(&live, &dir, backend, shards, &users, ingested, "unregister");

    // A manual snapshot re-anchors the log; later barriers recover from
    // snapshot + tail instead of genesis + full replay.
    let r = live.respond_line("SNAPSHOT");
    assert!(r.starts_with("OK SNAPSHOT lsn="), "{r}");
    ingest(&live, 16, &mut ingested);
    check_barrier(&live, &dir, backend, shards, &users, ingested, "snapshot");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_and_recover_baseline() {
    for shards in [1, 2, 4, 8] {
        kill_and_recover("baseline", shards);
    }
}

#[test]
fn kill_and_recover_baseline_compact_history() {
    for shards in [1, 2, 4, 8] {
        kill_and_recover("baseline:compact", shards);
    }
}

#[test]
fn kill_and_recover_filter_then_verify_compact() {
    for shards in [1, 2, 4, 8] {
        kill_and_recover("ftv:0.4:compact", shards);
    }
}

#[test]
fn kill_and_recover_sliding_window() {
    for shards in [1, 2, 4, 8] {
        kill_and_recover("baseline-sw:32", shards);
    }
}

// ---------------------------------------------------------------------------
// Corruption battery
// ---------------------------------------------------------------------------

/// Builds a WAL dir with `objects` ingested (ingest-only, so the expected
/// user count is stable under any replay prefix), then drops the service
/// so the log is closed.
fn seeded_dir(tag: &str, objects: usize) -> PathBuf {
    let dir = test_dir(tag);
    let live = recover(&dir, "baseline", 2, SyncPolicy::Always);
    for start in (0..objects).step_by(8) {
        let r = live.respond_line(&ingest_line(start, 8));
        assert!(r.starts_with("OK INGESTED"), "{r}");
    }
    dir
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pmwal"))
        .collect();
    segments.sort();
    segments.pop().expect("a WAL segment exists")
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut snapshots: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pmsnap"))
        .collect();
    snapshots.sort();
    snapshots
}

/// Asserts the recovered service is fully alive: right user count, and
/// still accepts mutations and queries.
fn assert_serving(service: &EngineService, users: usize) {
    assert_eq!(service.engine().num_users(), users);
    let r = service.respond_line(&ingest_line(10_000, 2));
    assert!(r.starts_with("OK INGESTED 2"), "{r}");
    assert!(service.respond_line("STATS").starts_with("OK STATS"));
    assert!(service
        .respond_line("FRONTIER 0")
        .starts_with("OK FRONTIER 0"));
}

#[test]
fn recovers_from_a_torn_final_record() {
    let dir = seeded_dir("torn", 32);
    // A crash mid-append: garbage trails the last valid frame.
    let segment = last_segment(&dir);
    let mut bytes = fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0xFF, 0x13, 0x37]);
    fs::write(&segment, &bytes).unwrap();

    let spec = BackendSpec::parse("baseline").unwrap();
    let (service, report) = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(2),
        &spec,
        ARITY,
        HISTORY,
        &durability(&dir, SyncPolicy::Always),
    )
    .unwrap();
    let report = report.expect("a non-fresh directory yields a report");
    assert_eq!(report.truncated_bytes, 3, "the garbage tail is truncated");
    assert_serving(&service, GENESIS_USERS);
    drop(service);

    // The truncation repaired the log: a second recovery sees no tear.
    let (service, report) = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(2),
        &spec,
        ARITY,
        HISTORY,
        &durability(&dir, SyncPolicy::Always),
    )
    .unwrap();
    assert_eq!(report.unwrap().truncated_bytes, 0);
    assert_serving(&service, GENESIS_USERS);
    drop(service);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovers_from_a_bit_flipped_record() {
    let dir = seeded_dir("bitflip", 32);
    // Flip one byte mid-log: the CRC of that record fails, the valid
    // prefix before it is kept, everything after is discarded.
    let segment = last_segment(&dir);
    let mut bytes = fs::read(&segment).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&segment, &bytes).unwrap();

    let service = recover(&dir, "baseline", 2, SyncPolicy::Always);
    // Ingest-only log: whatever prefix survived, the users are intact and
    // the service serves.
    assert_serving(&service, GENESIS_USERS);
    drop(service);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovers_from_a_truncated_segment_header() {
    let dir = seeded_dir("header", 16);
    // Truncate the segment below its 16-byte header: every record in it is
    // lost, but recovery falls back to the snapshot state cleanly.
    let segment = last_segment(&dir);
    let bytes = fs::read(&segment).unwrap();
    fs::write(&segment, &bytes[..10]).unwrap();

    let service = recover(&dir, "baseline", 2, SyncPolicy::Always);
    assert_serving(&service, GENESIS_USERS);
    drop(service);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovers_from_corrupt_and_missing_snapshots() {
    let dir = seeded_dir("snapshots", 24);

    // Corrupt (empty) snapshot files are skipped newest-first.
    for snapshot in snapshot_files(&dir) {
        fs::write(&snapshot, b"").unwrap();
    }
    let service = recover(&dir, "baseline", 2, SyncPolicy::Always);
    assert_serving(&service, GENESIS_USERS);
    drop(service);

    // No snapshot at all: genesis rebuild plus a full replay from LSN 0.
    for snapshot in snapshot_files(&dir) {
        fs::remove_file(&snapshot).unwrap();
    }
    let spec = BackendSpec::parse("baseline").unwrap();
    let (service, report) = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(2),
        &spec,
        ARITY,
        HISTORY,
        &durability(&dir, SyncPolicy::Always),
    )
    .unwrap();
    let report = report.expect("replaying a WAL is not a fresh start");
    assert!(!report.from_snapshot);
    assert!(report.replayed > 0);
    assert_serving(&service, GENESIS_USERS);
    drop(service);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_verb_requires_durability() {
    // Without --wal-dir there is nothing to snapshot: the verb answers ERR
    // and the connection keeps working.
    let spec = BackendSpec::parse("baseline").unwrap();
    let engine =
        pm_engine::ShardedEngine::new(population(GENESIS_USERS), &EngineConfig::new(2), &spec);
    let service = EngineService::new(engine, spec, ARITY, HISTORY);
    assert_eq!(
        service.respond_line("SNAPSHOT"),
        "ERR durability is disabled (no --wal-dir)"
    );
    assert!(service.respond_line("STATS").starts_with("OK STATS"));
}

#[test]
fn recovery_refuses_a_mismatched_configuration() {
    let dir = seeded_dir("mismatch", 16);
    // The snapshot was taken with baseline/2 shards/arity 3; restoring
    // into anything else must fail loudly, not corrupt silently.
    let wrong_backend = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(2),
        &BackendSpec::parse("baseline-sw:32").unwrap(),
        ARITY,
        HISTORY,
        &durability(&dir, SyncPolicy::Always),
    );
    assert!(wrong_backend.is_err());
    let wrong_shards = recover_or_create(
        population(GENESIS_USERS),
        &EngineConfig::new(3),
        &BackendSpec::parse("baseline").unwrap(),
        ARITY,
        HISTORY,
        &durability(&dir, SyncPolicy::Always),
    );
    assert!(wrong_shards.is_err());
    fs::remove_dir_all(&dir).unwrap();
}
