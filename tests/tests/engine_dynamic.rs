//! Dynamic-membership oracle equivalence: an interleaved stream of
//! INGEST / REGISTER / UPDATE / UNREGISTER events must leave every
//! surviving user with a frontier identical to (a) a per-user oracle whose
//! monitors are rebuilt with the final preferences from the alive objects,
//! (b) a *fresh* engine built with the final population and fed the alive
//! objects, and (c) a reference engine that serves every UPDATE as
//! UNREGISTER + REGISTER — across all four backends and 1/2/4/8 shards.
//!
//! The per-object arrival comparison additionally proves that a REGISTER
//! or UPDATE during an active stream never drops or duplicates a
//! notification: every batch enqueued after the command observes it, every
//! batch before it does not. Along the way the script asserts that an
//! in-place UPDATE never renumbers any user (per-shard membership lists are
//! byte-identical around it) and that the per-shard live user counts of
//! `EngineSnapshot` stay exact after every event.
//!
//! Backend notes: `Baseline`, `BaselineSw` and append-only
//! `FilterThenVerify` are exact under any clustering (Lemma 4.6), so the
//! FTV run uses a real branch cut and genuinely exercises incremental
//! cluster joins/repairs. `FilterThenVerifySw` is only exact when every
//! cluster is a singleton, so its oracle run pins an unreachable branch cut
//! (the paper's approximation error is otherwise clustering-dependent);
//! cluster-structure invariants under churn are covered by the property
//! tests instead.

use std::collections::BTreeMap;
use std::sync::Arc;

use pm_cluster::{Clustering, ExactMeasure};
use pm_core::{BaselineMonitor, BaselineSwMonitor, ContinuousMonitor, FilterThenVerifySwMonitor};
use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::{Object, ObjectId, UserId};
use pm_porder::Preference;

const WINDOW: usize = 120;
const BATCH: usize = 24;

/// One step of the interleaved script.
enum Event {
    Ingest(Vec<Object>),
    Register(UserId, Preference),
    Update(UserId, Preference),
    Unregister(UserId),
}

/// Builds the deterministic event script: 24 initial users, a pool of late
/// registrations under sparse ids (200+), periodic unregistrations,
/// periodic in-place preference updates of live users, and one id that is
/// unregistered and later *re-registered with a different preference*.
fn build_script() -> (Vec<(UserId, Preference)>, Vec<Event>) {
    let profile = DatasetProfile::movie()
        .with_users(36)
        .with_objects(240)
        .with_interactions(45);
    let dataset = Dataset::generate(&profile, 97);
    let stream: Vec<Object> = dataset.stream(360).iter().collect();
    let initial: Vec<(UserId, Preference)> = (0..24)
        .map(|u| (UserId::from(u), dataset.preferences[u].clone()))
        .collect();

    let mut live: Vec<UserId> = initial.iter().map(|(u, _)| *u).collect();
    let mut events = Vec::new();
    let mut next_pool = 24usize;
    let mut next_id = 200u32;
    let mut recycled: Option<(UserId, Preference)> = None;
    for (i, chunk) in stream.chunks(BATCH).enumerate() {
        events.push(Event::Ingest(chunk.to_vec()));
        if i % 3 != 1 {
            // Register: prefer the recycled id (re-registration with a
            // different preference), else draw from the pool.
            if let Some((user, pref)) = recycled.take() {
                events.push(Event::Register(user, pref));
                live.push(user);
            } else if next_pool < dataset.preferences.len() {
                let user = UserId::new(next_id);
                next_id += 1;
                let pref = dataset.preferences[next_pool].clone();
                next_pool += 1;
                events.push(Event::Register(user, pref));
                live.push(user);
            }
        }
        if i % 2 == 0 && !live.is_empty() {
            // In-place update: a live user adopts a different preference
            // drawn from the dataset pool. Some picks repeat a user updated
            // earlier, covering repeated updates of the same id.
            let user = live[(i * 5) % live.len()];
            let pref = dataset.preferences[(i * 11) % dataset.preferences.len()].clone();
            events.push(Event::Update(user, pref));
        }
        if i % 3 != 0 && live.len() > 4 {
            let idx = (i * 7) % live.len();
            let user = live.swap_remove(idx);
            events.push(Event::Unregister(user));
            if i == 7 {
                // Later, give this id a brand-new preference.
                let pref = dataset.preferences[(i * 5) % dataset.preferences.len()].clone();
                recycled = Some((user, pref));
            }
        }
    }
    assert!(events.iter().any(|e| matches!(e, Event::Register(..))));
    assert!(events.iter().any(|e| matches!(e, Event::Update(..))));
    assert!(events.iter().any(|e| matches!(e, Event::Unregister(..))));
    (initial, events)
}

/// Ground truth: one single-user exact monitor per registered user,
/// backfilled from the alive objects at registration time.
struct Oracle {
    window: Option<usize>,
    history: Vec<Object>,
    users: BTreeMap<u32, Box<dyn ContinuousMonitor>>,
}

impl Oracle {
    fn new(window: Option<usize>) -> Self {
        Self {
            window,
            history: Vec::new(),
            users: BTreeMap::new(),
        }
    }

    fn register(&mut self, user: UserId, pref: Preference) {
        let mut monitor: Box<dyn ContinuousMonitor> = match self.window {
            Some(w) => Box::new(BaselineSwMonitor::new(vec![pref], w)),
            None => Box::new(BaselineMonitor::new(vec![pref])),
        };
        let start = match self.window {
            Some(w) => self.history.len().saturating_sub(w),
            None => 0,
        };
        for object in &self.history[start..] {
            monitor.process(object.clone());
        }
        assert!(self.users.insert(user.raw(), monitor).is_none());
    }

    fn unregister(&mut self, user: UserId) {
        assert!(self.users.remove(&user.raw()).is_some());
    }

    /// In-place update ground truth: the user's monitor is rebuilt with the
    /// new preference and replays the alive objects — exactly "a per-user
    /// monitor rebuilt with the final preference".
    fn update(&mut self, user: UserId, pref: Preference) {
        self.unregister(user);
        self.register(user, pref);
    }

    /// Processes one arrival and returns its target users, ascending.
    fn ingest(&mut self, object: Object) -> Vec<UserId> {
        self.history.push(object.clone());
        let mut targets = Vec::new();
        for (&raw, monitor) in self.users.iter_mut() {
            if monitor.process(object.clone()).has_targets() {
                targets.push(UserId::new(raw));
            }
        }
        targets
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        self.users[&user.raw()].frontier(UserId::new(0))
    }

    /// The currently alive objects, oldest first.
    fn alive(&self) -> Vec<Object> {
        let start = match self.window {
            Some(w) => self.history.len().saturating_sub(w),
            None => 0,
        };
        self.history[start..].to_vec()
    }
}

/// Asserts the engine's per-shard live user counts are exactly the counts
/// derived from the reference population via `shard_of` — the regression
/// check that `shard_users=` in `EngineSnapshot`/STATS never drifts under
/// interleaved INGEST/REGISTER/UPDATE/UNREGISTER.
fn assert_shard_counts_exact(
    engine: &ShardedEngine,
    population: &BTreeMap<u32, Preference>,
    label: &str,
) {
    let shards = engine.num_shards();
    let mut expected = vec![0usize; shards];
    for &raw in population.keys() {
        expected[pm_engine::shard_of(UserId::new(raw), shards)] += 1;
    }
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.users, population.len(), "{label}: total drifted");
    assert_eq!(
        snapshot.users_per_shard(),
        expected,
        "{label}: per-shard counts drifted"
    );
    assert_eq!(engine.num_users(), population.len(), "{label}: num_users");
}

fn run_backend(spec: BackendSpec, window: Option<usize>, label: &str) {
    let (initial, events) = build_script();
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(
            initial.iter().map(|(_, p)| p.clone()).collect(),
            &EngineConfig::new(shards),
            &spec,
        );
        // Reference run: identical script, but every UPDATE is served as
        // UNREGISTER + REGISTER. In-place updates must not be observably
        // different (beyond paying one repair instead of two).
        let reference = ShardedEngine::new(
            initial.iter().map(|(_, p)| p.clone()).collect(),
            &EngineConfig::new(shards),
            &spec,
        );
        let mut oracle = Oracle::new(window);
        let mut population: BTreeMap<u32, Preference> = BTreeMap::new();
        for (user, pref) in &initial {
            oracle.register(*user, pref.clone());
            population.insert(user.raw(), pref.clone());
        }

        for event in &events {
            match event {
                Event::Ingest(chunk) => {
                    let arrivals = engine.process_batch(chunk.clone());
                    let ref_arrivals = reference.process_batch(chunk.clone());
                    assert_eq!(arrivals.len(), chunk.len());
                    for (object, arrival) in chunk.iter().zip(&arrivals) {
                        let expected = oracle.ingest(object.clone());
                        assert_eq!(
                            arrival.target_users,
                            expected,
                            "{label}/{shards}: arrival {} disagrees with oracle",
                            object.id()
                        );
                    }
                    assert_eq!(
                        arrivals, ref_arrivals,
                        "{label}/{shards}: in-place UPDATE and unregister+register disagree"
                    );
                }
                Event::Register(user, pref) => {
                    engine.register(*user, pref.clone()).unwrap();
                    reference.register(*user, pref.clone()).unwrap();
                    oracle.register(*user, pref.clone());
                    population.insert(user.raw(), pref.clone());
                }
                Event::Update(user, pref) => {
                    // An in-place UPDATE never renumbers any user: every
                    // shard's membership list is byte-identical around it.
                    let before: Vec<Vec<UserId>> =
                        (0..shards).map(|s| engine.shard_users(s)).collect();
                    engine.update(*user, pref.clone()).unwrap();
                    let after: Vec<Vec<UserId>> =
                        (0..shards).map(|s| engine.shard_users(s)).collect();
                    assert_eq!(before, after, "{label}/{shards}: UPDATE renumbered a user");
                    reference.unregister(*user).unwrap();
                    reference.register(*user, pref.clone()).unwrap();
                    oracle.update(*user, pref.clone());
                    population.insert(user.raw(), pref.clone());
                }
                Event::Unregister(user) => {
                    engine.unregister(*user).unwrap();
                    reference.unregister(*user).unwrap();
                    oracle.unregister(*user);
                    population.remove(&user.raw());
                }
            }
            assert_shard_counts_exact(&engine, &population, label);
        }

        // A fresh engine built with the final population, fed the alive
        // objects, must agree with the churned engine on every frontier.
        let fresh = ShardedEngine::empty(&EngineConfig::new(shards), &spec);
        for (&raw, pref) in &population {
            fresh.register(UserId::new(raw), pref.clone()).unwrap();
        }
        for chunk in oracle.alive().chunks(BATCH) {
            fresh.process_batch(chunk.to_vec());
        }
        for &raw in population.keys() {
            let user = UserId::new(raw);
            let dynamic = engine.frontier(user);
            assert_eq!(
                dynamic,
                oracle.frontier(user),
                "{label}/{shards}: user {raw} vs oracle"
            );
            assert_eq!(
                dynamic,
                fresh.frontier(user),
                "{label}/{shards}: user {raw} vs fresh engine"
            );
            assert_eq!(
                dynamic,
                reference.frontier(user),
                "{label}/{shards}: user {raw} vs unregister+register reference"
            );
        }
        assert_eq!(engine.num_users(), population.len());
    }
}

#[test]
fn dynamic_membership_matches_oracle_baseline() {
    run_backend(BackendSpec::baseline(), None, "baseline");
}

#[test]
fn dynamic_membership_matches_oracle_filter_then_verify() {
    // A real branch cut: registrations join existing clusters and removals
    // repair them; Lemma 4.6 keeps the results exact regardless.
    run_backend(BackendSpec::ftv(0.45), None, "ftv");
}

#[test]
fn dynamic_membership_matches_oracle_baseline_sw() {
    run_backend(
        BackendSpec::BaselineSw { window: WINDOW },
        Some(WINDOW),
        "baseline-sw",
    );
}

#[test]
fn dynamic_membership_matches_oracle_filter_then_verify_sw() {
    // Singleton clusters (unreachable branch cut) make FilterThenVerifySW
    // exact, so the oracle equivalence is well-defined; see module docs.
    run_backend(
        BackendSpec::FilterThenVerifySw {
            branch_cut: 100.0,
            window: WINDOW,
        },
        Some(WINDOW),
        "ftv-sw",
    );
}

/// Builds the compacting-history event script: the full 36-preference pool
/// is registered up front (seeding every shard's compaction universe —
/// exactness of compacted backfill is relative to the observed universe),
/// then churn draws every REGISTER/UPDATE preference from that same pool:
/// re-registrations and in-place updates with previously seen preferences,
/// the common churn shape of a population whose tastes cluster.
fn build_compact_script() -> (Vec<(UserId, Preference)>, Vec<Event>) {
    let profile = DatasetProfile::movie()
        .with_users(36)
        .with_objects(240)
        .with_interactions(45);
    let dataset = Dataset::generate(&profile, 97);
    let stream: Vec<Object> = dataset.stream(360).iter().collect();
    let pool = &dataset.preferences;
    let initial: Vec<(UserId, Preference)> = (0..36)
        .map(|u| (UserId::from(u), pool[u].clone()))
        .collect();

    let mut live: Vec<UserId> = initial.iter().map(|(u, _)| *u).collect();
    let mut events = Vec::new();
    let mut next_id = 200u32;
    for (i, chunk) in stream.chunks(BATCH).enumerate() {
        events.push(Event::Ingest(chunk.to_vec()));
        if i % 3 != 1 {
            let user = UserId::new(next_id);
            next_id += 1;
            events.push(Event::Register(user, pool[(i * 7) % pool.len()].clone()));
            live.push(user);
        }
        if i % 2 == 0 && !live.is_empty() {
            let user = live[(i * 5) % live.len()];
            events.push(Event::Update(user, pool[(i * 11) % pool.len()].clone()));
        }
        if i % 3 != 0 && live.len() > 6 {
            let idx = (i * 7) % live.len();
            let user = live.swap_remove(idx);
            events.push(Event::Unregister(user));
        }
    }
    assert!(events.iter().any(|e| matches!(e, Event::Register(..))));
    assert!(events.iter().any(|e| matches!(e, Event::Update(..))));
    assert!(events.iter().any(|e| matches!(e, Event::Unregister(..))));
    (initial, events)
}

/// The compacting-history battery: with `compact` retention and churn whose
/// preferences stay inside the observed universe, every backfilled frontier
/// must equal (a) the per-user full-history oracle and (b) a full-history
/// reference engine of the same backend fed the identical event script —
/// the retained skyline union loses nothing any observed preference needs.
fn run_backend_compact(spec: BackendSpec, reference_spec: BackendSpec, label: &str) {
    let (initial, events) = build_compact_script();
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(
            initial.iter().map(|(_, p)| p.clone()).collect(),
            &EngineConfig::new(shards),
            &spec,
        );
        // Full-history reference: the same backend with unlimited history.
        let reference = ShardedEngine::new(
            initial.iter().map(|(_, p)| p.clone()).collect(),
            &EngineConfig::new(shards),
            &reference_spec,
        );
        let mut oracle = Oracle::new(None);
        let mut population: BTreeMap<u32, Preference> = BTreeMap::new();
        for (user, pref) in &initial {
            oracle.register(*user, pref.clone());
            population.insert(user.raw(), pref.clone());
        }
        for event in &events {
            match event {
                Event::Ingest(chunk) => {
                    let arrivals = engine.process_batch(chunk.clone());
                    let ref_arrivals = reference.process_batch(chunk.clone());
                    for (object, arrival) in chunk.iter().zip(&arrivals) {
                        let expected = oracle.ingest(object.clone());
                        assert_eq!(
                            arrival.target_users,
                            expected,
                            "{label}/{shards}: arrival {} disagrees with oracle",
                            object.id()
                        );
                    }
                    assert_eq!(
                        arrivals, ref_arrivals,
                        "{label}/{shards}: compacted and full-history arrivals disagree"
                    );
                }
                Event::Register(user, pref) => {
                    engine.register(*user, pref.clone()).unwrap();
                    reference.register(*user, pref.clone()).unwrap();
                    oracle.register(*user, pref.clone());
                    population.insert(user.raw(), pref.clone());
                    // The backfilled frontier is checked right away: this
                    // is the replay the compaction must keep exact.
                    assert_eq!(
                        engine.frontier(*user),
                        oracle.frontier(*user),
                        "{label}/{shards}: backfill of {user} diverged from full history"
                    );
                }
                Event::Update(user, pref) => {
                    engine.update(*user, pref.clone()).unwrap();
                    reference.update(*user, pref.clone()).unwrap();
                    oracle.update(*user, pref.clone());
                    population.insert(user.raw(), pref.clone());
                    assert_eq!(
                        engine.frontier(*user),
                        oracle.frontier(*user),
                        "{label}/{shards}: update backfill of {user} diverged"
                    );
                }
                Event::Unregister(user) => {
                    engine.unregister(*user).unwrap();
                    reference.unregister(*user).unwrap();
                    oracle.unregister(*user);
                    population.remove(&user.raw());
                }
            }
        }
        for &raw in population.keys() {
            let user = UserId::new(raw);
            let frontier = engine.frontier(user);
            assert_eq!(
                frontier,
                oracle.frontier(user),
                "{label}/{shards}: user {raw} vs oracle"
            );
            assert_eq!(
                frontier,
                reference.frontier(user),
                "{label}/{shards}: user {raw} vs full-history reference engine"
            );
        }
        // Compaction actually reduced the retained history (the stream
        // repeats dominated value vectors), and STATS sees it per shard.
        let stats = engine.stats();
        let full = reference.stats();
        assert!(
            stats.history_objects < full.history_objects,
            "{label}/{shards}: compaction retained {} of {} objects",
            stats.history_objects,
            full.history_objects
        );
        assert!(
            stats.history_evicted > 0,
            "{label}/{shards}: nothing evicted"
        );
        assert_eq!(
            stats.history_objects + stats.history_evicted,
            full.history_objects,
            "{label}/{shards}: retained + evicted must cover the stream"
        );
    }
}

#[test]
fn compacted_backfill_is_exact_baseline() {
    run_backend_compact(
        BackendSpec::parse("baseline:compact").unwrap(),
        BackendSpec::baseline(),
        "baseline:compact",
    );
}

#[test]
fn compacted_backfill_is_exact_filter_then_verify() {
    run_backend_compact(
        BackendSpec::parse("ftv:0.45:compact").unwrap(),
        BackendSpec::ftv(0.45),
        "ftv:compact",
    );
}

#[test]
fn compacted_backfill_is_exact_baseline_with_slack_cap() {
    // A hard cap far above the retained set never bites: semantics are
    // identical to plain compaction.
    run_backend_compact(
        BackendSpec::parse("baseline:compact:100000").unwrap(),
        BackendSpec::baseline(),
        "baseline:compact:slack",
    );
}

#[test]
fn compacted_backfill_is_exact_filter_then_verify_with_slack_cap() {
    run_backend_compact(
        BackendSpec::parse("ftv:0.45:compact:100000").unwrap(),
        BackendSpec::ftv(0.45),
        "ftv:compact:slack",
    );
}

/// Def. 7.4 boundary audit: an in-place UPDATE rebuilds the sliding
/// monitors' frontier *and* Pareto-frontier buffer by replaying the window.
/// An off-by-one between that replay and incremental maintenance would
/// surface exactly when the update lands at an expiry boundary (window just
/// filled, oldest object about to expire) — the rebuilt buffer drives the
/// next expiry's mending. Sweep every update position across several window
/// sizes, continue the stream past further expiries, and require frontier
/// and buffer to match a from-start monitor at every step.
#[test]
fn sliding_update_at_every_expiry_boundary_matches_from_start() {
    let profile = DatasetProfile::movie()
        .with_users(6)
        .with_objects(60)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 41);
    let stream: Vec<Object> = dataset.stream(30).iter().collect();
    let users: Vec<Preference> = dataset.preferences[..4].to_vec();
    let new_pref = dataset.preferences[5].clone();
    for window in [1usize, 2, 3, 5, 8] {
        for pos in 0..stream.len() {
            // The churned monitor: update user 1 after `pos` arrivals.
            let mut churned = BaselineSwMonitor::new(users.clone(), window);
            let mut ftv = FilterThenVerifySwMonitor::with_clustering(
                users.clone(),
                Clustering::new(&users, ExactMeasure::Jaccard, 100.0),
                window,
            );
            for o in &stream[..pos] {
                churned.process(o.clone());
                ftv.process(o.clone());
            }
            churned.update_user(UserId::new(1), new_pref.clone());
            ftv.update_user(UserId::new(1), new_pref.clone());
            // The from-start monitor holds the final preference throughout.
            let mut final_prefs = users.clone();
            final_prefs[1] = new_pref.clone();
            let mut from_start = BaselineSwMonitor::new(final_prefs, window);
            for o in &stream[..pos] {
                from_start.process(o.clone());
            }
            // Immediately after the rebuild the buffer must already agree —
            // this is the Def. 7.4 off-by-one the audit targets.
            assert_eq!(
                churned.buffer(UserId::new(1)),
                from_start.buffer(UserId::new(1)),
                "window={window} pos={pos}: rebuilt buffer diverged"
            );
            // Continue across at least two further expiries: mending after
            // expiry consumes the rebuilt buffer.
            for o in &stream[pos..] {
                let a = churned.process(o.clone());
                let b = from_start.process(o.clone());
                let c = ftv.process(o.clone());
                assert_eq!(
                    a.target_users,
                    b.target_users,
                    "window={window} pos={pos}: arrivals diverged at {}",
                    o.id()
                );
                assert_eq!(
                    a.target_users,
                    c.target_users,
                    "window={window} pos={pos}: ftv-sw arrivals diverged at {}",
                    o.id()
                );
                for u in 0..4usize {
                    assert_eq!(
                        churned.frontier(UserId::from(u)),
                        from_start.frontier(UserId::from(u)),
                        "window={window} pos={pos}: frontier of user {u} diverged"
                    );
                }
                assert_eq!(
                    churned.buffer(UserId::new(1)),
                    from_start.buffer(UserId::new(1)),
                    "window={window} pos={pos}: buffer diverged after {}",
                    o.id()
                );
            }
        }
    }
}

/// The universe-extension slow path: a REGISTER or UPDATE naming attribute
/// values (on several attributes) that no clustering state has ever seen
/// forces the shared per-attribute universes to grow and every compiled
/// state to be rebuilt — results must stay exact on all four backends.
#[test]
fn universe_extension_slow_path_stays_exact_for_all_backends() {
    use pm_model::{AttrId, ValueId};
    let profile = DatasetProfile::movie()
        .with_users(12)
        .with_objects(120)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 23);
    let arity = dataset.dimensions();
    let stream: Vec<Object> = dataset.stream(160).iter().collect();
    // Values 9000+ never occur in the generated dataset: both preferences
    // trigger the recompile-everything slow path, on different attributes.
    let mut alien_register = Preference::new(arity);
    alien_register.prefer(AttrId::new(0), ValueId::new(9000), ValueId::new(9001));
    alien_register.prefer(
        AttrId::new(arity as u32 - 1),
        ValueId::new(9001),
        ValueId::new(9002),
    );
    let mut alien_update = Preference::new(arity);
    alien_update.prefer(AttrId::new(1), ValueId::new(9100), ValueId::new(9101));
    alien_update.prefer(AttrId::new(1), ValueId::new(9101), ValueId::new(9102));
    let specs: Vec<(BackendSpec, &str)> = vec![
        (BackendSpec::baseline(), "baseline"),
        (BackendSpec::ftv(0.45), "ftv"),
        (BackendSpec::BaselineSw { window: 60 }, "baseline-sw"),
        (
            BackendSpec::FilterThenVerifySw {
                branch_cut: 100.0,
                window: 60,
            },
            "ftv-sw",
        ),
    ];
    for (spec, label) in specs {
        let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(2), &spec);
        engine.process_batch(stream[..80].to_vec());
        engine
            .register(UserId::new(500), alien_register.clone())
            .unwrap();
        engine.update(UserId::new(3), alien_update.clone()).unwrap();
        engine.process_batch(stream[80..].to_vec());
        // A fresh engine with the final population (alien values present
        // from the very first compile) must agree on every frontier.
        let fresh = ShardedEngine::empty(&EngineConfig::new(2), &spec);
        let mut final_pop: Vec<(UserId, Preference)> = dataset
            .preferences
            .iter()
            .enumerate()
            .map(|(i, p)| (UserId::from(i), p.clone()))
            .collect();
        final_pop[3].1 = alien_update.clone();
        final_pop.push((UserId::new(500), alien_register.clone()));
        for (user, pref) in &final_pop {
            fresh.register(*user, pref.clone()).unwrap();
        }
        for chunk in stream.chunks(BATCH) {
            fresh.process_batch(chunk.to_vec());
        }
        for (user, _) in &final_pop {
            assert_eq!(
                engine.frontier(*user),
                fresh.frontier(*user),
                "{label}: user {user} after universe extension"
            );
        }
    }
}

/// Registration and ingestion from different threads must interleave safely
/// (batch-granular ordering, no deadlock, no lost arrival).
#[test]
fn concurrent_registration_during_ingest_is_safe() {
    let profile = DatasetProfile::movie()
        .with_users(24)
        .with_objects(120)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 11);
    let engine = Arc::new(ShardedEngine::new(
        dataset.preferences.clone(),
        &EngineConfig::new(4),
        &BackendSpec::ftv(0.45),
    ));
    let stream: Vec<Object> = dataset.stream(480).iter().collect();

    let ingester = {
        let engine = Arc::clone(&engine);
        let stream = stream.clone();
        std::thread::spawn(move || {
            let mut processed = 0usize;
            for chunk in stream.chunks(32) {
                processed += engine.process_batch(chunk.to_vec()).len();
            }
            processed
        })
    };
    // Churn 40 register/update/unregister rounds while the stream is in
    // flight.
    for i in 0..40u32 {
        let user = UserId::new(1_000 + i);
        let pref = dataset.preferences[(i as usize) % dataset.num_users()].clone();
        engine.register(user, pref).unwrap();
        if i >= 4 {
            let updated = UserId::new(1_000 + i - 4);
            let new_pref = dataset.preferences[((i + 7) as usize) % dataset.num_users()].clone();
            engine.update(updated, new_pref).unwrap();
        }
        if i >= 8 {
            engine.unregister(UserId::new(1_000 + i - 8)).unwrap();
        }
    }
    let processed = ingester.join().expect("ingester panicked");
    assert_eq!(processed, stream.len());
    assert_eq!(engine.stats().arrivals, stream.len() as u64);
    assert_eq!(engine.num_users(), dataset.num_users() + 8);
    // Every surviving registered user answers frontier queries.
    for i in 32..40u32 {
        let _ = engine.frontier(UserId::new(1_000 + i));
    }
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.users, dataset.num_users() + 8);
}
