//! Dynamic-membership oracle equivalence: an interleaved stream of
//! INGEST / REGISTER / UNREGISTER events must leave every surviving user
//! with a frontier identical to (a) a per-user oracle that replays the
//! alive objects and (b) a *fresh* engine built with the final population
//! and fed the alive objects — across all four backends and 1/2/4/8 shards.
//!
//! The per-object arrival comparison additionally proves that a REGISTER
//! during an active stream never drops or duplicates a notification: every
//! batch enqueued after the registration considers the user, every batch
//! before it does not.
//!
//! Backend notes: `Baseline`, `BaselineSw` and append-only
//! `FilterThenVerify` are exact under any clustering (Lemma 4.6), so the
//! FTV run uses a real branch cut and genuinely exercises incremental
//! cluster joins/repairs. `FilterThenVerifySw` is only exact when every
//! cluster is a singleton, so its oracle run pins an unreachable branch cut
//! (the paper's approximation error is otherwise clustering-dependent);
//! cluster-structure invariants under churn are covered by the property
//! tests instead.

use std::collections::BTreeMap;
use std::sync::Arc;

use pm_core::{BaselineMonitor, BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::{Object, ObjectId, UserId};
use pm_porder::Preference;

const WINDOW: usize = 120;
const BATCH: usize = 24;

/// One step of the interleaved script.
enum Event {
    Ingest(Vec<Object>),
    Register(UserId, Preference),
    Unregister(UserId),
}

/// Builds the deterministic event script: 24 initial users, a pool of late
/// registrations under sparse ids (200+), periodic unregistrations, and one
/// id that is unregistered and later *re-registered with a different
/// preference*.
fn build_script() -> (Vec<(UserId, Preference)>, Vec<Event>) {
    let profile = DatasetProfile::movie()
        .with_users(36)
        .with_objects(240)
        .with_interactions(45);
    let dataset = Dataset::generate(&profile, 97);
    let stream: Vec<Object> = dataset.stream(360).iter().collect();
    let initial: Vec<(UserId, Preference)> = (0..24)
        .map(|u| (UserId::from(u), dataset.preferences[u].clone()))
        .collect();

    let mut live: Vec<UserId> = initial.iter().map(|(u, _)| *u).collect();
    let mut events = Vec::new();
    let mut next_pool = 24usize;
    let mut next_id = 200u32;
    let mut recycled: Option<(UserId, Preference)> = None;
    for (i, chunk) in stream.chunks(BATCH).enumerate() {
        events.push(Event::Ingest(chunk.to_vec()));
        if i % 3 != 1 {
            // Register: prefer the recycled id (re-registration with a
            // different preference), else draw from the pool.
            if let Some((user, pref)) = recycled.take() {
                events.push(Event::Register(user, pref));
                live.push(user);
            } else if next_pool < dataset.preferences.len() {
                let user = UserId::new(next_id);
                next_id += 1;
                let pref = dataset.preferences[next_pool].clone();
                next_pool += 1;
                events.push(Event::Register(user, pref));
                live.push(user);
            }
        }
        if i % 3 != 0 && live.len() > 4 {
            let idx = (i * 7) % live.len();
            let user = live.swap_remove(idx);
            events.push(Event::Unregister(user));
            if i == 7 {
                // Later, give this id a brand-new preference.
                let pref = dataset.preferences[(i * 5) % dataset.preferences.len()].clone();
                recycled = Some((user, pref));
            }
        }
    }
    assert!(events.iter().any(|e| matches!(e, Event::Register(..))));
    assert!(events.iter().any(|e| matches!(e, Event::Unregister(..))));
    (initial, events)
}

/// Ground truth: one single-user exact monitor per registered user,
/// backfilled from the alive objects at registration time.
struct Oracle {
    window: Option<usize>,
    history: Vec<Object>,
    users: BTreeMap<u32, Box<dyn ContinuousMonitor>>,
}

impl Oracle {
    fn new(window: Option<usize>) -> Self {
        Self {
            window,
            history: Vec::new(),
            users: BTreeMap::new(),
        }
    }

    fn register(&mut self, user: UserId, pref: Preference) {
        let mut monitor: Box<dyn ContinuousMonitor> = match self.window {
            Some(w) => Box::new(BaselineSwMonitor::new(vec![pref], w)),
            None => Box::new(BaselineMonitor::new(vec![pref])),
        };
        let start = match self.window {
            Some(w) => self.history.len().saturating_sub(w),
            None => 0,
        };
        for object in &self.history[start..] {
            monitor.process(object.clone());
        }
        assert!(self.users.insert(user.raw(), monitor).is_none());
    }

    fn unregister(&mut self, user: UserId) {
        assert!(self.users.remove(&user.raw()).is_some());
    }

    /// Processes one arrival and returns its target users, ascending.
    fn ingest(&mut self, object: Object) -> Vec<UserId> {
        self.history.push(object.clone());
        let mut targets = Vec::new();
        for (&raw, monitor) in self.users.iter_mut() {
            if monitor.process(object.clone()).has_targets() {
                targets.push(UserId::new(raw));
            }
        }
        targets
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        self.users[&user.raw()].frontier(UserId::new(0))
    }

    /// The currently alive objects, oldest first.
    fn alive(&self) -> Vec<Object> {
        let start = match self.window {
            Some(w) => self.history.len().saturating_sub(w),
            None => 0,
        };
        self.history[start..].to_vec()
    }
}

fn run_backend(spec: BackendSpec, window: Option<usize>, label: &str) {
    let (initial, events) = build_script();
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(
            initial.iter().map(|(_, p)| p.clone()).collect(),
            &EngineConfig::new(shards),
            &spec,
        );
        let mut oracle = Oracle::new(window);
        let mut population: BTreeMap<u32, Preference> = BTreeMap::new();
        for (user, pref) in &initial {
            oracle.register(*user, pref.clone());
            population.insert(user.raw(), pref.clone());
        }

        for event in &events {
            match event {
                Event::Ingest(chunk) => {
                    let arrivals = engine.process_batch(chunk.clone());
                    assert_eq!(arrivals.len(), chunk.len());
                    for (object, arrival) in chunk.iter().zip(&arrivals) {
                        let expected = oracle.ingest(object.clone());
                        assert_eq!(
                            arrival.target_users,
                            expected,
                            "{label}/{shards}: arrival {} disagrees with oracle",
                            object.id()
                        );
                    }
                }
                Event::Register(user, pref) => {
                    engine.register(*user, pref.clone()).unwrap();
                    oracle.register(*user, pref.clone());
                    population.insert(user.raw(), pref.clone());
                }
                Event::Unregister(user) => {
                    engine.unregister(*user).unwrap();
                    oracle.unregister(*user);
                    population.remove(&user.raw());
                }
            }
        }

        // A fresh engine built with the final population, fed the alive
        // objects, must agree with the churned engine on every frontier.
        let fresh = ShardedEngine::empty(&EngineConfig::new(shards), &spec);
        for (&raw, pref) in &population {
            fresh.register(UserId::new(raw), pref.clone()).unwrap();
        }
        for chunk in oracle.alive().chunks(BATCH) {
            fresh.process_batch(chunk.to_vec());
        }
        for &raw in population.keys() {
            let user = UserId::new(raw);
            let dynamic = engine.frontier(user);
            assert_eq!(
                dynamic,
                oracle.frontier(user),
                "{label}/{shards}: user {raw} vs oracle"
            );
            assert_eq!(
                dynamic,
                fresh.frontier(user),
                "{label}/{shards}: user {raw} vs fresh engine"
            );
        }
        assert_eq!(engine.num_users(), population.len());
    }
}

#[test]
fn dynamic_membership_matches_oracle_baseline() {
    run_backend(BackendSpec::Baseline, None, "baseline");
}

#[test]
fn dynamic_membership_matches_oracle_filter_then_verify() {
    // A real branch cut: registrations join existing clusters and removals
    // repair them; Lemma 4.6 keeps the results exact regardless.
    run_backend(
        BackendSpec::FilterThenVerify { branch_cut: 0.45 },
        None,
        "ftv",
    );
}

#[test]
fn dynamic_membership_matches_oracle_baseline_sw() {
    run_backend(
        BackendSpec::BaselineSw { window: WINDOW },
        Some(WINDOW),
        "baseline-sw",
    );
}

#[test]
fn dynamic_membership_matches_oracle_filter_then_verify_sw() {
    // Singleton clusters (unreachable branch cut) make FilterThenVerifySW
    // exact, so the oracle equivalence is well-defined; see module docs.
    run_backend(
        BackendSpec::FilterThenVerifySw {
            branch_cut: 100.0,
            window: WINDOW,
        },
        Some(WINDOW),
        "ftv-sw",
    );
}

/// Registration and ingestion from different threads must interleave safely
/// (batch-granular ordering, no deadlock, no lost arrival).
#[test]
fn concurrent_registration_during_ingest_is_safe() {
    let profile = DatasetProfile::movie()
        .with_users(24)
        .with_objects(120)
        .with_interactions(40);
    let dataset = Dataset::generate(&profile, 11);
    let engine = Arc::new(ShardedEngine::new(
        dataset.preferences.clone(),
        &EngineConfig::new(4),
        &BackendSpec::FilterThenVerify { branch_cut: 0.45 },
    ));
    let stream: Vec<Object> = dataset.stream(480).iter().collect();

    let ingester = {
        let engine = Arc::clone(&engine);
        let stream = stream.clone();
        std::thread::spawn(move || {
            let mut processed = 0usize;
            for chunk in stream.chunks(32) {
                processed += engine.process_batch(chunk.to_vec()).len();
            }
            processed
        })
    };
    // Churn 40 register/unregister pairs while the stream is in flight.
    for i in 0..40u32 {
        let user = UserId::new(1_000 + i);
        let pref = dataset.preferences[(i as usize) % dataset.num_users()].clone();
        engine.register(user, pref).unwrap();
        if i >= 8 {
            engine.unregister(UserId::new(1_000 + i - 8)).unwrap();
        }
    }
    let processed = ingester.join().expect("ingester panicked");
    assert_eq!(processed, stream.len());
    assert_eq!(engine.stats().arrivals, stream.len() as u64);
    assert_eq!(engine.num_users(), dataset.num_users() + 8);
    // Every surviving registered user answers frontier queries.
    for i in 32..40u32 {
        let _ = engine.frontier(UserId::new(1_000 + i));
    }
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.users, dataset.num_users() + 8);
}
