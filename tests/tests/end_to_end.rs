//! Cross-crate integration tests: datasets from `pm-datagen`, clustering
//! from `pm-cluster`, monitors from `pm-core`, all exercised together.

use pm_cluster::{cluster_users, ApproxConfig, ClusteringConfig, ExactMeasure};
use pm_core::{
    AccuracyReport, BaselineMonitor, BaselineSwMonitor, ContinuousMonitor, FilterThenVerifyMonitor,
    FilterThenVerifySwMonitor,
};
use pm_integration_tests::{
    one_cluster, singleton_clusters, small_movie_dataset, small_publication_dataset,
};
use pm_model::UserId;
use pm_porder::naive_pareto_frontier;

#[test]
fn filter_then_verify_equals_baseline_on_generated_movie_data() {
    let dataset = small_movie_dataset(11);
    let outcome = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Exact {
            measure: ExactMeasure::Jaccard,
            branch_cut: 0.5,
        },
    );
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    let mut ftv = FilterThenVerifyMonitor::new(dataset.preferences.clone(), &outcome.clusters);
    for object in &dataset.objects {
        let a = baseline.process(object.clone());
        let b = ftv.process(object.clone());
        assert_eq!(a.target_users, b.target_users, "object {}", a.object);
    }
    for user in 0..dataset.num_users() {
        assert_eq!(
            baseline.frontier(UserId::from(user)),
            ftv.frontier(UserId::from(user)),
            "user {user}"
        );
    }
}

#[test]
fn baseline_matches_naive_oracle_on_publication_data() {
    let dataset = small_publication_dataset(3);
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    for object in &dataset.objects {
        baseline.process(object.clone());
    }
    for (user, pref) in dataset.preferences.iter().enumerate() {
        let mut oracle = naive_pareto_frontier(pref, &dataset.objects);
        oracle.sort_unstable();
        assert_eq!(baseline.frontier(UserId::from(user)), oracle, "user {user}");
    }
}

#[test]
fn approx_monitor_respects_theorem_6_5_and_lemma_6_6() {
    let dataset = small_movie_dataset(5);
    let clusters = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Exact {
            measure: ExactMeasure::Jaccard,
            branch_cut: 0.4,
        },
    )
    .clusters;
    let mut exact = FilterThenVerifyMonitor::new(dataset.preferences.clone(), &clusters);
    let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
        dataset.preferences.clone(),
        &clusters,
        ApproxConfig::new(256, 0.5),
    );
    for object in &dataset.objects {
        exact.process(object.clone());
        approx.process(object.clone());
    }
    for cluster in 0..clusters.len() {
        let exact_pu = exact.cluster_frontier(cluster);
        let approx_pu = approx.cluster_frontier(cluster);
        // Theorem 6.5: P̂_U ⊆ P_U.
        for id in &approx_pu {
            assert!(exact_pu.contains(id), "P̂_U ⊄ P_U at {id}");
        }
        // Lemma 6.6: P̂_c ⊆ P̂_U for every member of the cluster.
        for member in exact.cluster_members(cluster) {
            for id in approx.frontier(*member) {
                assert!(approx_pu.contains(&id), "P̂_c ⊄ P̂_U at {id}");
            }
        }
    }
}

#[test]
fn approximation_accuracy_is_high_and_precision_dominates_recall() {
    let dataset = small_movie_dataset(23);
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    let clusters = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Exact {
            measure: ExactMeasure::Jaccard,
            branch_cut: 0.4,
        },
    )
    .clusters;
    let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
        dataset.preferences.clone(),
        &clusters,
        ApproxConfig::new(512, 0.6),
    );
    for object in &dataset.objects {
        baseline.process(object.clone());
        approx.process(object.clone());
    }
    let report = AccuracyReport::compare(&baseline.all_frontiers(), &approx.all_frontiers());
    // The paper observes near-perfect precision and recall above ~80% for
    // θ2 in this range (Table 11); allow generous slack for the simulator.
    assert!(report.precision() > 0.9, "precision {}", report.precision());
    assert!(report.recall() > 0.5, "recall {}", report.recall());
    assert!(report.precision() >= report.recall());
}

#[test]
fn sliding_window_singleton_clusters_match_baseline_sw() {
    let dataset = small_movie_dataset(31);
    let window = 60;
    let stream: Vec<_> = dataset.stream(500).iter().collect();
    let mut baseline = BaselineSwMonitor::new(dataset.preferences.clone(), window);
    let mut ftv = FilterThenVerifySwMonitor::with_virtual_preferences(
        dataset.preferences.clone(),
        singleton_clusters(&dataset.preferences),
        window,
    );
    for object in stream {
        let a = baseline.process(object.clone());
        let b = ftv.process(object);
        assert_eq!(a.target_users, b.target_users, "object {}", a.object);
    }
    for user in 0..dataset.num_users() {
        assert_eq!(
            baseline.frontier(UserId::from(user)),
            ftv.frontier(UserId::from(user))
        );
    }
}

#[test]
fn sliding_window_baseline_matches_windowed_oracle() {
    let dataset = small_publication_dataset(13);
    let window = 40;
    let arrivals: Vec<_> = dataset.stream(160).iter().collect();
    let mut monitor = BaselineSwMonitor::new(dataset.preferences.clone(), window);
    for (i, object) in arrivals.iter().enumerate() {
        monitor.process(object.clone());
        if (i + 1) % 37 != 0 {
            continue; // spot-check a few positions to keep the test fast
        }
        let start = (i + 1).saturating_sub(window);
        let alive = &arrivals[start..=i];
        for (user, pref) in dataset.preferences.iter().enumerate() {
            let mut oracle = naive_pareto_frontier(pref, alive);
            oracle.sort_unstable();
            assert_eq!(
                monitor.frontier(UserId::from(user)),
                oracle,
                "user {user} at arrival {i}"
            );
        }
    }
}

#[test]
fn sliding_window_cluster_invariants_hold_on_stream() {
    let dataset = small_movie_dataset(17);
    let window = 50;
    let mut ftv = FilterThenVerifySwMonitor::with_virtual_preferences(
        dataset.preferences.clone(),
        one_cluster(&dataset.preferences),
        window,
    );
    for (i, object) in dataset.stream(400).iter().enumerate() {
        ftv.process(object);
        if i % 29 != 0 {
            continue;
        }
        let pu = ftv.cluster_frontier(0);
        let pbu = ftv.cluster_buffer(0);
        for id in &pu {
            assert!(pbu.contains(id), "PB_U ⊉ P_U at {id}");
        }
        for user in 0..dataset.num_users() {
            for id in ftv.frontier(UserId::from(user)) {
                assert!(pu.contains(&id), "P_U ⊉ P_c at {id}");
            }
        }
    }
}

#[test]
fn monitors_count_work_consistently() {
    let dataset = small_movie_dataset(41);
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    for object in &dataset.objects {
        baseline.process(object.clone());
    }
    let stats = baseline.stats();
    assert_eq!(stats.arrivals as usize, dataset.num_objects());
    assert_eq!(stats.expirations, 0);
    assert!(stats.comparisons > 0);
    assert!(stats.notifications > 0);
}
