//! The sharded engine must be semantically invisible: for any stream, any
//! backend and any shard count, its per-object target-user sets and final
//! frontiers are identical to the single-threaded monitor's.
//!
//! The large-scale tests replay a 10,000-object stream against a
//! 1,000-user population — the user-population scale of the paper's
//! evaluation (Sec. 8.1) — for both append-only and sliding-window
//! backends. Those streams use a quality-correlated workload with
//! near-total-order preferences so that frontiers stay small and a full
//! oracle pass costs seconds, not minutes (the movie-profile simulator
//! yields ~40% frontier density, which makes a 10k × 1k baseline pass take
//! minutes — realistic for the paper's figures, hopeless for CI).
//! Realistic movie-profile data is covered at a medium scale where every
//! shard count 1–8 is checked, and the property tests drive arbitrary
//! preferences, streams, windows and shard counts.

use proptest::prelude::*;

use pm_core::{Arrival, BaselineMonitor, BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::{AttrId, Object, ObjectId, UserId, ValueId};
use pm_porder::{Preference, Relation};

/// Batch size used when feeding the engine; exercises the batched path.
const BATCH: usize = 512;

const CHAIN_DOM: u32 = 10;
const CHAIN_ATTRS: usize = 4;

/// A population whose preferences are near-total orders. On attribute 0 the
/// value chain is broken at a user-specific rank (two incomparable
/// segments, so low-segment champions stay Pareto-optimal); on the other
/// attributes the chain carries one user-specific adjacent transposition,
/// so users disagree about neighbouring values and target sets differ
/// across users.
fn chain_population(users: usize) -> Vec<Preference> {
    (0..users)
        .map(|u| {
            let mut pref = Preference::new(CHAIN_ATTRS);
            let break_at = (u % (CHAIN_DOM as usize - 1)) as u32;
            for v in 0..CHAIN_DOM - 1 {
                if v == break_at {
                    continue;
                }
                pref.prefer(AttrId::new(0), ValueId::new(v + 1), ValueId::new(v));
            }
            for attr in 1..CHAIN_ATTRS {
                let swap = ((u / 7 + attr) % (CHAIN_DOM as usize - 1)) as u32;
                let place = |rank: u32| {
                    if rank == swap {
                        swap + 1
                    } else if rank == swap + 1 {
                        swap
                    } else {
                        rank
                    }
                };
                for rank in 0..CHAIN_DOM - 1 {
                    pref.prefer(
                        AttrId::from(attr),
                        ValueId::new(place(rank + 1)),
                        ValueId::new(place(rank)),
                    );
                }
            }
            pref
        })
        .collect()
}

/// A deterministic stream of `n` objects whose attribute values cluster
/// around a per-object quality level (correlated attributes keep Pareto
/// frontiers small while ties and jitter keep the target sets non-trivial).
fn chain_stream(n: usize) -> Vec<Object> {
    (0..n)
        .map(|i| {
            let mut h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                h
            };
            let quality = (next() % u64::from(CHAIN_DOM)) as i64;
            let values = (0..CHAIN_ATTRS)
                .map(|_| {
                    let jitter = (next() % 3) as i64 - 1;
                    ValueId::new((quality + jitter).clamp(0, i64::from(CHAIN_DOM) - 1) as u32)
                })
                .collect();
            Object::new(ObjectId::from(i), values)
        })
        .collect()
}

fn run_engine(engine: &ShardedEngine, stream: &[Object]) -> Vec<Arrival> {
    let mut arrivals = Vec::with_capacity(stream.len());
    for chunk in stream.chunks(BATCH) {
        arrivals.extend(engine.process_batch(chunk.to_vec()));
    }
    arrivals
}

fn assert_engine_matches<M: ContinuousMonitor>(
    engine: &ShardedEngine,
    stream: &[Object],
    expected: &[Arrival],
    oracle: &M,
    label: &str,
) {
    let got = run_engine(engine, stream);
    assert_eq!(got.len(), expected.len(), "{label}: arrival count");
    for (g, e) in got.iter().zip(expected) {
        assert_eq!(g, e, "{label}: object {}", e.object);
    }
    for user in 0..oracle.num_users() {
        assert_eq!(
            engine.frontier(UserId::from(user)),
            oracle.frontier(UserId::from(user)),
            "{label}: frontier of user {user}"
        );
    }
}

#[test]
fn sharded_engine_matches_baseline_oracle_on_10k_by_1k_stream() {
    let prefs = chain_population(1_000);
    let stream = chain_stream(10_000);
    let mut oracle = BaselineMonitor::new(prefs.clone());
    let expected: Vec<Arrival> = stream.iter().cloned().map(|o| oracle.process(o)).collect();
    // Some objects must target some users, or the test proves nothing.
    assert!(expected.iter().filter(|a| a.has_targets()).count() > 100);
    for shards in [3usize, 8] {
        let engine = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(shards),
            &BackendSpec::baseline(),
        );
        assert_engine_matches(
            &engine,
            &stream,
            &expected,
            &oracle,
            &format!("append-only/{shards}"),
        );
        let stats = engine.stats();
        assert_eq!(stats.arrivals, 10_000, "shards={shards}");
        assert_eq!(
            stats.notifications,
            oracle.stats().notifications,
            "shards={shards}"
        );
    }
}

#[test]
fn sharded_engine_matches_sliding_window_oracle_on_10k_by_1k_stream() {
    let prefs = chain_population(1_000);
    let stream = chain_stream(10_000);
    let window = 1_000;
    let mut oracle = BaselineSwMonitor::new(prefs.clone(), window);
    let expected: Vec<Arrival> = stream.iter().cloned().map(|o| oracle.process(o)).collect();
    assert!(expected.iter().filter(|a| a.has_targets()).count() > 100);
    let engine = ShardedEngine::new(
        prefs.clone(),
        &EngineConfig::new(8),
        &BackendSpec::BaselineSw { window },
    );
    assert_engine_matches(&engine, &stream, &expected, &oracle, "sliding/8");
    let stats = engine.stats();
    assert_eq!(stats.expirations, (10_000 - window) as u64);
    assert_eq!(stats.expirations, oracle.stats().expirations);
}

#[test]
fn every_shard_count_matches_on_movie_profile_data() {
    let profile = DatasetProfile::movie()
        .with_users(60)
        .with_objects(400)
        .with_interactions(50);
    let dataset = Dataset::generate(&profile, 41);
    let stream: Vec<Object> = dataset.stream(800).iter().collect();
    for (spec, label) in [
        (BackendSpec::baseline(), "append-only"),
        (BackendSpec::BaselineSw { window: 200 }, "sliding"),
    ] {
        let expected: Vec<Arrival> = match spec {
            BackendSpec::Baseline { .. } => {
                let mut oracle = BaselineMonitor::new(dataset.preferences.clone());
                stream.iter().cloned().map(|o| oracle.process(o)).collect()
            }
            BackendSpec::BaselineSw { window } => {
                let mut oracle = BaselineSwMonitor::new(dataset.preferences.clone(), window);
                stream.iter().cloned().map(|o| oracle.process(o)).collect()
            }
            _ => unreachable!(),
        };
        for shards in 1usize..=8 {
            let engine = ShardedEngine::new(
                dataset.preferences.clone(),
                &EngineConfig::new(shards),
                &spec,
            );
            let got = run_engine(&engine, &stream);
            assert_eq!(got, expected, "{label}: shards={shards}");
        }
    }
}

#[test]
fn filter_then_verify_backend_matches_baseline_oracle_under_sharding() {
    // FilterThenVerify clusters each shard's users independently; the
    // reported target sets must still be exactly the baseline's (Lemma 4.6
    // holds per cluster, sharding adds nothing).
    let profile = DatasetProfile::movie()
        .with_users(100)
        .with_objects(400)
        .with_interactions(50);
    let dataset = Dataset::generate(&profile, 73);
    let mut oracle = BaselineMonitor::new(dataset.preferences.clone());
    let expected: Vec<Arrival> = dataset
        .objects
        .iter()
        .cloned()
        .map(|o| oracle.process(o))
        .collect();
    for shards in [1usize, 4, 7] {
        let engine = ShardedEngine::new(
            dataset.preferences.clone(),
            &EngineConfig::new(shards),
            &BackendSpec::ftv(0.55),
        );
        let got = run_engine(&engine, &dataset.objects);
        assert_eq!(got, expected, "ftv shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// Property: the shard count never changes any result.
// ---------------------------------------------------------------------------

const DOMAIN: u32 = 5;
const ATTRS: usize = 3;

fn preference_strategy() -> impl Strategy<Value = Preference> {
    proptest::collection::vec(
        proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..12),
        ATTRS,
    )
    .prop_map(|attrs| {
        let relations: Vec<Relation> = attrs
            .into_iter()
            .map(|edges| {
                let mut rel = Relation::new();
                for (x, y) in edges {
                    // Edges that would break the strict-partial-order laws
                    // are skipped, mirroring construction from real data.
                    let _ = rel.insert(ValueId::new(x), ValueId::new(y));
                }
                rel
            })
            .collect();
        Preference::from_relations(relations)
    })
}

fn objects_strategy() -> impl Strategy<Value = Vec<Object>> {
    proptest::collection::vec(proptest::collection::vec(0..DOMAIN, ATTRS), 1..40).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, vals)| {
                Object::new(
                    ObjectId::from(i),
                    vals.into_iter().map(ValueId::new).collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Append-only: an engine with any shard count reproduces the
    /// single-threaded baseline exactly.
    #[test]
    fn shard_count_never_changes_append_only_results(
        prefs in proptest::collection::vec(preference_strategy(), 1..14),
        objects in objects_strategy(),
        shards in 1usize..=8,
    ) {
        let mut oracle = BaselineMonitor::new(prefs.clone());
        let expected: Vec<Arrival> = objects.iter().cloned().map(|o| oracle.process(o)).collect();
        let engine = ShardedEngine::new(prefs.clone(), &EngineConfig::new(shards), &BackendSpec::baseline());
        let got = run_engine(&engine, &objects);
        prop_assert_eq!(got, expected);
        for user in 0..prefs.len() {
            prop_assert_eq!(
                engine.frontier(UserId::from(user)),
                oracle.frontier(UserId::from(user))
            );
        }
    }

    /// Sliding window: same, including expiry-driven frontier mending.
    #[test]
    fn shard_count_never_changes_sliding_window_results(
        prefs in proptest::collection::vec(preference_strategy(), 1..10),
        objects in objects_strategy(),
        shards in 1usize..=8,
        window in 1usize..12,
    ) {
        let mut oracle = BaselineSwMonitor::new(prefs.clone(), window);
        let expected: Vec<Arrival> = objects.iter().cloned().map(|o| oracle.process(o)).collect();
        let engine = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(shards),
            &BackendSpec::BaselineSw { window },
        );
        let got = run_engine(&engine, &objects);
        prop_assert_eq!(got, expected);
        for user in 0..prefs.len() {
            prop_assert_eq!(
                engine.frontier(UserId::from(user)),
                oracle.frontier(UserId::from(user))
            );
        }
    }
}
