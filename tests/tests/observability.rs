//! Observability contract of the serving stack: the `METRICS` verb's
//! Prometheus text-format exposition (metric names, HELP/TYPE headers and
//! label sets are wire contract, pinned by a golden file and stable across
//! shard counts), the STATS latency percentiles, and the protocol rules
//! around the new verb (trailing arguments answer `ERR` without killing
//! the connection).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pm_engine::server::serve;
use pm_engine::{BackendSpec, EngineConfig, EngineService, ShardedEngine};
use pm_integration_tests::small_movie_dataset;

/// Arity of the movie schema used by all tests here.
const ARITY: usize = 4;

fn movie_service(backend: &str, shards: usize) -> EngineService {
    let dataset = small_movie_dataset(7);
    assert_eq!(dataset.dimensions(), ARITY);
    let spec = BackendSpec::parse(backend).expect("valid backend");
    let engine = ShardedEngine::new(dataset.preferences, &EngineConfig::new(shards), &spec);
    EngineService::new(engine, spec, ARITY, 64)
}

/// Drives every verb once so each per-verb series and stage histogram has
/// recorded at least one observation before the scrape.
fn exercise(svc: &EngineService) {
    for i in 0..8 {
        let r = svc.respond_line(&format!("INGEST {},{},{},{}", i % 3, i % 2, i % 4, i % 5));
        assert!(r.starts_with("OK INGESTED"), "{r}");
    }
    assert!(svc.respond_line("QUERY 0").starts_with("OK"));
    assert!(svc.respond_line("FRONTIER 0").starts_with("OK"));
    assert!(svc.respond_line("REGISTER 99 0>1;-;-;-").starts_with("OK"));
    assert!(svc.respond_line("UPDATE 99 1>0;-;-;-").starts_with("OK"));
    assert!(svc.respond_line("UNREGISTER 99").starts_with("OK"));
    assert!(svc.respond_line("EXPIRE").starts_with("OK"));
    assert!(svc.respond_line("STATS").starts_with("OK"));
    assert!(svc.respond_line("HEALTH").starts_with("OK"));
    // One parse failure, so the error counter is exercised too.
    assert!(svc.respond_line("GARBAGE").starts_with("ERR"));
}

/// Scrapes via the wire verb and strips the `OK METRICS <bytes>` header,
/// checking the advertised byte length against the body.
fn scrape(svc: &EngineService) -> String {
    let response = svc.respond_line("METRICS");
    let (header, body) = response.split_once('\n').expect("header + body");
    let bytes: usize = header
        .strip_prefix("OK METRICS ")
        .unwrap_or_else(|| panic!("bad METRICS header: {header}"))
        .parse()
        .expect("byte length");
    assert_eq!(body.len(), bytes, "header length must match the body");
    body.to_owned()
}

/// Reduces an exposition to its structural skeleton: comment lines are kept
/// verbatim, sample lines lose their value, and the label values that vary
/// with deployment shape or data (`shard`, `le`, `backend`, `shards`) are
/// normalized to `*` with consecutive duplicates collapsed. The skeleton is
/// therefore identical for any shard count and any ingested stream — it
/// pins exactly the wire contract: names, HELP/TYPE lines and label sets.
fn skeleton(exposition: &str) -> Vec<String> {
    let normalize = |name_and_labels: &str| -> String {
        let Some((name, labels)) = name_and_labels.split_once('{') else {
            return name_and_labels.to_owned();
        };
        let labels = labels.trim_end_matches('}');
        let normalized: Vec<String> = labels
            .split(',')
            .map(|pair| {
                let (key, _value) = pair.split_once('=').expect("k=\"v\" label");
                match key {
                    "shard" | "le" | "backend" | "shards" => format!("{key}=\"*\""),
                    _ => pair.to_owned(),
                }
            })
            .collect();
        format!("{name}{{{}}}", normalized.join(","))
    };
    let mut lines: Vec<String> = Vec::new();
    for line in exposition.lines() {
        let entry = if line.starts_with('#') {
            line.to_owned()
        } else {
            let name_and_labels = line.rsplit_once(' ').map_or(line, |(head, _value)| head);
            normalize(name_and_labels)
        };
        if lines.last() != Some(&entry) {
            lines.push(entry);
        }
    }
    lines
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/metrics_exposition.golden"
);

#[test]
fn metrics_exposition_skeleton_matches_golden_file() {
    let svc = movie_service("baseline", 2);
    exercise(&svc);
    let skeleton = skeleton(&scrape(&svc)).join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &skeleton).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        skeleton, golden,
        "metric names / HELP / TYPE / label sets changed; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and document the rename"
    );
}

#[test]
fn metrics_skeleton_is_stable_across_shard_counts_and_backends() {
    let reference = {
        let svc = movie_service("baseline", 1);
        exercise(&svc);
        skeleton(&scrape(&svc))
    };
    for (backend, shards) in [("baseline", 4), ("ftv:0.4", 2), ("baseline-sw:16", 3)] {
        let svc = movie_service(backend, shards);
        exercise(&svc);
        assert_eq!(
            skeleton(&scrape(&svc)),
            reference,
            "skeleton differs for backend={backend} shards={shards}"
        );
    }
}

#[test]
fn exposition_is_well_formed_prometheus_text_format() {
    let svc = movie_service("baseline", 2);
    exercise(&svc);
    let body = scrape(&svc);
    let mut typed: std::collections::HashMap<String, String> = Default::default();
    let mut helped: std::collections::HashSet<String> = Default::default();
    for line in body.lines() {
        assert!(!line.trim().is_empty(), "no blank lines inside the body");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(helped.insert(name.to_owned()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            assert!(helped.contains(name), "TYPE before HELP for {name}");
            typed.insert(name.to_owned(), kind.to_owned());
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let sample_name = series.split('{').next().unwrap();
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad sample value: {line}"));
            // Histogram samples append _bucket/_sum/_count to the family name.
            let family = typed.keys().find(|family| {
                sample_name == **family
                    || ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|suffix| sample_name == format!("{family}{suffix}"))
            });
            assert!(family.is_some(), "sample without TYPE header: {line}");
        }
    }
    // The acceptance-critical series are present with real observations.
    assert!(
        body.contains("pm_request_duration_seconds_count{verb=\"ingest\"}"),
        "{body}"
    );
    assert!(body.contains("pm_shard_queue_depth{shard=\"1\"}"), "{body}");
    assert!(body.contains("pm_ingest_stage_duration_seconds_count{stage=\"fan_in\"}"));
    let ingested = body
        .lines()
        .find(|l| l.starts_with("pm_objects_ingested_total"))
        .unwrap();
    assert_eq!(ingested, "pm_objects_ingested_total 8");
}

#[test]
fn stats_reports_latency_percentiles_and_recent_rate() {
    let svc = movie_service("baseline", 2);
    exercise(&svc);
    let stats = svc.respond_line("STATS");
    let field = |key: &str| -> f64 {
        stats
            .split_whitespace()
            .find_map(|f| f.strip_prefix(key))
            .unwrap_or_else(|| panic!("STATS lacks {key}: {stats}"))
            .parse()
            .unwrap()
    };
    let p50 = field("ingest_p50_us=");
    let p95 = field("ingest_p95_us=");
    let p99 = field("ingest_p99_us=");
    assert!(p50 > 0.0, "{stats}");
    assert!(p50 <= p95 && p95 <= p99, "{stats}");
    assert!(field("recent_arrivals_per_sec=") > 0.0, "{stats}");
}

#[test]
fn metrics_with_trailing_args_is_err_and_metrics_off_is_err() {
    let svc = movie_service("baseline", 2);
    assert!(svc.respond_line("METRICS 0.0.4").starts_with("ERR"));
    assert!(svc.respond_line("METRICS please").starts_with("ERR"));
    // The service still answers a clean scrape afterwards.
    assert!(svc.respond_line("METRICS").starts_with("OK METRICS "));

    let dataset = small_movie_dataset(7);
    let spec = BackendSpec::parse("baseline").unwrap();
    let off = ShardedEngine::new(
        dataset.preferences,
        &EngineConfig::new(2).with_metrics(false),
        &spec,
    );
    let off = EngineService::new(off, spec, ARITY, 64);
    assert!(off.respond_line("INGEST 1,1,1,1").starts_with("OK"));
    assert!(off
        .respond_line("METRICS")
        .starts_with("ERR metrics are disabled"));
    // STATS still answers, with zeroed percentiles.
    let stats = off.respond_line("STATS");
    assert!(stats.contains("ingest_p50_us=0"), "{stats}");
}

#[test]
fn metrics_over_tcp_survives_bad_args_and_streams_the_exposition() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let svc = Arc::new(movie_service("baseline", 2));
    exercise(&svc);
    let server_svc = Arc::clone(&svc);
    std::thread::spawn(move || serve(listener, server_svc));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut send = |req: &str| {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
    };
    let read_line = |reader: &mut BufReader<TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_owned()
    };

    // A malformed METRICS answers ERR and the connection keeps serving.
    send("METRICS 0.0.4");
    assert!(read_line(&mut reader).starts_with("ERR"));

    // A clean scrape: header advertises the body length; the body is
    // followed by one terminating blank line.
    send("METRICS");
    let header = read_line(&mut reader);
    let bytes: usize = header
        .strip_prefix("OK METRICS ")
        .unwrap_or_else(|| panic!("bad header: {header}"))
        .parse()
        .unwrap();
    let mut body = vec![0u8; bytes];
    reader.read_exact(&mut body).unwrap();
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("# TYPE pm_request_duration_seconds histogram"));
    assert!(body.contains("pm_shard_queue_depth{shard=\"0\"}"));
    assert_eq!(read_line(&mut reader), "", "blank-line terminator");

    // The same connection still serves ordinary verbs afterwards.
    send("HEALTH");
    assert!(read_line(&mut reader).starts_with("OK HEALTH"));
    send("QUIT");
    assert_eq!(read_line(&mut reader), "OK BYE");
}
