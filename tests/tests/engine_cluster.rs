//! Cluster oracle battery: a `pm-coord` cluster must be indistinguishable
//! from one engine over the whole population.
//!
//! Three oracles, all driven over real TCP through the in-process harness:
//!
//! * **One node is a bare server.** A 1-node cluster answers every
//!   deterministic verb byte-identically to an `EngineService` fed the
//!   same lines — the coordinator adds routing, not semantics.
//! * **Three nodes are one engine.** Under interleaved churn (REGISTER /
//!   INGEST / UPDATE / UNREGISTER), a 3-node cluster matches a
//!   single-engine oracle at every barrier on `FRONTIER` for every user,
//!   `QUERY` across the retained window, and the cluster `STATS` rollup
//!   fields — across four backends and 1/2/4 shards per node.
//! * **A killed node degrades, a rejoined node recovers.** With per-node
//!   WALs, killing a node leaves its key range answering
//!   `ERR degraded node=<n>` while every other range keeps serving and
//!   replication continues; respawning it on the same WAL and barriering
//!   on one `HEALTH` round trip replays the missed backlog suffix and
//!   restores full oracle equality.
//!
//! Plus the resize building block: [`pm_coord::Cluster::migrate_user`]
//! drains a user to another node via EXPORT + REGISTER + UNREGISTER and
//! the new owner's backfilled frontier matches the oracle.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use pm_coord::{
    spawn_coordinator, spawn_node, spawn_node_at, Cluster, ClusterConfig, NodeHandle, NodeSpec,
    TextClient, Topology,
};
use pm_engine::durability::DurabilityConfig;
use pm_engine::{BackendSpec, EngineConfig, EngineService, ShardedEngine};
use pm_model::{Partitioner, UserId};
use pm_wal::SyncPolicy;

const ARITY: usize = 3;
const DOM: usize = 6;
const HISTORY: usize = 64;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-cluster-test-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single-engine oracle: the same backend and shard count, the whole
/// population, driven through `respond_line`.
fn oracle(backend: &str, shards: usize) -> EngineService {
    let spec = BackendSpec::parse(backend).unwrap();
    let engine = ShardedEngine::new(Vec::new(), &EngineConfig::new(shards), &spec);
    EngineService::new(engine, spec, ARITY, HISTORY)
}

fn node_spec(backend: &str, shards: usize) -> NodeSpec {
    let mut spec = NodeSpec::new(BackendSpec::parse(backend).unwrap(), shards);
    spec.arity = ARITY;
    spec.history = HISTORY;
    spec
}

/// Spawns `n` nodes plus a coordinator over them; returns the node
/// handles, the coordinator handle and a connected client.
fn spawn_cluster(
    backend: &str,
    shards: usize,
    n: usize,
) -> (Vec<NodeHandle>, NodeHandle, TextClient) {
    let nodes: Vec<NodeHandle> = (0..n)
        .map(|_| spawn_node(&node_spec(backend, shards)).unwrap())
        .collect();
    let topology = Topology::new(nodes.iter().map(|h| h.addr().to_owned()).collect()).unwrap();
    let coord = spawn_coordinator(&topology, ClusterConfig::default()).unwrap();
    let client = TextClient::connect(coord.addr()).unwrap();
    (nodes, coord, client)
}

/// A user-specific chain preference in REGISTER/UPDATE row syntax.
fn preference_rows(user: u32) -> String {
    (0..ARITY)
        .map(|attr| {
            let skip = (user as usize + attr) % (DOM - 1);
            let pairs: Vec<String> = (0..DOM - 1)
                .filter(|&v| v != skip)
                .map(|v| format!("{}>{}", v + 1, v))
                .collect();
            if pairs.is_empty() {
                "-".to_owned()
            } else {
                pairs.join(",")
            }
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// A deterministic `INGEST` line for objects `start..start + count`.
fn ingest_line(start: usize, count: usize) -> String {
    let groups: Vec<String> = (start..start + count)
        .map(|i| {
            (0..ARITY)
                .map(|a| (((i * 7 + a * 3) ^ (i / 4)) % DOM).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    format!("INGEST {}", groups.join(";"))
}

/// The rollup fields the cluster `STATS` line must agree on with the
/// oracle. (`comparisons` is iteration-order dependent and partitioning
/// changes it; `shards`/`shard_users` describe topology, not state.)
const ROLLUP_KEYS: [&str; 7] = [
    "ingested=",
    "users=",
    "registrations=",
    "unregistrations=",
    "updates=",
    "notifications=",
    "expirations=",
];

fn stat_field(body: &str, key: &str) -> u64 {
    body.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

/// Extracts the rollup fields from the coordinator's cluster `STATS` line
/// (the part before the per-node breakdown).
fn cluster_rollup(response: &str) -> Vec<u64> {
    let cluster = response.split(" | ").next().unwrap();
    assert!(
        cluster.starts_with("OK STATS cluster "),
        "not a cluster STATS line: {response}"
    );
    ROLLUP_KEYS
        .iter()
        .map(|key| stat_field(cluster, key))
        .collect()
}

/// Extracts the same fields from a bare-engine `STATS` response.
fn oracle_rollup(response: &str) -> Vec<u64> {
    let body = response.strip_prefix("OK STATS ").unwrap();
    ROLLUP_KEYS
        .iter()
        .map(|key| stat_field(body, key))
        .collect()
}

/// Oracle equality at one barrier: every user's frontier, the whole
/// QUERY-able window, and the STATS rollup.
fn check_barrier(
    client: &mut TextClient,
    oracle: &EngineService,
    users: &[u32],
    ingested: usize,
    tag: &str,
) {
    for &user in users {
        let q = format!("FRONTIER {user}");
        assert_eq!(
            client.ask(&q).unwrap(),
            oracle.respond_line(&q),
            "{tag}: frontier of user {user} diverged"
        );
    }
    for id in ingested.saturating_sub(HISTORY)..ingested {
        let q = format!("QUERY {id}");
        assert_eq!(
            client.ask(&q).unwrap(),
            oracle.respond_line(&q),
            "{tag}: QUERY {id} diverged"
        );
    }
    assert_eq!(
        cluster_rollup(&client.ask("STATS").unwrap()),
        oracle_rollup(&oracle.respond_line("STATS")),
        "{tag}: STATS rollup diverged"
    );
}

/// Interleaved churn driven through cluster and oracle simultaneously,
/// asserting byte-identical responses on every deterministic verb and
/// full barrier equality after each churn step.
fn churn_against_oracle(backend: &str, shards: usize, n: usize) {
    let (nodes, coord, mut client) = spawn_cluster(backend, shards, n);
    let oracle = oracle(backend, shards);
    let tag = format!("{backend}/{shards}x{n}");
    let mut users: Vec<u32> = Vec::new();
    let mut ingested = 0usize;

    let drive = |client: &mut TextClient, line: &str| -> String {
        let cluster_response = client.ask(line).unwrap();
        let oracle_response = oracle.respond_line(line);
        assert_eq!(
            cluster_response, oracle_response,
            "{tag}: `{line}` diverged"
        );
        cluster_response
    };

    for user in 0..9u32 {
        let r = drive(
            &mut client,
            &format!("REGISTER {user} {}", preference_rows(user)),
        );
        assert!(r.starts_with(&format!("OK REGISTERED {user}")), "{r}");
        users.push(user);
    }
    for _ in 0..5 {
        let r = drive(&mut client, &ingest_line(ingested, 8));
        assert!(r.starts_with("OK INGESTED 8"), "{r}");
        ingested += 8;
    }
    check_barrier(&mut client, &oracle, &users, ingested, &tag);

    // Mid-stream registration backfills from the replicated history.
    let r = drive(
        &mut client,
        &format!("REGISTER 100 {}", preference_rows(100)),
    );
    assert!(r.starts_with("OK REGISTERED 100"), "{r}");
    users.push(100);
    let r = drive(&mut client, &ingest_line(ingested, 8));
    assert!(r.starts_with("OK INGESTED 8"), "{r}");
    ingested += 8;
    check_barrier(&mut client, &oracle, &users, ingested, &tag);

    // In-place update rebuilds one frontier; arity errors stay identical.
    let r = drive(&mut client, &format!("UPDATE 3 {}", preference_rows(77)));
    assert!(r.starts_with("OK UPDATED 3"), "{r}");
    drive(&mut client, "INGEST 1,2");
    drive(&mut client, "FRONTIER 9999");
    let r = drive(&mut client, "UNREGISTER 5");
    assert!(r.starts_with("OK UNREGISTERED 5"), "{r}");
    users.retain(|&u| u != 5);
    for _ in 0..2 {
        let r = drive(&mut client, &ingest_line(ingested, 8));
        assert!(r.starts_with("OK INGESTED 8"), "{r}");
        ingested += 8;
    }
    drive(&mut client, "EXPIRE");
    check_barrier(&mut client, &oracle, &users, ingested, &tag);

    coord.kill();
    for node in nodes {
        node.kill();
    }
}

#[test]
fn one_node_cluster_is_byte_identical_to_a_bare_server() {
    churn_against_oracle("baseline", 2, 1);
}

#[test]
fn three_node_cluster_matches_the_oracle_baseline() {
    for shards in [1, 2, 4] {
        churn_against_oracle("baseline", shards, 3);
    }
}

#[test]
fn three_node_cluster_matches_the_oracle_baseline_compact() {
    for shards in [1, 2, 4] {
        churn_against_oracle("baseline:compact", shards, 3);
    }
}

#[test]
fn three_node_cluster_matches_the_oracle_filter_then_verify() {
    for shards in [1, 2, 4] {
        churn_against_oracle("ftv:0.4:compact", shards, 3);
    }
}

#[test]
fn three_node_cluster_matches_the_oracle_sliding_window() {
    for shards in [1, 2, 4] {
        churn_against_oracle("baseline-sw:32", shards, 3);
    }
}

#[test]
fn killed_node_degrades_its_range_and_rejoins_through_wal_plus_backlog() {
    let backend = "baseline";
    let shards = 2;
    let wal_dirs: Vec<PathBuf> = (0..3).map(|i| test_dir(&format!("wal-{i}"))).collect();
    let spec_for = |dir: &PathBuf| {
        let mut spec = node_spec(backend, shards);
        spec.wal = Some(DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            snapshot_every: 0,
        });
        spec
    };
    let mut nodes: Vec<Option<NodeHandle>> = wal_dirs
        .iter()
        .map(|dir| Some(spawn_node(&spec_for(dir)).unwrap()))
        .collect();
    let addrs: Vec<String> = nodes
        .iter()
        .map(|h| h.as_ref().unwrap().addr().to_owned())
        .collect();
    let topology = Topology::new(addrs.clone()).unwrap();
    let coord = spawn_coordinator(&topology, ClusterConfig::default()).unwrap();
    let mut client = TextClient::connect(coord.addr()).unwrap();
    let oracle = oracle(backend, shards);

    let users: Vec<u32> = (0..12).collect();
    for &user in &users {
        let line = format!("REGISTER {user} {}", preference_rows(user));
        assert_eq!(client.ask(&line).unwrap(), oracle.respond_line(&line));
    }
    let mut ingested = 0usize;
    for _ in 0..4 {
        let line = ingest_line(ingested, 8);
        assert_eq!(client.ask(&line).unwrap(), oracle.respond_line(&line));
        ingested += 8;
    }
    check_barrier(&mut client, &oracle, &users, ingested, "pre-kill");

    // Partition the users the way the coordinator does, and kill the
    // owner of user 0.
    let partitioner = Partitioner::new(3);
    let victim = partitioner.owner_of(UserId::new(0));
    nodes[victim].take().unwrap().kill();

    // The victim's key range degrades; everything else keeps serving and
    // matching the oracle (which never went down).
    let (mut dark, mut lit) = (Vec::new(), Vec::new());
    for &user in &users {
        if partitioner.owner_of(UserId::new(user)) == victim {
            dark.push(user);
        } else {
            lit.push(user);
        }
    }
    assert!(!dark.is_empty() && !lit.is_empty(), "both ranges populated");
    for &user in &dark {
        assert_eq!(
            client.ask(&format!("FRONTIER {user}")).unwrap(),
            format!("ERR degraded node={victim}"),
            "user {user} should be dark"
        );
    }
    for &user in &lit {
        let q = format!("FRONTIER {user}");
        assert_eq!(client.ask(&q).unwrap(), oracle.respond_line(&q));
    }
    // QUERY unions across all nodes, so it degrades rather than lie.
    assert_eq!(
        client.ask("QUERY 0").unwrap(),
        format!("ERR degraded node={victim}")
    );
    // Replication continues into the backlog (and the oracle).
    for _ in 0..3 {
        let line = ingest_line(ingested, 8);
        let r = client.ask(&line).unwrap();
        assert!(r.starts_with("OK INGESTED 8"), "{r}");
        oracle.respond_line(&line);
        ingested += 8;
    }
    let health = client.ask("HEALTH").unwrap();
    assert!(health.contains(" live=2 "), "{health}");
    assert!(health.contains(&format!(" degraded={victim} ")), "{health}");

    // Respawn on the same address and WAL; one HEALTH round trip is the
    // rejoin barrier (reconnect, fence, replay the backlog suffix).
    nodes[victim] = Some(spawn_node_at(&addrs[victim], &spec_for(&wal_dirs[victim])).unwrap());
    let health = client.ask("HEALTH").unwrap();
    assert!(health.contains(" live=3 "), "{health}");
    assert!(health.contains(" degraded=- "), "{health}");
    check_barrier(&mut client, &oracle, &users, ingested, "post-rejoin");

    coord.kill();
    for node in nodes.into_iter().flatten() {
        node.kill();
    }
    for dir in wal_dirs {
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn subscriptions_fan_events_and_degrade_when_the_owner_dies() {
    let (mut nodes, coord, mut control) = spawn_cluster("baseline", 1, 3);
    let user = 1u32;
    let owner = Partitioner::new(3).owner_of(UserId::new(user));
    let r = control
        .ask(&format!("REGISTER {user} {}", preference_rows(user)))
        .unwrap();
    assert!(r.starts_with("OK REGISTERED 1"), "{r}");

    let mut sub_a = TextClient::connect(coord.addr()).unwrap();
    let r = sub_a.ask(&format!("SUBSCRIBE {user}")).unwrap();
    assert!(r.starts_with("OK SUBSCRIBED 1"), "{r}");
    assert_eq!(
        sub_a.ask(&format!("SUBSCRIBE {user}")).unwrap(),
        "ERR already subscribed to user 1"
    );
    // Second subscriber rides the existing node-side subscription via a
    // FRONTIER snapshot on the event connection.
    let mut sub_b = TextClient::connect(coord.addr()).unwrap();
    let r = sub_b.ask(&format!("SUBSCRIBE {user}")).unwrap();
    assert!(r.starts_with("OK SUBSCRIBED 1"), "{r}");

    // The first arrival always enters the frontier: both subscribers see
    // the delta.
    let r = control.ask("INGEST 1,2,3").unwrap();
    assert!(r.starts_with("OK INGESTED 1"), "{r}");
    let event = sub_a.recv().unwrap();
    assert!(
        event.starts_with("EVENT 1 ") && event.contains("+0"),
        "{event}"
    );
    let event = sub_b.recv().unwrap();
    assert!(
        event.starts_with("EVENT 1 ") && event.contains("+0"),
        "{event}"
    );

    assert_eq!(sub_b.ask("UNSUBSCRIBE 1").unwrap(), "OK UNSUBSCRIBED 1");
    assert_eq!(
        sub_b.ask("UNSUBSCRIBE 1").unwrap(),
        "ERR not subscribed to user 1"
    );

    // The owner dies: the remaining subscriber gets a pushed terminal
    // degraded line, and a fresh SUBSCRIBE is refused while dark.
    nodes.remove(owner).kill();
    assert_eq!(sub_a.recv().unwrap(), format!("ERR degraded node={owner}"));
    let mut sub_c = TextClient::connect(coord.addr()).unwrap();
    assert_eq!(
        sub_c.ask(&format!("SUBSCRIBE {user}")).unwrap(),
        format!("ERR degraded node={owner}")
    );

    coord.kill();
    for node in nodes {
        node.kill();
    }
}

#[test]
fn migrate_user_drains_and_backfills_through_export_register_unregister() {
    let nodes: Vec<NodeHandle> = (0..2)
        .map(|_| spawn_node(&node_spec("baseline", 2)).unwrap())
        .collect();
    let topology = Topology::new(nodes.iter().map(|h| h.addr().to_owned()).collect()).unwrap();
    let mut cluster = Cluster::connect(&topology, ClusterConfig::default()).unwrap();
    let oracle = oracle("baseline", 2);

    let user = 4u32;
    let from = cluster.owner_of(UserId::new(user));
    let to = 1 - from;
    let mut handle = |line: &str| -> String {
        match cluster.handle(line) {
            pm_coord::Routed::Line(text) => text,
            other => panic!("unexpected routing for `{line}`: {other:?}"),
        }
    };
    let register = format!("REGISTER {user} {}", preference_rows(user));
    assert_eq!(handle(&register), oracle.respond_line(&register));
    for start in (0..24).step_by(8) {
        let line = ingest_line(start, 8);
        assert_eq!(handle(&line), oracle.respond_line(&line));
    }
    let frontier = format!("FRONTIER {user}");
    let before = handle(&frontier);
    assert_eq!(before, oracle.respond_line(&frontier));

    cluster.migrate_user(UserId::new(user), from, to).unwrap();

    // The old owner no longer knows the user; the new owner's backfilled
    // frontier is exactly the oracle's.
    let mut old_owner = TextClient::connect(topology.addr(from)).unwrap();
    let r = old_owner.ask(&frontier).unwrap();
    assert!(r.starts_with("ERR "), "drained user still present: {r}");
    let mut new_owner = TextClient::connect(topology.addr(to)).unwrap();
    assert_eq!(new_owner.ask(&frontier).unwrap(), before);

    for node in nodes {
        node.kill();
    }
}
