//! Shared crate root for the runnable examples.
//!
//! The examples live in this package as separate binaries:
//!
//! * `quickstart` — build a schema, express preferences, monitor arrivals.
//! * `laptop_recommendation` — the paper's running example (Tables 1 & 2).
//! * `movie_alerts` — movie-like dataset, clustering, Baseline vs
//!   FilterThenVerify vs FilterThenVerifyApprox.
//! * `publication_alerts` — publication-like dataset with approximate
//!   common preference relations.
//! * `sliding_window_news` — sliding-window monitoring with frontier
//!   mending and Pareto-frontier buffers.
//!
//! Run any of them with `cargo run --release -p pm-examples --bin <name>`.
