//! Movie-alert scenario: simulate a Netflix/IMDB-like catalogue and user
//! population, cluster users by preference similarity, and compare the
//! Baseline, FilterThenVerify and FilterThenVerifyApprox monitors on the
//! same arrival stream — a miniature of Figures 4 and 6 of the paper.
//!
//! Run with `cargo run --release -p pm-examples --bin movie_alerts`.

use pm_cluster::ApproxConfig;
use pm_cluster::{cluster_users, ClusteringConfig, ExactMeasure};
use pm_core::{AccuracyReport, BaselineMonitor, ContinuousMonitor, FilterThenVerifyMonitor};
use pm_datagen::{Dataset, DatasetProfile};

fn main() {
    // A scaled-down movie-like dataset (see pm-datagen for the full-size
    // profile matching the paper's 12,749 movies and 1,000 users).
    let profile = DatasetProfile::movie()
        .with_users(60)
        .with_objects(800)
        .with_interactions(80);
    let dataset = Dataset::generate(&profile, 7);
    println!(
        "dataset: {} objects, {} users, {} attributes, ~{:.0} preference tuples/user",
        dataset.num_objects(),
        dataset.num_users(),
        dataset.dimensions(),
        dataset.mean_preference_size()
    );

    // Cluster users on their exact common preference relations (Sec. 5).
    let outcome = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Exact {
            measure: ExactMeasure::Jaccard,
            branch_cut: 0.55,
        },
    );
    println!(
        "clustering: {} clusters, largest has {} users",
        outcome.len(),
        outcome.largest_cluster()
    );

    // Run the three append-only monitors over the same arrivals.
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    let mut ftv = FilterThenVerifyMonitor::new(dataset.preferences.clone(), &outcome.clusters);
    let mut ftva = FilterThenVerifyMonitor::with_approx_clusters(
        dataset.preferences.clone(),
        &outcome.clusters,
        ApproxConfig::new(512, 0.5),
    );
    for object in &dataset.objects {
        baseline.process(object.clone());
        ftv.process(object.clone());
        ftva.process(object.clone());
    }

    println!("\ncomparisons per algorithm:");
    println!(
        "  Baseline               {:>12}",
        baseline.stats().comparisons
    );
    println!("  FilterThenVerify       {:>12}", ftv.stats().comparisons);
    println!("  FilterThenVerifyApprox {:>12}", ftva.stats().comparisons);

    // How much accuracy did the approximation cost?
    let report = AccuracyReport::compare(&baseline.all_frontiers(), &ftva.all_frontiers());
    println!(
        "\nFilterThenVerifyApprox accuracy: precision {:.2}%, recall {:.2}%, F {:.2}%",
        report.precision() * 100.0,
        report.recall() * 100.0,
        report.f_measure() * 100.0
    );
}
