//! Quickstart: build a tiny product table, express two users' preferences as
//! strict partial orders, and monitor which users should be notified about
//! each arriving product.
//!
//! Run with `cargo run -p pm-examples --bin quickstart`.

use pm_core::{BaselineMonitor, ContinuousMonitor};
use pm_model::{Attribute, Domain, Object, ObjectId, Schema, UserId};
use pm_porder::Preference;

fn main() {
    // 1. Describe the objects: laptops with three categorical attributes.
    let schema = Schema::from_attributes([
        Attribute::with_domain(
            "display",
            Domain::from_labels(["9.9-under", "10-12.9", "13-15.9", "16-18.9", "19-up"]),
        ),
        Attribute::with_domain(
            "brand",
            Domain::from_labels(["Apple", "Lenovo", "Samsung", "Sony", "Toshiba"]),
        ),
        Attribute::with_domain(
            "cpu",
            Domain::from_labels(["single", "dual", "triple", "quad"]),
        ),
    ]);

    // 2. Express user preferences as strict partial orders, one per attribute.
    //    `prefer(attr, better, worse)` adds a preference tuple; transitive
    //    closure is maintained automatically.
    let display = schema.attr_id("display").unwrap();
    let brand = schema.attr_id("brand").unwrap();
    let cpu = schema.attr_id("cpu").unwrap();
    let val = |attr, label: &str| schema.attribute(attr).domain.id_of(label).unwrap();

    let mut alice = Preference::new(schema.arity());
    alice
        .prefer(display, val(display, "13-15.9"), val(display, "10-12.9"))
        .prefer(display, val(display, "10-12.9"), val(display, "19-up"))
        .prefer(brand, val(brand, "Apple"), val(brand, "Lenovo"))
        .prefer(brand, val(brand, "Lenovo"), val(brand, "Toshiba"))
        .prefer(cpu, val(cpu, "dual"), val(cpu, "single"));

    let mut bob = Preference::new(schema.arity());
    bob.prefer(display, val(display, "13-15.9"), val(display, "16-18.9"))
        .prefer(brand, val(brand, "Lenovo"), val(brand, "Samsung"))
        .prefer(cpu, val(cpu, "quad"), val(cpu, "dual"))
        .prefer(cpu, val(cpu, "dual"), val(cpu, "single"));

    // 3. Create a monitor and feed it arriving products.
    let mut monitor = BaselineMonitor::new(vec![alice, bob]);
    let products = [
        ("12-inch Apple single-core", ["10-12.9", "Apple", "single"]),
        ("14-inch Apple dual-core", ["13-15.9", "Apple", "dual"]),
        ("15-inch Samsung dual-core", ["13-15.9", "Samsung", "dual"]),
        ("16.5-inch Lenovo quad-core", ["16-18.9", "Lenovo", "quad"]),
    ];
    let names = ["alice", "bob"];
    for (idx, (label, values)) in products.iter().enumerate() {
        let object = Object::from_labels(ObjectId::from(idx), &schema, values).unwrap();
        let arrival = monitor.process(object);
        let targets: Vec<&str> = arrival
            .target_users
            .iter()
            .map(|u| names[u.index()])
            .collect();
        println!("{label:28} -> notify {targets:?}");
    }

    // 4. Inspect the maintained Pareto frontiers.
    for (idx, name) in names.iter().enumerate() {
        println!(
            "{name}'s Pareto frontier: {:?}",
            monitor.frontier(UserId::from(idx))
        );
    }
    println!("work done: {}", monitor.stats());
}
