//! The paper's running example (Tables 1 and 2): an inventory of laptops,
//! two customers with partially ordered preferences, and the
//! FilterThenVerify monitor sharing computation through their common
//! preference relation (the virtual user `U` of Example 4.8).
//!
//! Run with `cargo run -p pm-examples --bin laptop_recommendation`.

use pm_core::{ContinuousMonitor, FilterThenVerifyMonitor};
use pm_model::{AttrId, Object, ObjectId, UserId, ValueId};
use pm_porder::Preference;

// Attribute encodings (see Tables 1 & 2 of the paper):
// display: 9.9-under=0, 10-12.9=1, 13-15.9=2, 16-18.9=3, 19-up=4
// brand:   Apple=0, Lenovo=1, Samsung=2, Sony=3, Toshiba=4
// cpu:     single=0, dual=1, triple=2, quad=3
fn v(i: u32) -> ValueId {
    ValueId::new(i)
}

fn a(i: u32) -> AttrId {
    AttrId::new(i)
}

fn customer_c1() -> Preference {
    let mut p = Preference::new(3);
    p.prefer(a(0), v(2), v(1))
        .prefer(a(0), v(1), v(3))
        .prefer(a(0), v(1), v(4))
        .prefer(a(0), v(1), v(0))
        .prefer(a(1), v(0), v(1))
        .prefer(a(1), v(1), v(4))
        .prefer(a(1), v(1), v(2))
        .prefer(a(1), v(0), v(3))
        .prefer(a(2), v(1), v(2))
        .prefer(a(2), v(1), v(3))
        .prefer(a(2), v(2), v(0))
        .prefer(a(2), v(3), v(0));
    p
}

fn customer_c2() -> Preference {
    let mut p = Preference::new(3);
    p.prefer(a(0), v(2), v(1))
        .prefer(a(0), v(2), v(3))
        .prefer(a(0), v(3), v(4))
        .prefer(a(0), v(4), v(0))
        .prefer(a(0), v(1), v(0))
        .prefer(a(1), v(0), v(4))
        .prefer(a(1), v(1), v(4))
        .prefer(a(1), v(4), v(3))
        .prefer(a(1), v(1), v(2))
        .prefer(a(2), v(3), v(2))
        .prefer(a(2), v(2), v(1))
        .prefer(a(2), v(1), v(0));
    p
}

fn inventory() -> Vec<Object> {
    let obj = |id: u64, vals: [u32; 3]| {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    };
    vec![
        obj(1, [1, 0, 0]),  // 12",   Apple,   single
        obj(2, [2, 0, 1]),  // 14",   Apple,   dual
        obj(3, [2, 2, 1]),  // 15",   Samsung, dual
        obj(4, [4, 4, 1]),  // 19",   Toshiba, dual
        obj(5, [0, 2, 3]),  // 9",    Samsung, quad
        obj(6, [1, 3, 0]),  // 11.5", Sony,    single
        obj(7, [0, 1, 3]),  // 9.5",  Lenovo,  quad
        obj(8, [1, 0, 1]),  // 12.5", Apple,   dual
        obj(9, [4, 3, 0]),  // 19.5", Sony,    single
        obj(10, [0, 1, 2]), // 9.5",  Lenovo,  triple
        obj(11, [0, 4, 2]), // 9",    Toshiba, triple
        obj(12, [0, 2, 2]), // 8.5",  Samsung, triple
        obj(13, [2, 3, 1]), // 14.5", Sony,    dual
        obj(14, [3, 3, 0]), // 17",   Sony,    single
        obj(15, [3, 1, 3]), // 16.5", Lenovo,  quad   (Example 1.1's new arrival)
        obj(16, [3, 4, 0]), // 16",   Toshiba, single (filtered for everyone)
    ]
}

fn main() {
    let users = vec![customer_c1(), customer_c2()];
    // One cluster containing both customers; its virtual user carries their
    // common preference relation (Def. 4.1).
    let clusters = vec![(
        vec![UserId::new(0), UserId::new(1)],
        Preference::common_of(users.iter()),
    )];
    let mut monitor = FilterThenVerifyMonitor::with_virtual_preferences(users, clusters);

    for object in inventory() {
        let arrival = monitor.process(object);
        let names: Vec<String> = arrival
            .target_users
            .iter()
            .map(|u| format!("c{}", u.raw() + 1))
            .collect();
        println!(
            "o{:<2} is Pareto-optimal for {:?}",
            arrival.object.raw(),
            names
        );
    }

    println!();
    println!("cluster frontier P_U  = {:?}", monitor.cluster_frontier(0));
    println!(
        "c1 frontier P_c1      = {:?}",
        monitor.frontier(UserId::new(0))
    );
    println!(
        "c2 frontier P_c2      = {:?}",
        monitor.frontier(UserId::new(1))
    );
    println!("comparisons performed = {}", monitor.stats().comparisons);
}
