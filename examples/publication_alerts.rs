//! Publication-alert scenario: notify authors about newly published papers
//! matching their preferences on affiliations, authors, venues and keywords
//! (the paper's second motivating application, simulated with the
//! ACM-DL-like profile).
//!
//! Run with `cargo run --release -p pm-examples --bin publication_alerts`.

use pm_bench::setup::{build_approx_monitor, default_approx_config, generate_dataset};
use pm_bench::Scale;
use pm_core::ContinuousMonitor;
use pm_datagen::DatasetProfile;
use pm_model::UserId;

fn main() {
    let mut scale = Scale::smoke();
    scale.users = 40;
    scale.objects = 600;
    let dataset = generate_dataset(&DatasetProfile::publication(), &scale);
    println!(
        "publication dataset: {} papers, {} authors",
        dataset.num_objects(),
        dataset.num_users()
    );

    // FilterThenVerifyApprox: approximate clustering plus approximate common
    // preference relations (the configuration the paper recommends).
    let (mut monitor, summary) = build_approx_monitor(&dataset, 0.55, default_approx_config());
    println!(
        "clustered {} authors into {} clusters (largest {})",
        summary.users, summary.clusters, summary.largest
    );

    // Deliver the stream of new papers; count alerts per author.
    let mut alerts = vec![0usize; dataset.num_users()];
    for paper in &dataset.objects {
        let arrival = monitor.process(paper.clone());
        for user in &arrival.target_users {
            alerts[user.index()] += 1;
        }
    }

    let total: usize = alerts.iter().sum();
    let busiest = alerts
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .map(|(u, n)| (UserId::from(u), *n))
        .unwrap();
    println!(
        "delivered {} alerts in total ({:.1} per paper on average)",
        total,
        total as f64 / dataset.num_objects() as f64
    );
    println!(
        "most-alerted author: {} with {} alerts; final frontier size {}",
        busiest.0,
        busiest.1,
        monitor.frontier(busiest.0).len()
    );
    println!("work done: {}", monitor.stats());
}
