//! Sliding-window news delivery: only the W most recent stories are alive,
//! so frontiers must be mended when stories expire (Section 7 of the
//! paper). Compares BaselineSW with FilterThenVerifySW and
//! FilterThenVerifyApproxSW on the same stream.
//!
//! Run with `cargo run --release -p pm-examples --bin sliding_window_news`.

use pm_bench::setup::{
    build_approx_sw_monitor, build_exact_sw_monitor, default_approx_config, generate_dataset,
};
use pm_bench::Scale;
use pm_core::{AccuracyReport, BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;

fn main() {
    let mut scale = Scale::smoke();
    scale.users = 30;
    scale.objects = 300;
    let window = 150;
    let stream_len = 1_200;

    // Reuse the movie-like generator as a stand-in for a news stream:
    // 4 categorical attributes (think source, topic, region, format).
    let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
    let stream = dataset.stream(stream_len);
    println!(
        "news stream: {} arrivals cycling {} stories, window W = {window}, {} readers",
        stream.len(),
        dataset.num_objects(),
        dataset.num_users()
    );

    let mut baseline = BaselineSwMonitor::new(dataset.preferences.clone(), window);
    let (mut ftv, _) = build_exact_sw_monitor(&dataset, 0.55, window);
    let (mut ftva, summary) =
        build_approx_sw_monitor(&dataset, 0.55, default_approx_config(), window);
    println!(
        "clusters: {} (largest {})",
        summary.clusters, summary.largest
    );

    let mut notified = [0u64; 3];
    for story in stream.iter() {
        notified[0] += baseline.process(story.clone()).target_users.len() as u64;
        notified[1] += ftv.process(story.clone()).target_users.len() as u64;
        notified[2] += ftva.process(story).target_users.len() as u64;
    }

    println!(
        "\n{:<26} {:>14} {:>14} {:>12}",
        "algorithm", "comparisons", "expirations", "alerts"
    );
    for (name, stats, alerts) in [
        ("BaselineSW", baseline.stats(), notified[0]),
        ("FilterThenVerifySW", ftv.stats(), notified[1]),
        ("FilterThenVerifyApproxSW", ftva.stats(), notified[2]),
    ] {
        println!(
            "{:<26} {:>14} {:>14} {:>12}",
            name, stats.comparisons, stats.expirations, alerts
        );
    }

    let report = AccuracyReport::compare(&baseline.all_frontiers(), &ftva.all_frontiers());
    println!(
        "\nFilterThenVerifyApproxSW accuracy vs BaselineSW (final windows): \
         precision {:.2}%, recall {:.2}%",
        report.precision() * 100.0,
        report.recall() * 100.0
    );
}
