//! Attribute schemas and interned categorical value domains.
//!
//! Each attribute `d ∈ D` owns a [`Domain`]: a bidirectional mapping between
//! human-readable value labels and dense [`ValueId`]s. Interning keeps the
//! hot dominance-checking path free of string comparisons.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{AttrId, ValueId};

/// An interned categorical value domain (`dom(d)` in the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Domain {
    labels: Vec<String>,
    by_label: HashMap<String, ValueId>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a domain pre-populated with the given labels.
    ///
    /// Duplicate labels are interned once.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut domain = Self::new();
        for label in labels {
            domain.intern(label.as_ref());
        }
        domain
    }

    /// Creates an anonymous domain of `size` values labelled `"0"`, `"1"`, …
    ///
    /// Useful for simulations where value identity is all that matters.
    pub fn anonymous(size: usize) -> Self {
        Self::from_labels((0..size).map(|i| i.to_string()))
    }

    /// Interns `label`, returning its [`ValueId`] (existing or fresh).
    pub fn intern(&mut self, label: &str) -> ValueId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = ValueId::from(self.labels.len());
        self.labels.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn id_of(&self, label: &str) -> Option<ValueId> {
        self.by_label.get(label).copied()
    }

    /// Returns the label of an interned value, if the id is in range.
    pub fn label_of(&self, id: ValueId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of interned values (`|dom(d)|`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the domain has no values.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over all value ids in the domain.
    pub fn values(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.labels.len()).map(ValueId::from)
    }

    /// Iterates over `(ValueId, label)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (ValueId, &str)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (ValueId::from(i), l.as_str()))
    }
}

/// One attribute of the object table: a name plus its value domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable attribute name (e.g. `"brand"`).
    pub name: String,
    /// The attribute's categorical value domain.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute with an empty domain.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            domain: Domain::new(),
        }
    }

    /// Creates an attribute with a pre-populated domain.
    pub fn with_domain(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
        }
    }
}

/// The set of attributes `D` describing objects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from a list of attributes.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn from_attributes<I>(attrs: I) -> Self
    where
        I: IntoIterator<Item = Attribute>,
    {
        let mut schema = Self::new();
        for attr in attrs {
            schema.add_attribute(attr);
        }
        schema
    }

    /// Adds an attribute, returning its [`AttrId`].
    ///
    /// # Panics
    /// Panics if an attribute with the same name already exists.
    pub fn add_attribute(&mut self, attr: Attribute) -> AttrId {
        assert!(
            !self.by_name.contains_key(&attr.name),
            "duplicate attribute name: {}",
            attr.name
        );
        let id = AttrId::from(self.attributes.len());
        self.by_name.insert(attr.name.clone(), id);
        self.attributes.push(attr);
        id
    }

    /// Number of attributes (`|D|`, i.e. the dimensionality `d`).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Returns the attribute for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// Mutable access to an attribute (e.g. for interning new values).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn attribute_mut(&mut self, id: AttrId) -> &mut Attribute {
        &mut self.attributes[id.index()]
    }

    /// Iterates over `(AttrId, &Attribute)` pairs.
    pub fn attributes(&self) -> impl Iterator<Item = (AttrId, &Attribute)> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId::from(i), a))
    }

    /// Iterates over all attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(AttrId::from)
    }

    /// Returns a copy of this schema restricted to its first `k` attributes.
    ///
    /// Used by the dimensionality-sweep experiments (Fig. 6/7/10/11 of the
    /// paper) which vary `d` over a fixed dataset.
    pub fn project(&self, k: usize) -> Schema {
        Schema::from_attributes(self.attributes.iter().take(k).cloned())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.attributes.iter().map(|a| a.name.as_str()).collect();
        write!(f, "Schema({})", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_interning_is_idempotent() {
        let mut d = Domain::new();
        let a = d.intern("Apple");
        let b = d.intern("Lenovo");
        let a2 = d.intern("Apple");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label_of(a), Some("Apple"));
        assert_eq!(d.id_of("Lenovo"), Some(b));
        assert_eq!(d.id_of("Sony"), None);
    }

    #[test]
    fn anonymous_domain_has_requested_size() {
        let d = Domain::anonymous(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.id_of("3"), Some(ValueId::new(3)));
        assert_eq!(d.values().count(), 5);
    }

    #[test]
    fn from_labels_dedups() {
        let d = Domain::from_labels(["x", "y", "x"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn schema_lookup_by_name_and_id() {
        let mut schema = Schema::new();
        let brand = schema.add_attribute(Attribute::with_domain(
            "brand",
            Domain::from_labels(["Apple", "Lenovo"]),
        ));
        let cpu = schema.add_attribute(Attribute::new("cpu"));
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.attr_id("brand"), Some(brand));
        assert_eq!(schema.attr_id("cpu"), Some(cpu));
        assert_eq!(schema.attr_id("display"), None);
        assert_eq!(schema.attribute(brand).name, "brand");
        assert_eq!(schema.attribute(brand).domain.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn schema_rejects_duplicate_names() {
        let mut schema = Schema::new();
        schema.add_attribute(Attribute::new("brand"));
        schema.add_attribute(Attribute::new("brand"));
    }

    #[test]
    fn projection_keeps_prefix() {
        let schema = Schema::from_attributes([
            Attribute::new("a"),
            Attribute::new("b"),
            Attribute::new("c"),
        ]);
        let p = schema.project(2);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attribute(AttrId::new(0)).name, "a");
        assert_eq!(p.attribute(AttrId::new(1)).name, "b");
        assert!(p.attr_id("c").is_none());
    }

    #[test]
    fn display_lists_attribute_names() {
        let schema = Schema::from_attributes([Attribute::new("brand"), Attribute::new("cpu")]);
        assert_eq!(schema.to_string(), "Schema(brand, cpu)");
    }

    #[test]
    fn attribute_mut_allows_interning() {
        let mut schema = Schema::from_attributes([Attribute::new("brand")]);
        let id = schema.attr_id("brand").unwrap();
        let v = schema.attribute_mut(id).domain.intern("Toshiba");
        assert_eq!(schema.attribute(id).domain.label_of(v), Some("Toshiba"));
    }
}
