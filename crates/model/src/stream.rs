//! Object streams and sliding-window bookkeeping.
//!
//! Section 7 of the paper extends the append-only model to a sliding window
//! of the `W` most recent objects: when object `o_in` arrives, object
//! `o_out` with `in - out = W` expires. [`SlidingWindow`] performs exactly
//! that bookkeeping; [`ObjectStream`] turns a finite dataset into an
//! (optionally repeated) arrival sequence, as the paper does to build its
//! 1M-object streams from the movie and publication datasets.

use std::collections::VecDeque;

use crate::ids::ObjectId;
use crate::object::Object;

/// The effect of appending one object to a [`SlidingWindow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEvent {
    /// The newly arrived object.
    pub arrived: Object,
    /// The object that fell out of the window, if the window was full.
    pub expired: Option<Object>,
}

/// A sliding window over a stream of objects.
///
/// The window holds at most `capacity` objects; appending an object when the
/// window is full evicts the oldest one.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    buffer: VecDeque<Object>,
}

impl SlidingWindow {
    /// Creates a window of the given capacity (`W`).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            buffer: VecDeque::with_capacity(capacity),
        }
    }

    /// The window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently alive objects.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the window currently holds no objects.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Appends `object`, returning the expired object if the window was full.
    pub fn push(&mut self, object: Object) -> StreamEvent {
        let expired = if self.buffer.len() == self.capacity {
            self.buffer.pop_front()
        } else {
            None
        };
        self.buffer.push_back(object.clone());
        StreamEvent {
            arrived: object,
            expired,
        }
    }

    /// Whether the object with the given id is currently alive.
    pub fn is_alive(&self, id: ObjectId) -> bool {
        self.buffer
            .front()
            .map(|front| id >= front.id())
            .unwrap_or(false)
            && self
                .buffer
                .back()
                .map(|back| id <= back.id())
                .unwrap_or(false)
    }

    /// Iterates over the alive objects from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Object> + '_ {
        self.buffer.iter()
    }

    /// The oldest alive object, if any.
    pub fn oldest(&self) -> Option<&Object> {
        self.buffer.front()
    }

    /// The newest alive object, if any.
    pub fn newest(&self) -> Option<&Object> {
        self.buffer.back()
    }
}

/// A finite dataset replayed as an arrival sequence.
///
/// `repeat` controls how many times the base dataset is cycled; object ids
/// are re-assigned sequentially so that ids keep doubling as timestamps.
#[derive(Debug, Clone)]
pub struct ObjectStream {
    base: Vec<Object>,
    repeat: usize,
}

impl ObjectStream {
    /// Creates a stream that plays the dataset exactly once.
    pub fn once(base: Vec<Object>) -> Self {
        Self { base, repeat: 1 }
    }

    /// Creates a stream that cycles the dataset `repeat` times.
    pub fn repeated(base: Vec<Object>, repeat: usize) -> Self {
        Self { base, repeat }
    }

    /// Creates a stream that cycles the dataset until at least `target_len`
    /// objects have been produced (the paper repeats its datasets to reach
    /// |O| = 1M).
    pub fn with_target_len(base: Vec<Object>, target_len: usize) -> Self {
        let repeat = if base.is_empty() {
            0
        } else {
            target_len.div_ceil(base.len())
        };
        Self { base, repeat }
    }

    /// Total number of arrivals this stream will produce.
    pub fn len(&self) -> usize {
        self.base.len() * self.repeat
    }

    /// Whether the stream produces no arrivals.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct base objects.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Iterates over the arrivals with sequentially re-assigned ids.
    pub fn iter(&self) -> impl Iterator<Item = Object> + '_ {
        (0..self.len()).map(move |i| self.base[i % self.base.len()].with_id(ObjectId::from(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ValueId;

    fn obj(id: u64) -> Object {
        Object::new(ObjectId::new(id), vec![ValueId::new(id as u32 % 7)])
    }

    #[test]
    fn window_evicts_oldest_when_full() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(obj(0)).expired.is_none());
        assert!(w.push(obj(1)).expired.is_none());
        assert!(w.push(obj(2)).expired.is_none());
        let ev = w.push(obj(3));
        assert_eq!(ev.expired.unwrap().id(), ObjectId::new(0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.oldest().unwrap().id(), ObjectId::new(1));
        assert_eq!(w.newest().unwrap().id(), ObjectId::new(3));
    }

    #[test]
    fn window_alive_range() {
        let mut w = SlidingWindow::new(2);
        w.push(obj(10));
        w.push(obj(11));
        w.push(obj(12));
        assert!(!w.is_alive(ObjectId::new(10)));
        assert!(w.is_alive(ObjectId::new(11)));
        assert!(w.is_alive(ObjectId::new(12)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn empty_window_reports_empty() {
        let w = SlidingWindow::new(4);
        assert!(w.is_empty());
        assert!(w.oldest().is_none());
        assert!(!w.is_alive(ObjectId::new(0)));
    }

    #[test]
    fn stream_once_preserves_order_and_reassigns_ids() {
        let base = vec![obj(100), obj(200), obj(300)];
        let s = ObjectStream::once(base);
        let ids: Vec<u64> = s.iter().map(|o| o.id().raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn repeated_stream_cycles_values() {
        let base = vec![obj(0), obj(1)];
        let s = ObjectStream::repeated(base.clone(), 3);
        assert_eq!(s.len(), 6);
        let arrivals: Vec<Object> = s.iter().collect();
        assert_eq!(arrivals[0].values(), base[0].values());
        assert_eq!(arrivals[2].values(), base[0].values());
        assert_eq!(arrivals[5].values(), base[1].values());
        assert_eq!(arrivals[5].id(), ObjectId::new(5));
    }

    #[test]
    fn with_target_len_rounds_up() {
        let base = vec![obj(0), obj(1), obj(2)];
        let s = ObjectStream::with_target_len(base, 7);
        assert_eq!(s.len(), 9);
        let empty = ObjectStream::with_target_len(vec![], 7);
        assert!(empty.is_empty());
    }
}
