//! Strongly typed identifiers.
//!
//! All identifiers are thin wrappers around small integers so that they can
//! be used as indices into dense vectors, yet cannot be confused with one
//! another at compile time.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, suitable for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a user (`c ∈ C` in the paper).
    UserId,
    "c"
);

define_id!(
    /// Identifier of an attribute (`d ∈ D` in the paper).
    AttrId,
    "d"
);

define_id!(
    /// Identifier of an interned categorical attribute value.
    ///
    /// Value identifiers are scoped to the attribute's [`crate::Domain`]:
    /// `ValueId(3)` of attribute *brand* and `ValueId(3)` of attribute *CPU*
    /// denote different values.
    ValueId,
    "v"
);

/// Identifier of an object (`o ∈ O` in the paper).
///
/// Object identifiers double as arrival timestamps: the object with id `i`
/// is the `i`-th object appended to the stream, matching the subscript
/// convention of Section 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Creates an identifier from a raw sequence number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw sequence number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize`, suitable for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for ObjectId {
    #[inline]
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<usize> for ObjectId {
    #[inline]
    fn from(raw: usize) -> Self {
        Self(raw as u64)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_roundtrip() {
        let id = UserId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(UserId::from(7u32), id);
        assert_eq!(UserId::from(7usize), id);
        assert_eq!(id.to_string(), "c7");
    }

    #[test]
    fn attr_and_value_ids_are_distinct_types() {
        let a = AttrId::new(1);
        let v = ValueId::new(1);
        assert_eq!(a.raw(), v.raw());
        assert_eq!(a.to_string(), "d1");
        assert_eq!(v.to_string(), "v1");
    }

    #[test]
    fn object_id_orders_by_arrival() {
        let early = ObjectId::new(3);
        let late = ObjectId::new(10);
        assert!(early < late);
        assert_eq!(late.to_string(), "o10");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(UserId::new(1), "a");
        m.insert(UserId::new(2), "b");
        assert_eq!(m[&UserId::new(2)], "b");
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(UserId::default().raw(), 0);
        assert_eq!(ObjectId::default().raw(), 0);
    }
}
