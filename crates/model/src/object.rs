//! Objects: one categorical value per schema attribute.

use std::fmt;

use crate::ids::{AttrId, ObjectId, ValueId};
use crate::schema::Schema;

/// An object `o ∈ O`: an identifier (doubling as arrival timestamp) plus one
/// interned value per attribute of the schema, in attribute order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Object {
    id: ObjectId,
    values: Vec<ValueId>,
}

impl Object {
    /// Creates an object from its id and per-attribute values.
    pub fn new(id: ObjectId, values: Vec<ValueId>) -> Self {
        Self { id, values }
    }

    /// Builds an object by resolving value labels against a schema.
    ///
    /// Returns `None` if the number of labels does not match the schema arity
    /// or if any label is not interned in the corresponding domain.
    pub fn from_labels(id: ObjectId, schema: &Schema, labels: &[&str]) -> Option<Self> {
        if labels.len() != schema.arity() {
            return None;
        }
        let mut values = Vec::with_capacity(labels.len());
        for (attr_id, label) in schema.attr_ids().zip(labels) {
            values.push(schema.attribute(attr_id).domain.id_of(label)?);
        }
        Some(Self { id, values })
    }

    /// The object identifier / arrival timestamp.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The value of attribute `attr` (`o.d` in the paper).
    ///
    /// # Panics
    /// Panics if `attr` is out of range for this object.
    #[inline]
    pub fn value(&self, attr: AttrId) -> ValueId {
        self.values[attr.index()]
    }

    /// All values in attribute order.
    #[inline]
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Number of attributes this object carries.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether two objects are identical on every attribute (`o = o'` in
    /// Def. 3.2), considering only the first `arity` attributes.
    #[inline]
    pub fn identical_on(&self, other: &Object, arity: usize) -> bool {
        self.values[..arity] == other.values[..arity]
    }

    /// Whether two objects are identical on every attribute.
    #[inline]
    pub fn identical(&self, other: &Object) -> bool {
        self.values == other.values
    }

    /// Returns a copy of this object restricted to its first `k` attributes.
    pub fn project(&self, k: usize) -> Object {
        Object::new(self.id, self.values[..k.min(self.values.len())].to_vec())
    }

    /// Returns a copy of this object with a different identifier.
    ///
    /// Used when replaying a dataset as a stream (the paper repeats the
    /// object sequence to form its 1M-object streams).
    pub fn with_id(&self, id: ObjectId) -> Object {
        Object::new(id, self.values.clone())
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "{}⟨{}⟩", self.id, vals.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain};

    fn laptop_schema() -> Schema {
        Schema::from_attributes([
            Attribute::with_domain(
                "display",
                Domain::from_labels(["9.9-under", "10-12.9", "13-15.9", "16-18.9", "19-up"]),
            ),
            Attribute::with_domain(
                "brand",
                Domain::from_labels(["Apple", "Lenovo", "Samsung", "Sony", "Toshiba"]),
            ),
            Attribute::with_domain(
                "cpu",
                Domain::from_labels(["single", "dual", "triple", "quad"]),
            ),
        ])
    }

    #[test]
    fn from_labels_resolves_values() {
        let schema = laptop_schema();
        let o = Object::from_labels(ObjectId::new(2), &schema, &["13-15.9", "Apple", "dual"])
            .expect("valid labels");
        assert_eq!(o.id(), ObjectId::new(2));
        assert_eq!(o.arity(), 3);
        let brand = schema.attr_id("brand").unwrap();
        assert_eq!(
            schema.attribute(brand).domain.label_of(o.value(brand)),
            Some("Apple")
        );
    }

    #[test]
    fn from_labels_rejects_unknown_label() {
        let schema = laptop_schema();
        assert!(
            Object::from_labels(ObjectId::new(0), &schema, &["13-15.9", "Dell", "dual"]).is_none()
        );
    }

    #[test]
    fn from_labels_rejects_wrong_arity() {
        let schema = laptop_schema();
        assert!(Object::from_labels(ObjectId::new(0), &schema, &["13-15.9", "Apple"]).is_none());
    }

    #[test]
    fn identical_compares_all_values() {
        let a = Object::new(ObjectId::new(1), vec![ValueId::new(0), ValueId::new(1)]);
        let b = Object::new(ObjectId::new(2), vec![ValueId::new(0), ValueId::new(1)]);
        let c = Object::new(ObjectId::new(3), vec![ValueId::new(0), ValueId::new(2)]);
        assert!(a.identical(&b));
        assert!(!a.identical(&c));
        assert!(a.identical_on(&c, 1));
    }

    #[test]
    fn projection_truncates_values() {
        let o = Object::new(
            ObjectId::new(5),
            vec![ValueId::new(3), ValueId::new(1), ValueId::new(2)],
        );
        let p = o.project(2);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.id(), ObjectId::new(5));
        assert_eq!(p.values(), &[ValueId::new(3), ValueId::new(1)]);
    }

    #[test]
    fn with_id_reuses_values() {
        let o = Object::new(ObjectId::new(5), vec![ValueId::new(3)]);
        let o2 = o.with_id(ObjectId::new(9));
        assert_eq!(o2.id(), ObjectId::new(9));
        assert_eq!(o2.values(), o.values());
    }

    #[test]
    fn display_shows_id_and_values() {
        let o = Object::new(ObjectId::new(1), vec![ValueId::new(0), ValueId::new(2)]);
        assert_eq!(o.to_string(), "o1⟨v0, v2⟩");
    }
}
