//! Hash partitioning of the user population.
//!
//! Both levels of the serving hierarchy split users the same way: a
//! sharded engine assigns each user to one of its shard workers, and a
//! cluster coordinator assigns each user to one of its nodes. The mapping
//! used to live inside the engine crate; it is
//! extracted here so shard-level and node-level ownership share one
//! implementation and cannot drift — a user's owner is a pure function of
//! `(user, bucket count)` at every level.

use crate::UserId;

/// A deterministic user → bucket assignment over a fixed bucket count.
///
/// A multiplicative (Fibonacci) hash spreads structured id spaces — e.g.
/// tenants allocated in contiguous ranges — evenly across buckets while
/// staying fully deterministic: the same user lands on the same bucket for
/// every partitioner with the same bucket count, across processes and
/// restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    buckets: usize,
}

impl Partitioner {
    /// A partitioner over `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "a partitioner needs at least one bucket");
        Self { buckets }
    }

    /// The number of buckets users are split across.
    #[inline]
    pub fn buckets(self) -> usize {
        self.buckets
    }

    /// The bucket that owns `user`.
    #[inline]
    pub fn owner_of(self, user: UserId) -> usize {
        (u64::from(user.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_deterministic_and_total() {
        for buckets in 1..=9 {
            let p = Partitioner::new(buckets);
            assert_eq!(p.buckets(), buckets);
            for user in 0..5000u32 {
                let owner = p.owner_of(UserId::new(user));
                assert!(owner < buckets);
                assert_eq!(owner, p.owner_of(UserId::new(user)), "must be stable");
            }
        }
    }

    #[test]
    fn sequential_users_spread_across_buckets() {
        let buckets = 8;
        let p = Partitioner::new(buckets);
        let mut counts = vec![0usize; buckets];
        for user in 0..10_000u32 {
            counts[p.owner_of(UserId::new(user))] += 1;
        }
        let expected = 10_000 / buckets;
        for (bucket, &count) in counts.iter().enumerate() {
            assert!(
                count > expected / 2 && count < expected * 2,
                "bucket {bucket} got {count} of 10000 (expected ~{expected})"
            );
        }
    }

    #[test]
    fn copies_agree_across_instances() {
        // Two independently constructed partitioners (think: a shard map in
        // one process and a node map in another) must agree exactly.
        let a = Partitioner::new(5);
        let b = Partitioner::new(5);
        for user in (0..100_000u32).step_by(977) {
            assert_eq!(a.owner_of(UserId::new(user)), b.owner_of(UserId::new(user)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        Partitioner::new(0);
    }
}
