//! # pm-model
//!
//! Data model shared by every crate in the pareto-monitor workspace:
//! strongly typed identifiers, attribute schemas with interned categorical
//! value domains, objects described by one value per attribute, object
//! catalogs, and append-only / sliding-window object streams.
//!
//! The model follows Section 3 of Sultana & Li, *Continuous Monitoring of
//! Pareto Frontiers on Partially Ordered Attributes for Many Users*
//! (EDBT 2018): a table of objects `O` over a set of categorical attributes
//! `D`, consumed by a set of users `C`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod ids;
pub mod object;
pub mod partition;
pub mod schema;
pub mod stream;

pub use catalog::ObjectCatalog;
pub use ids::{AttrId, ObjectId, UserId, ValueId};
pub use object::Object;
pub use partition::Partitioner;
pub use schema::{Attribute, Domain, Schema};
pub use stream::{ObjectStream, SlidingWindow, StreamEvent};
