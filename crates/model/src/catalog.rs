//! Object catalogs: append-only storage of the objects seen so far.

use std::collections::HashMap;

use crate::ids::ObjectId;
use crate::object::Object;

/// An append-only store of objects keyed by [`ObjectId`].
///
/// Monitors keep frontiers as sets of object ids; the catalog resolves ids
/// back to full objects when a pairwise dominance test is required.
#[derive(Debug, Clone, Default)]
pub struct ObjectCatalog {
    objects: HashMap<ObjectId, Object>,
}

impl ObjectCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an object. Returns the previous object with the same id, if any.
    pub fn insert(&mut self, object: Object) -> Option<Object> {
        self.objects.insert(object.id(), object)
    }

    /// Looks up an object by id.
    pub fn get(&self, id: ObjectId) -> Option<&Object> {
        self.objects.get(&id)
    }

    /// Removes an object (e.g. once it has expired from every window).
    pub fn remove(&mut self, id: ObjectId) -> Option<Object> {
        self.objects.remove(&id)
    }

    /// Whether the catalog contains `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over all stored objects in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Object> + '_ {
        self.objects.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ValueId;

    fn obj(id: u64) -> Object {
        Object::new(ObjectId::new(id), vec![ValueId::new(id as u32)])
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut cat = ObjectCatalog::new();
        assert!(cat.is_empty());
        assert!(cat.insert(obj(1)).is_none());
        assert!(cat.insert(obj(2)).is_none());
        assert_eq!(cat.len(), 2);
        assert!(cat.contains(ObjectId::new(1)));
        assert_eq!(cat.get(ObjectId::new(2)).unwrap().id(), ObjectId::new(2));
        assert_eq!(cat.remove(ObjectId::new(1)).unwrap().id(), ObjectId::new(1));
        assert!(!cat.contains(ObjectId::new(1)));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn reinsert_replaces_previous() {
        let mut cat = ObjectCatalog::new();
        cat.insert(obj(1));
        let replaced = cat.insert(Object::new(ObjectId::new(1), vec![ValueId::new(9)]));
        assert!(replaced.is_some());
        assert_eq!(
            cat.get(ObjectId::new(1)).unwrap().values(),
            &[ValueId::new(9)]
        );
    }

    #[test]
    fn iter_visits_all_objects() {
        let mut cat = ObjectCatalog::new();
        for i in 0..5 {
            cat.insert(obj(i));
        }
        let mut ids: Vec<u64> = cat.iter().map(|o| o.id().raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
