//! Criterion bench for Figures 10 and 11: sliding-window cost as the number
//! of attributes d varies, at a fixed window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::{build_exact_sw_monitor, generate_dataset};
use pm_bench::Scale;
use pm_core::{BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;

fn bench_sw_dimensions(c: &mut Criterion) {
    let mut scale = Scale::smoke();
    scale.stream_len = 600;
    let window = 200;
    let full = generate_dataset(&DatasetProfile::publication(), &scale);
    let mut group = c.benchmark_group("fig10_11_sw_dimensions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [2usize, 3, 4] {
        let dataset = full.project(d);
        let stream = dataset.stream(scale.stream_len);
        group.bench_with_input(BenchmarkId::new("BaselineSW", d), &dataset, |b, dataset| {
            b.iter(|| {
                let mut monitor = BaselineSwMonitor::new(dataset.preferences.clone(), window);
                for o in stream.iter() {
                    monitor.process(o);
                }
                monitor.stats().comparisons
            })
        });
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerifySW", d),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let (mut monitor, _) = build_exact_sw_monitor(dataset, 0.55, window);
                    for o in stream.iter() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sw_dimensions);
criterion_main!(benches);
