//! Criterion bench for Figures 6 and 7: append-only cost as the number of
//! attributes d varies (2, 3, 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::{build_exact_monitor, generate_dataset};
use pm_bench::Scale;
use pm_core::{BaselineMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;

fn bench_dimensions(c: &mut Criterion) {
    let scale = Scale::smoke();
    let full = generate_dataset(&DatasetProfile::movie(), &scale);
    let mut group = c.benchmark_group("fig6_7_dimensions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [2usize, 3, 4] {
        let dataset = full.project(d);
        group.bench_with_input(BenchmarkId::new("Baseline", d), &dataset, |b, dataset| {
            b.iter(|| {
                let mut monitor = BaselineMonitor::new(dataset.preferences.clone());
                for o in dataset.objects.iter().cloned() {
                    monitor.process(o);
                }
                monitor.stats().comparisons
            })
        });
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerify", d),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let (mut monitor, _) = build_exact_monitor(dataset, 0.55);
                    for o in dataset.objects.iter().cloned() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dimensions);
criterion_main!(benches);
