//! Dominance hot-path microbenchmark: the hash-map [`pm_porder::Relation`]
//! form vs the bitset-compiled [`pm_porder::CompiledPreference`] form, on
//! the movie-profile workload. This is the comparison the `perf-smoke` CI
//! gate locks in (see `src/bin/perf_smoke.rs` and `bench-baseline.json`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use pm_bench::setup::generate_dataset;
use pm_bench::workload::{object_pair_indices, value_pair, WORKLOAD_PREFS};
use pm_bench::Scale;
use pm_datagen::DatasetProfile;
use pm_model::{AttrId, Object, ValueId};
use pm_porder::{CompiledPreference, Preference};

/// How many comparisons one timed iteration performs.
const BATCH: usize = 8_192;

/// Object pairs cycled by the compare benchmarks.
fn object_pairs(objects: &[Object]) -> Vec<(usize, usize)> {
    (0..BATCH)
        .map(|i| object_pair_indices(i, objects.len()))
        .collect()
}

/// Value pairs (drawn from the first attribute's domain) for raw `prefers`.
fn value_pairs(objects: &[Object]) -> Vec<(ValueId, ValueId)> {
    (0..BATCH).map(|i| value_pair(objects, i)).collect()
}

fn bench_dominance(c: &mut Criterion) {
    let dataset = generate_dataset(&DatasetProfile::movie(), &Scale::smoke());
    let hash: Vec<&Preference> = dataset.preferences.iter().take(WORKLOAD_PREFS).collect();
    let compiled: Vec<CompiledPreference> = hash.iter().map(|p| p.compile()).collect();
    let pairs = object_pairs(&dataset.objects);
    let values = value_pairs(&dataset.objects);

    let mut group = c.benchmark_group("dominance");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("prefers/hash", |b| {
        let rel = hash[0].relation(AttrId::new(0));
        b.iter(|| values.iter().filter(|&&(x, y)| rel.prefers(x, y)).count())
    });
    group.bench_function("prefers/compiled", |b| {
        let rel = compiled[0].relation(AttrId::new(0));
        b.iter(|| values.iter().filter(|&&(x, y)| rel.prefers(x, y)).count())
    });

    group.bench_function("compare/hash", |b| {
        b.iter(|| {
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    hash[i % hash.len()].compare(&dataset.objects[x], &dataset.objects[y]) as usize
                })
                .sum::<usize>()
        })
    });
    group.bench_function("compare/compiled", |b| {
        b.iter(|| {
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    compiled[i % compiled.len()].compare(&dataset.objects[x], &dataset.objects[y])
                        as usize
                })
                .sum::<usize>()
        })
    });

    group.bench_function("dominates_batch/compiled", |b| {
        let candidate = &dataset.objects[0];
        let others: Vec<&Object> = dataset.objects.iter().cycle().take(BATCH).collect();
        b.iter(|| {
            compiled[0]
                .dominates_batch(candidate, others.iter().copied())
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
