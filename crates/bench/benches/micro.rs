//! Component microbenchmarks (not in the paper): transitive-closure
//! insertion, Hasse-diagram construction, similarity measures, dominance
//! checks and approximate-relation construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::generate_dataset;
use pm_bench::Scale;
use pm_cluster::{approx_common_relation, ApproxConfig, ExactMeasure, SimilarityMeasure};
use pm_datagen::DatasetProfile;
use pm_model::{AttrId, ValueId};
use pm_porder::{HasseDiagram, Relation};

fn chain_relation(n: u32) -> Relation {
    Relation::from_pairs((0..n - 1).map(|i| (ValueId::new(i), ValueId::new(i + 1)))).unwrap()
}

fn bench_relation_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_relation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [16u32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("closure_chain_insert", n), &n, |b, &n| {
            b.iter(|| chain_relation(n).len())
        });
        let rel = chain_relation(n);
        group.bench_with_input(BenchmarkId::new("hasse_reduction", n), &rel, |b, rel| {
            b.iter(|| HasseDiagram::of(rel).edge_count())
        });
    }
    group.finish();
}

fn bench_similarity_and_dominance(c: &mut Criterion) {
    let scale = Scale::smoke();
    let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
    let a = &dataset.preferences[0];
    let b2 = &dataset.preferences[1];
    let mut group = c.benchmark_group("micro_similarity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for measure in ExactMeasure::ALL {
        group.bench_function(measure.name(), |bench| {
            bench.iter(|| measure.similarity(a, b2))
        });
    }
    group.bench_function("dominance_compare", |bench| {
        let x = &dataset.objects[0];
        let y = &dataset.objects[1];
        bench.iter(|| a.compare(x, y))
    });
    group.bench_function("approx_common_relation", |bench| {
        let relations: Vec<&Relation> = dataset
            .preferences
            .iter()
            .take(8)
            .map(|p| p.relation(AttrId::new(0)))
            .collect();
        bench.iter(|| {
            approx_common_relation(relations.iter().copied(), ApproxConfig::new(256, 0.5)).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_relation_ops, bench_similarity_and_dominance);
criterion_main!(benches);
