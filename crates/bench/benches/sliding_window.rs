//! Criterion bench for Figures 8 and 9: sliding-window cost as the window
//! size W varies, for BaselineSW, FilterThenVerifySW and
//! FilterThenVerifyApproxSW.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::{
    build_approx_sw_monitor, build_exact_sw_monitor, default_approx_config, generate_dataset,
};
use pm_bench::Scale;
use pm_core::{BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;

fn bench_sliding_window(c: &mut Criterion) {
    let mut scale = Scale::smoke();
    scale.stream_len = 600;
    let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
    let stream = dataset.stream(scale.stream_len);
    let mut group = c.benchmark_group("fig8_9_sliding_window");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for window in [100usize, 200, 400] {
        group.bench_with_input(
            BenchmarkId::new("BaselineSW", window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let mut monitor = BaselineSwMonitor::new(dataset.preferences.clone(), window);
                    for o in stream.iter() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerifySW", window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let (mut monitor, _) = build_exact_sw_monitor(&dataset, 0.55, window);
                    for o in stream.iter() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerifyApproxSW", window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let (mut monitor, _) =
                        build_approx_sw_monitor(&dataset, 0.55, default_approx_config(), window);
                    for o in stream.iter() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sliding_window);
criterion_main!(benches);
