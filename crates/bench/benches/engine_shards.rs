//! Throughput scaling of the sharded engine (not in the paper): the same
//! synthetic movie workload processed by the single-threaded monitors and by
//! `pm-engine` at 1, 2, 4 and 8 shards.
//!
//! The per-arrival work is a sum of independent per-user frontier updates,
//! so throughput should scale with shards until the fan-out/fan-in overhead
//! or the physical core count dominates.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use pm_bench::setup::generate_dataset;
use pm_bench::Scale;
use pm_core::{BaselineMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};

/// Objects are fed to the engine in batches of this size; large enough to
/// amortise the broadcast, small enough to keep shards busy concurrently.
const BATCH: usize = 64;

fn bench_engine_shards(c: &mut Criterion) {
    let scale = Scale::smoke();
    let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
    let objects = dataset.objects.clone();

    let mut group = c.benchmark_group("engine_shards_movie");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(objects.len() as u64));

    // Monitor/engine construction and teardown (thread spawn + join for the
    // engine) happen in iter_batched's setup and output-drop, outside the
    // timed region — only stream processing is measured.
    group.bench_function("single_threaded_baseline", |b| {
        b.iter_batched(
            || BaselineMonitor::new(dataset.preferences.clone()),
            |mut monitor| {
                for o in objects.iter().cloned() {
                    monitor.process(o);
                }
                let notifications = monitor.stats().notifications;
                (notifications, monitor)
            },
            BatchSize::LargeInput,
        )
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded_engine", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || {
                        ShardedEngine::new(
                            dataset.preferences.clone(),
                            &EngineConfig::new(shards),
                            &BackendSpec::baseline(),
                        )
                    },
                    |engine| {
                        let mut notifications = 0u64;
                        for chunk in objects.chunks(BATCH) {
                            for arrival in engine.process_batch(chunk.to_vec()) {
                                notifications += arrival.target_users.len() as u64;
                            }
                        }
                        (notifications, engine)
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_shards);
criterion_main!(benches);
