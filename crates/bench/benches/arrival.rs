//! Criterion bench for Figures 4 and 5: cost of processing an append-only
//! object table with Baseline, FilterThenVerify and FilterThenVerifyApprox,
//! on the movie-like and publication-like datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::{
    build_approx_monitor, build_exact_monitor, default_approx_config, generate_dataset,
};
use pm_bench::Scale;
use pm_core::{BaselineMonitor, ContinuousMonitor};
use pm_datagen::DatasetProfile;

fn bench_arrival(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut group = c.benchmark_group("fig4_5_arrival");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for profile in [DatasetProfile::movie(), DatasetProfile::publication()] {
        let dataset = generate_dataset(&profile, &scale);
        group.bench_with_input(
            BenchmarkId::new("Baseline", &profile.name),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let mut monitor = BaselineMonitor::new(dataset.preferences.clone());
                    for o in dataset.objects.iter().cloned() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerify", &profile.name),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let (mut monitor, _) = build_exact_monitor(dataset, 0.55);
                    for o in dataset.objects.iter().cloned() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("FilterThenVerifyApprox", &profile.name),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let (mut monitor, _) =
                        build_approx_monitor(dataset, 0.55, default_approx_config());
                    for o in dataset.objects.iter().cloned() {
                        monitor.process(o);
                    }
                    monitor.stats().comparisons
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arrival);
criterion_main!(benches);
