//! Ablation bench (not in the paper): how the clustering similarity measure
//! and the branch cut h affect clustering cost and the resulting cluster
//! structure — the k-versus-m trade-off discussed at the end of Sec. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::setup::{cluster_dataset, generate_dataset};
use pm_bench::Scale;
use pm_cluster::{cluster_users, ApproxMeasure, ClusteringConfig, ExactMeasure};
use pm_datagen::DatasetProfile;

fn bench_clustering(c: &mut Criterion) {
    let scale = Scale::smoke();
    let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
    let mut group = c.benchmark_group("ablation_clustering");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for measure in ExactMeasure::ALL {
        group.bench_function(BenchmarkId::new("exact", measure.name()), |b| {
            b.iter(|| cluster_dataset(&dataset, measure, 0.55).1.clusters)
        });
    }
    for measure in [ApproxMeasure::Jaccard, ApproxMeasure::WeightedJaccard] {
        group.bench_function(BenchmarkId::new("approx", measure.name()), |b| {
            b.iter(|| {
                cluster_users(
                    &dataset.preferences,
                    ClusteringConfig::Approx {
                        measure,
                        branch_cut: 0.55,
                    },
                )
                .len()
            })
        });
    }
    for h in [0.4_f64, 0.55, 0.7] {
        group.bench_with_input(
            BenchmarkId::new("branch_cut", format!("{h}")),
            &h,
            |b, &h| {
                b.iter(|| {
                    cluster_dataset(&dataset, ExactMeasure::Jaccard, h)
                        .1
                        .clusters
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
