//! One function per figure/table of the paper's evaluation section, plus
//! ablations. Every function returns plain row structs so that the
//! `reproduce` binary, the Criterion benches and the integration tests can
//! all drive the same code.

use std::time::Instant;

use pm_cluster::{ApproxConfig, ExactMeasure};
use pm_core::{AccuracyReport, BaselineMonitor, BaselineSwMonitor, ContinuousMonitor};
use pm_datagen::{Dataset, DatasetProfile};

use crate::report::{Cell, Table};
use crate::scale::Scale;
use crate::setup::{
    build_approx_monitor, build_approx_sw_monitor, build_exact_monitor, build_exact_sw_monitor,
    cluster_dataset, default_approx_config, generate_dataset,
};

/// Algorithm labels used across all experiment rows.
pub const BASELINE: &str = "Baseline";
/// FilterThenVerify label.
pub const FTV: &str = "FilterThenVerify";
/// FilterThenVerifyApprox label.
pub const FTVA: &str = "FilterThenVerifyApprox";
/// BaselineSW label.
pub const BASELINE_SW: &str = "BaselineSW";
/// FilterThenVerifySW label.
pub const FTV_SW: &str = "FilterThenVerifySW";
/// FilterThenVerifyApproxSW label.
pub const FTVA_SW: &str = "FilterThenVerifyApproxSW";

// ---------------------------------------------------------------------------
// Figures 4 & 5: cumulative cost while |O| grows (append-only).
// ---------------------------------------------------------------------------

/// One checkpoint measurement of an append-only run (Figs. 4a/4b, 5a/5b).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalRow {
    /// Dataset name (`movie` / `publication`).
    pub dataset: String,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Number of objects processed at this checkpoint.
    pub objects: usize,
    /// Cumulative wall-clock milliseconds (monitoring only, setup excluded).
    pub cumulative_ms: f64,
    /// Cumulative number of pairwise object comparisons.
    pub comparisons: u64,
}

fn run_checkpointed<M: ContinuousMonitor>(
    monitor: &mut M,
    dataset: &Dataset,
    checkpoints: &[f64],
    algorithm: &'static str,
) -> Vec<ArrivalRow> {
    let total = dataset.num_objects();
    let marks: Vec<usize> = checkpoints
        .iter()
        .map(|f| ((total as f64 * f).round() as usize).clamp(1, total))
        .collect();
    let mut rows = Vec::new();
    let start = Instant::now();
    for (i, object) in dataset.objects.iter().cloned().enumerate() {
        monitor.process(object);
        if marks.contains(&(i + 1)) {
            rows.push(ArrivalRow {
                dataset: dataset.profile_name.clone(),
                algorithm,
                objects: i + 1,
                cumulative_ms: start.elapsed().as_secs_f64() * 1e3,
                comparisons: monitor.stats().comparisons,
            });
        }
    }
    rows
}

/// Figures 4 (movie) and 5 (publication): cumulative execution time and
/// object comparisons for Baseline, FilterThenVerify and
/// FilterThenVerifyApprox while objects keep arriving. `h` is the branch cut.
pub fn arrival_experiment(profile: &DatasetProfile, scale: &Scale, h: f64) -> Vec<ArrivalRow> {
    let dataset = generate_dataset(profile, scale);
    let mut rows = Vec::new();

    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    rows.extend(run_checkpointed(
        &mut baseline,
        &dataset,
        &scale.checkpoints,
        BASELINE,
    ));

    let (mut ftv, _) = build_exact_monitor(&dataset, h);
    rows.extend(run_checkpointed(
        &mut ftv,
        &dataset,
        &scale.checkpoints,
        FTV,
    ));

    let (mut ftva, _) = build_approx_monitor(&dataset, h, default_approx_config());
    rows.extend(run_checkpointed(
        &mut ftva,
        &dataset,
        &scale.checkpoints,
        FTVA,
    ));

    rows
}

/// Renders arrival rows as a table.
pub fn arrival_table(title: &str, rows: &[ArrivalRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "dataset",
            "algorithm",
            "|O|",
            "cumulative ms",
            "comparisons",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            r.algorithm.into(),
            r.objects.into(),
            Cell::Float(r.cumulative_ms),
            r.comparisons.into(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 6 & 7: cost versus dimensionality d (append-only).
// Figures 10 & 11: cost versus dimensionality d (sliding window).
// ---------------------------------------------------------------------------

/// One dimensionality measurement (Figs. 6/7 append-only, 10/11 sliding).
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Number of attributes `d`.
    pub dimensions: usize,
    /// Sliding-window size, `None` for the append-only experiments.
    pub window: Option<usize>,
    /// Total wall-clock milliseconds.
    pub total_ms: f64,
    /// Total pairwise object comparisons.
    pub comparisons: u64,
}

fn run_to_completion<M: ContinuousMonitor>(
    monitor: &mut M,
    objects: impl Iterator<Item = pm_model::Object>,
) -> (f64, u64) {
    let start = Instant::now();
    for object in objects {
        monitor.process(object);
    }
    (
        start.elapsed().as_secs_f64() * 1e3,
        monitor.stats().comparisons,
    )
}

/// Figures 6 (movie) and 7 (publication): total cost at d ∈ `dims`.
pub fn dimension_experiment(
    profile: &DatasetProfile,
    scale: &Scale,
    h: f64,
    dims: &[usize],
) -> Vec<DimensionRow> {
    let full = generate_dataset(profile, scale);
    let mut rows = Vec::new();
    for &d in dims {
        let dataset = full.project(d);
        let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
        let (ms, cmp) = run_to_completion(&mut baseline, dataset.objects.iter().cloned());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: BASELINE,
            dimensions: d,
            window: None,
            total_ms: ms,
            comparisons: cmp,
        });
        let (mut ftv, _) = build_exact_monitor(&dataset, h);
        let (ms, cmp) = run_to_completion(&mut ftv, dataset.objects.iter().cloned());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTV,
            dimensions: d,
            window: None,
            total_ms: ms,
            comparisons: cmp,
        });
        let (mut ftva, _) = build_approx_monitor(&dataset, h, default_approx_config());
        let (ms, cmp) = run_to_completion(&mut ftva, dataset.objects.iter().cloned());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTVA,
            dimensions: d,
            window: None,
            total_ms: ms,
            comparisons: cmp,
        });
    }
    rows
}

/// Figures 10 (movie) and 11 (publication): sliding-window cost at
/// d ∈ `dims` with a fixed window (the largest in `scale.window_sizes`).
pub fn sliding_dimension_experiment(
    profile: &DatasetProfile,
    scale: &Scale,
    h: f64,
    dims: &[usize],
) -> Vec<DimensionRow> {
    let full = generate_dataset(profile, scale);
    let window = scale.window_sizes.last().copied().unwrap_or(400);
    let mut rows = Vec::new();
    for &d in dims {
        let dataset = full.project(d);
        let stream = dataset.stream(scale.stream_len);

        let mut baseline = BaselineSwMonitor::new(dataset.preferences.clone(), window);
        let (ms, cmp) = run_to_completion(&mut baseline, stream.iter());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: BASELINE_SW,
            dimensions: d,
            window: Some(window),
            total_ms: ms,
            comparisons: cmp,
        });

        let (mut ftv, _) = build_exact_sw_monitor(&dataset, h, window);
        let (ms, cmp) = run_to_completion(&mut ftv, stream.iter());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTV_SW,
            dimensions: d,
            window: Some(window),
            total_ms: ms,
            comparisons: cmp,
        });

        let (mut ftva, _) = build_approx_sw_monitor(&dataset, h, default_approx_config(), window);
        let (ms, cmp) = run_to_completion(&mut ftva, stream.iter());
        rows.push(DimensionRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTVA_SW,
            dimensions: d,
            window: Some(window),
            total_ms: ms,
            comparisons: cmp,
        });
    }
    rows
}

/// Renders dimension rows as a table.
pub fn dimension_table(title: &str, rows: &[DimensionRow]) -> Table {
    let mut t = Table::new(
        title,
        &["dataset", "algorithm", "d", "W", "total ms", "comparisons"],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            r.algorithm.into(),
            r.dimensions.into(),
            r.window
                .map(|w| w.to_string())
                .unwrap_or_else(|| "-".into())
                .into(),
            Cell::Float(r.total_ms),
            r.comparisons.into(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 11: accuracy of FilterThenVerifyApprox while varying h.
// ---------------------------------------------------------------------------

/// One accuracy measurement (Table 11).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Dataset name.
    pub dataset: String,
    /// Branch cut `h`.
    pub h: f64,
    /// Number of clusters produced at this branch cut.
    pub clusters: usize,
    /// Precision of FilterThenVerifyApprox against the exact frontiers.
    pub precision: f64,
    /// Recall against the exact frontiers.
    pub recall: f64,
    /// F-measure.
    pub f_measure: f64,
}

/// Table 11: precision / recall / F-measure of FilterThenVerifyApprox for
/// several branch cuts `h`, with the exact per-user frontiers (Baseline) as
/// ground truth.
pub fn accuracy_experiment(
    profile: &DatasetProfile,
    scale: &Scale,
    h_values: &[f64],
) -> Vec<AccuracyRow> {
    let dataset = generate_dataset(profile, scale);
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    for object in dataset.objects.iter().cloned() {
        baseline.process(object);
    }
    let exact = baseline.all_frontiers();

    let mut rows = Vec::new();
    for &h in h_values {
        let (mut ftva, summary) = build_approx_monitor(&dataset, h, default_approx_config());
        for object in dataset.objects.iter().cloned() {
            ftva.process(object);
        }
        let approx = ftva.all_frontiers();
        let report = AccuracyReport::compare(&exact, &approx);
        rows.push(AccuracyRow {
            dataset: dataset.profile_name.clone(),
            h,
            clusters: summary.clusters,
            precision: report.precision(),
            recall: report.recall(),
            f_measure: report.f_measure(),
        });
    }
    rows
}

/// Renders accuracy rows as a table.
pub fn accuracy_table(title: &str, rows: &[AccuracyRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "dataset",
            "h",
            "clusters",
            "precision",
            "recall",
            "F-measure",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            Cell::Float(r.h),
            r.clusters.into(),
            Cell::Percent(r.precision),
            Cell::Percent(r.recall),
            Cell::Percent(r.f_measure),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 8 & 9: sliding-window cost versus window size W.
// ---------------------------------------------------------------------------

/// One sliding-window measurement (Figs. 8a/8b, 9a/9b).
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Window size `W`.
    pub window: usize,
    /// Total wall-clock milliseconds over the whole stream.
    pub total_ms: f64,
    /// Total pairwise object comparisons.
    pub comparisons: u64,
}

/// Figures 8 (movie) and 9 (publication): cost of the three sliding-window
/// algorithms for every window size of the scale.
pub fn sliding_experiment(profile: &DatasetProfile, scale: &Scale, h: f64) -> Vec<SlidingRow> {
    let dataset = generate_dataset(profile, scale);
    let stream = dataset.stream(scale.stream_len);
    let mut rows = Vec::new();
    for &window in &scale.window_sizes {
        let mut baseline = BaselineSwMonitor::new(dataset.preferences.clone(), window);
        let (ms, cmp) = run_to_completion(&mut baseline, stream.iter());
        rows.push(SlidingRow {
            dataset: dataset.profile_name.clone(),
            algorithm: BASELINE_SW,
            window,
            total_ms: ms,
            comparisons: cmp,
        });

        let (mut ftv, _) = build_exact_sw_monitor(&dataset, h, window);
        let (ms, cmp) = run_to_completion(&mut ftv, stream.iter());
        rows.push(SlidingRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTV_SW,
            window,
            total_ms: ms,
            comparisons: cmp,
        });

        let (mut ftva, _) = build_approx_sw_monitor(&dataset, h, default_approx_config(), window);
        let (ms, cmp) = run_to_completion(&mut ftva, stream.iter());
        rows.push(SlidingRow {
            dataset: dataset.profile_name.clone(),
            algorithm: FTVA_SW,
            window,
            total_ms: ms,
            comparisons: cmp,
        });
    }
    rows
}

/// Renders sliding-window rows as a table.
pub fn sliding_table(title: &str, rows: &[SlidingRow]) -> Table {
    let mut t = Table::new(
        title,
        &["dataset", "algorithm", "W", "total ms", "comparisons"],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            r.algorithm.into(),
            r.window.into(),
            Cell::Float(r.total_ms),
            r.comparisons.into(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 12: accuracy of FilterThenVerifyApproxSW varying W and h.
// ---------------------------------------------------------------------------

/// One sliding-window accuracy measurement (Table 12).
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingAccuracyRow {
    /// Dataset name.
    pub dataset: String,
    /// Window size `W`.
    pub window: usize,
    /// Branch cut `h`.
    pub h: f64,
    /// Precision against BaselineSW's final frontiers.
    pub precision: f64,
    /// Recall against BaselineSW's final frontiers.
    pub recall: f64,
    /// F-measure.
    pub f_measure: f64,
}

/// Table 12: precision / recall / F-measure of FilterThenVerifyApproxSW for
/// every (W, h) combination, using BaselineSW as ground truth. The frontiers
/// are compared at the end of the stream.
pub fn sliding_accuracy_experiment(
    profile: &DatasetProfile,
    scale: &Scale,
    h_values: &[f64],
) -> Vec<SlidingAccuracyRow> {
    let dataset = generate_dataset(profile, scale);
    let stream = dataset.stream(scale.stream_len);
    let mut rows = Vec::new();
    for &window in &scale.window_sizes {
        let mut baseline = BaselineSwMonitor::new(dataset.preferences.clone(), window);
        for object in stream.iter() {
            baseline.process(object);
        }
        let exact = baseline.all_frontiers();
        for &h in h_values {
            let (mut ftva, _) =
                build_approx_sw_monitor(&dataset, h, default_approx_config(), window);
            for object in stream.iter() {
                ftva.process(object);
            }
            let report = AccuracyReport::compare(&exact, &ftva.all_frontiers());
            rows.push(SlidingAccuracyRow {
                dataset: dataset.profile_name.clone(),
                window,
                h,
                precision: report.precision(),
                recall: report.recall(),
                f_measure: report.f_measure(),
            });
        }
    }
    rows
}

/// Renders sliding-window accuracy rows as a table.
pub fn sliding_accuracy_table(title: &str, rows: &[SlidingAccuracyRow]) -> Table {
    let mut t = Table::new(
        title,
        &["dataset", "W", "h", "precision", "recall", "F-measure"],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            r.window.into(),
            Cell::Float(r.h),
            Cell::Percent(r.precision),
            Cell::Percent(r.recall),
            Cell::Percent(r.f_measure),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablations (not in the paper): similarity-measure choice and θ thresholds.
// ---------------------------------------------------------------------------

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: String,
    /// Variant label (similarity measure or θ configuration).
    pub variant: String,
    /// Number of clusters produced.
    pub clusters: usize,
    /// Size of the largest cluster.
    pub largest: usize,
    /// Total monitoring milliseconds.
    pub total_ms: f64,
    /// Total pairwise object comparisons.
    pub comparisons: u64,
    /// Recall against the exact frontiers (1.0 for exact variants).
    pub recall: f64,
}

/// Ablation A: how the choice of exact similarity measure (Sec. 5) affects
/// cluster structure and FilterThenVerify cost.
/// Ablation B: how the θ2 threshold (Alg. 3) trades recall for comparisons.
pub fn ablation_experiment(profile: &DatasetProfile, scale: &Scale, h: f64) -> Vec<AblationRow> {
    let dataset = generate_dataset(profile, scale);
    let mut baseline = BaselineMonitor::new(dataset.preferences.clone());
    for object in dataset.objects.iter().cloned() {
        baseline.process(object);
    }
    let exact_frontiers = baseline.all_frontiers();
    let mut rows = Vec::new();

    // Ablation A: exact measures.
    for measure in ExactMeasure::ALL {
        let (clusters, summary) = cluster_dataset(&dataset, measure, h);
        let mut monitor =
            pm_core::FilterThenVerifyMonitor::new(dataset.preferences.clone(), &clusters);
        let (ms, cmp) = run_to_completion(&mut monitor, dataset.objects.iter().cloned());
        rows.push(AblationRow {
            dataset: dataset.profile_name.clone(),
            variant: format!("measure={}", measure.name()),
            clusters: summary.clusters,
            largest: summary.largest,
            total_ms: ms,
            comparisons: cmp,
            recall: 1.0,
        });
    }

    // Ablation B: θ2 sweep for the approximate relations.
    for theta2 in [0.3, 0.5, 0.7] {
        let config = ApproxConfig::new(512, theta2);
        let (mut monitor, summary) = build_approx_monitor(&dataset, h, config);
        let (ms, cmp) = run_to_completion(&mut monitor, dataset.objects.iter().cloned());
        let report = AccuracyReport::compare(&exact_frontiers, &monitor.all_frontiers());
        rows.push(AblationRow {
            dataset: dataset.profile_name.clone(),
            variant: format!("theta2={theta2}"),
            clusters: summary.clusters,
            largest: summary.largest,
            total_ms: ms,
            comparisons: cmp,
            recall: report.recall(),
        });
    }
    rows
}

/// Renders ablation rows as a table.
pub fn ablation_table(title: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "dataset",
            "variant",
            "clusters",
            "largest",
            "total ms",
            "comparisons",
            "recall",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.as_str().into(),
            r.variant.as_str().into(),
            r.clusters.into(),
            r.largest.into(),
            Cell::Float(r.total_ms),
            r.comparisons.into(),
            Cell::Percent(r.recall),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Scale {
        Scale::smoke()
    }

    #[test]
    fn arrival_experiment_produces_rows_for_all_algorithms() {
        let rows = arrival_experiment(&DatasetProfile::movie(), &smoke(), 0.4);
        let algos: std::collections::HashSet<&str> = rows.iter().map(|r| r.algorithm).collect();
        assert_eq!(algos.len(), 3);
        // Comparisons grow with the checkpoints for each algorithm.
        for algo in [BASELINE, FTV, FTVA] {
            let c: Vec<u64> = rows
                .iter()
                .filter(|r| r.algorithm == algo)
                .map(|r| r.comparisons)
                .collect();
            assert!(c.windows(2).all(|w| w[0] <= w[1]), "{algo}: {c:?}");
        }
        let table = arrival_table("fig4", &rows);
        assert!(table.render().contains("Baseline"));
    }

    #[test]
    fn filter_then_verify_does_less_work_than_baseline() {
        let rows = arrival_experiment(&DatasetProfile::movie(), &smoke(), 0.3);
        let last = |algo: &str| {
            rows.iter()
                .filter(|r| r.algorithm == algo)
                .map(|r| r.comparisons)
                .max()
                .unwrap()
        };
        // The headline claim of the paper: the filter-then-verify family does
        // not exceed the baseline's comparison count (it typically does far
        // fewer once clusters are non-trivial).
        assert!(
            last(FTVA) <= last(BASELINE),
            "FTVA {} vs Baseline {}",
            last(FTVA),
            last(BASELINE)
        );
    }

    #[test]
    fn accuracy_experiment_reports_high_precision() {
        let rows = accuracy_experiment(&DatasetProfile::movie(), &smoke(), &[0.6, 0.4]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.precision > 0.5, "precision too low: {row:?}");
            assert!(row.recall > 0.3, "recall too low: {row:?}");
            assert!(row.f_measure > 0.0);
            assert!(row.clusters >= 1);
        }
        let table = accuracy_table("table11", &rows);
        assert!(table.render().contains('%'));
    }

    #[test]
    fn sliding_experiment_covers_all_windows() {
        let mut scale = smoke();
        scale.stream_len = 400;
        scale.window_sizes = vec![50, 100];
        let rows = sliding_experiment(&DatasetProfile::movie(), &scale, 0.4);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.comparisons > 0));
        let table = sliding_table("fig8", &rows);
        assert!(table.render().contains("BaselineSW"));
    }

    #[test]
    fn dimension_experiments_cover_requested_dims() {
        let rows = dimension_experiment(&DatasetProfile::movie(), &smoke(), 0.4, &[2, 3]);
        let dims: std::collections::HashSet<usize> = rows.iter().map(|r| r.dimensions).collect();
        assert_eq!(dims, [2, 3].into_iter().collect());
        assert_eq!(rows.len(), 6);
        let table = dimension_table("fig6", &rows);
        assert!(table.render().contains("| 2 |") || table.render().contains(" 2 "));
    }

    #[test]
    fn sliding_accuracy_experiment_reports_rows_per_window_and_h() {
        let mut scale = smoke();
        scale.stream_len = 300;
        scale.window_sizes = vec![60];
        let rows = sliding_accuracy_experiment(&DatasetProfile::publication(), &scale, &[0.5, 0.3]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.precision >= 0.0 && r.precision <= 1.0);
            assert!(r.recall >= 0.0 && r.recall <= 1.0);
        }
        let table = sliding_accuracy_table("table12", &rows);
        assert!(table.render().contains("publication"));
    }

    #[test]
    fn ablation_experiment_covers_measures_and_thetas() {
        let rows = ablation_experiment(&DatasetProfile::movie(), &smoke(), 0.4);
        assert_eq!(rows.len(), ExactMeasure::ALL.len() + 3);
        assert!(rows.iter().any(|r| r.variant.contains("measure=")));
        assert!(rows.iter().any(|r| r.variant.contains("theta2=")));
        let table = ablation_table("ablation", &rows);
        assert!(table.render().contains("measure=jaccard"));
    }
}
