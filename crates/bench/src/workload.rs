//! The fixed dominance-workload access pattern shared by the `dominance`
//! Criterion bench and the `perf_smoke` CI gate, so both always measure the
//! same comparison stream and `bench-baseline.json` refreshes stay
//! comparable with the microbench numbers.

use pm_model::{AttrId, Object, ValueId};

/// How many distinct preferences the dominance workload cycles through.
pub const WORKLOAD_PREFS: usize = 8;

/// Indices of the `i`-th (left, right) object pair of the comparison
/// stream over a pool of `num_objects` objects.
#[inline]
pub fn object_pair_indices(i: usize, num_objects: usize) -> (usize, usize) {
    (i % num_objects, (i * 7 + 3) % num_objects)
}

/// The `i`-th (x, y) value pair of the raw-`prefers` stream, drawn from the
/// objects' first attribute.
#[inline]
pub fn value_pair(objects: &[Object], i: usize) -> (ValueId, ValueId) {
    let attr = AttrId::new(0);
    (
        objects[i % objects.len()].value(attr),
        objects[(i * 5 + 1) % objects.len()].value(attr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::ObjectId;

    #[test]
    fn pair_indices_stay_in_bounds_and_cycle() {
        for i in 0..1_000 {
            let (a, b) = object_pair_indices(i, 37);
            assert!(a < 37 && b < 37);
        }
        assert_ne!(object_pair_indices(0, 37), object_pair_indices(1, 37));
    }

    #[test]
    fn value_pairs_come_from_the_first_attribute() {
        let objects: Vec<Object> = (0..5)
            .map(|i| {
                Object::new(
                    ObjectId::new(i),
                    vec![ValueId::new(i as u32), ValueId::new(9)],
                )
            })
            .collect();
        for i in 0..20 {
            let (x, y) = value_pair(&objects, i);
            assert!(x.raw() < 5 && y.raw() < 5, "attr-0 values only");
        }
    }
}
