//! Minimal aligned-table formatting for experiment reports.

use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// A text cell.
    Text(String),
    /// An integer cell.
    Int(u64),
    /// A floating-point cell rendered with two decimals.
    Float(f64),
    /// A percentage cell rendered with two decimals and a `%` suffix.
    Percent(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.2}"),
            Cell::Percent(v) => format!("{:.2}%", v * 100.0),
        }
    }
}

impl From<&str> for Cell {
    fn from(value: &str) -> Self {
        Cell::Text(value.to_owned())
    }
}

impl From<String> for Cell {
    fn from(value: String) -> Self {
        Cell::Text(value)
    }
}

impl From<u64> for Cell {
    fn from(value: u64) -> Self {
        Cell::Int(value)
    }
}

impl From<usize> for Cell {
    fn from(value: usize) -> Self {
        Cell::Int(value as u64)
    }
}

impl From<f64> for Cell {
    fn from(value: f64) -> Self {
        Cell::Float(value)
    }
}

/// A simple table: a title, a header row and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        self.rows.push(row);
    }

    /// Renders the table as aligned monospace text (also valid Markdown).
    pub fn render(&self) -> String {
        format_table(&self.title, &self.header, &self.rows)
    }
}

/// Formats a header plus rows as an aligned Markdown-style table.
pub fn format_table(title: &str, header: &[String], rows: &[Vec<Cell>]) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(Cell::render).collect())
        .collect();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    if !title.is_empty() {
        let _ = writeln!(out, "## {title}");
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{c:>width$}",
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let _ = writeln!(out, "{}", fmt_row(header, &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
    for row in &rendered {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_render_by_kind() {
        assert_eq!(Cell::from("x").render(), "x");
        assert_eq!(Cell::from(3usize).render(), "3");
        assert_eq!(Cell::Float(1.234).render(), "1.23");
        assert_eq!(Cell::Percent(0.9543).render(), "95.43%");
    }

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["algo", "time"]);
        t.push_row(vec!["Baseline".into(), Cell::Float(12.5)]);
        t.push_row(vec!["FilterThenVerify".into(), Cell::Float(3.25)]);
        let text = t.render();
        assert!(text.starts_with("## Demo"));
        assert!(text.contains("Baseline"));
        assert!(text.contains("FilterThenVerify"));
        assert!(text.contains("3.25"));
        // Header separator present.
        assert!(text.contains("| ----"));
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::new("", &["a"]);
        let text = t.render();
        assert!(text.contains("| a |"));
        assert!(!text.contains("##"));
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let text = format_table(
            "t",
            &["a".into(), "b".into()],
            &[
                vec![Cell::Int(1)],
                vec![Cell::Int(1), Cell::Int(2), Cell::Int(3)],
            ],
        );
        assert!(text.contains("| 1 |"));
    }
}
