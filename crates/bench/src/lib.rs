//! # pm-bench
//!
//! The experiment harness that regenerates every figure and table of the
//! evaluation section (Sec. 8) of Sultana & Li (EDBT 2018), plus extra
//! ablation experiments on the design choices called out in `DESIGN.md`.
//!
//! The harness is a library so that both the `reproduce` binary and the
//! Criterion benches drive the exact same code paths. Scales are
//! configurable: [`Scale::quick`] finishes in minutes on one core,
//! [`Scale::paper`] matches the paper's dataset sizes (hours).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scale;
pub mod setup;
pub mod workload;

pub use experiments::{
    ablation_experiment, accuracy_experiment, arrival_experiment, dimension_experiment,
    sliding_accuracy_experiment, sliding_dimension_experiment, sliding_experiment, AblationRow,
    AccuracyRow, ArrivalRow, DimensionRow, SlidingAccuracyRow, SlidingRow,
};
pub use report::{format_table, Cell, Table};
pub use scale::Scale;
pub use setup::{build_approx_monitor, build_exact_monitor, cluster_dataset, ClusterSummary};
