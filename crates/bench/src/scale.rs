//! Experiment scales: how large the simulated workloads are.

/// Size parameters for an experiment run.
///
/// The paper's experiments use 1,000 users, 12,749 / 17,598 base objects and
/// 1M-object streams on a server-class machine; [`Scale::paper`] reproduces
/// those sizes, while [`Scale::quick`] (the default) keeps the same *shape*
/// (relative algorithm ordering, growth trends) at a size that completes in
/// minutes on a single core. `EXPERIMENTS.md` records which scale was used.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Number of users `|C|`.
    pub users: usize,
    /// Number of base objects `|O|` per dataset.
    pub objects: usize,
    /// Interactions (ratings / citations) per user used to derive
    /// preferences.
    pub interactions: usize,
    /// Total stream length for the sliding-window experiments.
    pub stream_len: usize,
    /// Window sizes `W` for the sliding-window experiments.
    pub window_sizes: Vec<usize>,
    /// Checkpoints (fractions of `|O|`) at which cumulative measurements are
    /// reported for the arrival experiments (Figs. 4–5).
    pub checkpoints: Vec<f64>,
    /// RNG seed for dataset generation.
    pub seed: u64,
}

impl Scale {
    /// A scale that finishes in minutes on one core while preserving the
    /// relative behaviour of the algorithms.
    pub fn quick() -> Self {
        Self {
            users: 80,
            objects: 1_200,
            interactions: 60,
            stream_len: 6_000,
            window_sizes: vec![200, 400, 800, 1_600],
            checkpoints: vec![0.25, 0.5, 0.75, 1.0],
            seed: 42,
        }
    }

    /// An even smaller scale for Criterion micro-runs and CI smoke tests.
    pub fn smoke() -> Self {
        Self {
            users: 24,
            objects: 300,
            interactions: 40,
            stream_len: 900,
            window_sizes: vec![100, 200, 400],
            checkpoints: vec![0.5, 1.0],
            seed: 42,
        }
    }

    /// The paper's full scale (1,000 users, full datasets, 1M-object
    /// streams, W ∈ {400, …, 3200}). Expect multi-hour runtimes.
    pub fn paper() -> Self {
        Self {
            users: 1_000,
            objects: usize::MAX, // use the profile's own object count
            interactions: 120,
            stream_len: 1_000_000,
            window_sizes: vec![400, 800, 1_600, 3_200],
            checkpoints: vec![0.25, 0.5, 0.75, 1.0],
            seed: 42,
        }
    }

    /// Looks a scale up by name (`quick`, `smoke`, `paper`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "smoke" => Some(Self::smoke()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_lookup_finds_all_scales() {
        assert_eq!(Scale::by_name("quick"), Some(Scale::quick()));
        assert_eq!(Scale::by_name("smoke"), Some(Scale::smoke()));
        assert_eq!(Scale::by_name("paper"), Some(Scale::paper()));
        assert_eq!(Scale::by_name("nope"), None);
    }

    #[test]
    fn default_is_quick() {
        assert_eq!(Scale::default(), Scale::quick());
    }

    #[test]
    fn smoke_is_smaller_than_quick() {
        let (s, q) = (Scale::smoke(), Scale::quick());
        assert!(s.users < q.users);
        assert!(s.objects < q.objects);
        assert!(s.stream_len < q.stream_len);
    }

    #[test]
    fn paper_scale_matches_paper_windows() {
        assert_eq!(Scale::paper().window_sizes, vec![400, 800, 1_600, 3_200]);
        assert_eq!(Scale::paper().stream_len, 1_000_000);
        assert_eq!(Scale::paper().users, 1_000);
    }
}
