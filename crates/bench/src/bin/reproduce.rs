//! Reproduces the figures and tables of the paper's evaluation section.
//!
//! ```text
//! reproduce [experiment ...] [--scale quick|smoke|paper] [--h <branch-cut>]
//!
//! experiments: fig4 fig5 fig6 fig7 table11 fig8 fig9 fig10 fig11 table12
//!              ablation all (default: all)
//! ```
//!
//! Output is printed as Markdown tables; `EXPERIMENTS.md` embeds the output
//! of `reproduce all --scale quick`.

use std::process::ExitCode;

use pm_bench::experiments::{
    ablation_experiment, ablation_table, accuracy_experiment, accuracy_table, arrival_experiment,
    arrival_table, dimension_experiment, dimension_table, sliding_accuracy_experiment,
    sliding_accuracy_table, sliding_dimension_experiment, sliding_experiment, sliding_table,
};
use pm_bench::Scale;
use pm_datagen::DatasetProfile;

const ALL_EXPERIMENTS: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "table11", "fig8", "fig9", "fig10", "fig11", "table12",
    "ablation",
];

/// The branch cut used by the paper's headline experiments.
const DEFAULT_H: f64 = 0.55;
/// Branch cuts swept by Tables 11 and 12.
const H_SWEEP: &[f64] = &[0.70, 0.65, 0.60, 0.55];
/// Dimensionalities swept by Figures 6, 7, 10 and 11.
const DIMS: &[usize] = &[2, 3, 4];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = Scale::quick();
    let mut h = DEFAULT_H;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--scale requires a value (quick|smoke|paper)");
                    return ExitCode::FAILURE;
                };
                match Scale::by_name(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}' (expected quick|smoke|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--h" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--h requires a numeric value");
                    return ExitCode::FAILURE;
                };
                h = value;
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [experiment ...] [--scale quick|smoke|paper] [--h <branch-cut>]\n\
                     experiments: {} all",
                    ALL_EXPERIMENTS.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_owned()),
        }
        i += 1;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }

    let movie = DatasetProfile::movie();
    let publication = DatasetProfile::publication();
    println!(
        "# Reproduction run (scale: {} users, {} objects, stream {}, h = {h})\n",
        scale.users,
        if scale.objects == usize::MAX {
            "paper".to_owned()
        } else {
            scale.objects.to_string()
        },
        scale.stream_len
    );

    for experiment in &experiments {
        match experiment.as_str() {
            "fig4" => {
                let rows = arrival_experiment(&movie, &scale, h);
                println!(
                    "{}",
                    arrival_table("Figure 4: cumulative cost vs |O| (movie)", &rows).render()
                );
            }
            "fig5" => {
                let rows = arrival_experiment(&publication, &scale, h);
                println!(
                    "{}",
                    arrival_table("Figure 5: cumulative cost vs |O| (publication)", &rows).render()
                );
            }
            "fig6" => {
                let rows = dimension_experiment(&movie, &scale, h, DIMS);
                println!(
                    "{}",
                    dimension_table("Figure 6: cost vs d (movie)", &rows).render()
                );
            }
            "fig7" => {
                let rows = dimension_experiment(&publication, &scale, h, DIMS);
                println!(
                    "{}",
                    dimension_table("Figure 7: cost vs d (publication)", &rows).render()
                );
            }
            "table11" => {
                let mut rows = accuracy_experiment(&movie, &scale, H_SWEEP);
                rows.extend(accuracy_experiment(&publication, &scale, H_SWEEP));
                println!(
                    "{}",
                    accuracy_table("Table 11: accuracy of FilterThenVerifyApprox vs h", &rows)
                        .render()
                );
            }
            "fig8" => {
                let rows = sliding_experiment(&movie, &scale, h);
                println!(
                    "{}",
                    sliding_table("Figure 8: sliding-window cost vs W (movie)", &rows).render()
                );
            }
            "fig9" => {
                let rows = sliding_experiment(&publication, &scale, h);
                println!(
                    "{}",
                    sliding_table("Figure 9: sliding-window cost vs W (publication)", &rows)
                        .render()
                );
            }
            "fig10" => {
                let rows = sliding_dimension_experiment(&movie, &scale, h, DIMS);
                println!(
                    "{}",
                    dimension_table("Figure 10: sliding-window cost vs d (movie)", &rows).render()
                );
            }
            "fig11" => {
                let rows = sliding_dimension_experiment(&publication, &scale, h, DIMS);
                println!(
                    "{}",
                    dimension_table("Figure 11: sliding-window cost vs d (publication)", &rows)
                        .render()
                );
            }
            "table12" => {
                let mut rows = sliding_accuracy_experiment(&movie, &scale, H_SWEEP);
                rows.extend(sliding_accuracy_experiment(&publication, &scale, H_SWEEP));
                println!(
                    "{}",
                    sliding_accuracy_table(
                        "Table 12: accuracy of FilterThenVerifyApproxSW vs W and h",
                        &rows
                    )
                    .render()
                );
            }
            "ablation" => {
                let rows = ablation_experiment(&movie, &scale, h);
                println!(
                    "{}",
                    ablation_table("Ablation: similarity measures and θ2 (movie)", &rows).render()
                );
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
