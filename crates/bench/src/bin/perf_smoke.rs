//! Fixed-seed performance smoke harness and regression gate.
//!
//! Measures, on the movie-profile workload with a hard-coded seed:
//!
//! 1. the dominance hot path — `compare`/`dominates` throughput of the
//!    hash-map [`Preference`] form vs the bitset-compiled
//!    [`CompiledPreference`] form, and
//! 2. end-to-end engine throughput — objects/sec through a
//!    [`ShardedEngine`] running the FilterThenVerify backend.
//!
//! Results are printed as one line per metric and written to a JSON report
//! (`BENCH_2.json` by default). With `--check <baseline.json>` the run
//! fails (exit 1) when a throughput metric regresses more than 30% against
//! the checked-in baseline, or when the compiled dominance path is less
//! than 2x the hash-map path — this is the `perf-smoke` CI gate.
//!
//! ```text
//! perf_smoke [--out BENCH_2.json] [--check bench-baseline.json]
//! ```

use std::time::Instant;

use pm_bench::setup::generate_dataset;
use pm_bench::workload::{object_pair_indices, value_pair, WORKLOAD_PREFS};
use pm_bench::Scale;
use pm_datagen::DatasetProfile;
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::Object;
use pm_porder::{CompiledPreference, Preference};

/// Comparisons per dominance measurement.
const DOMINANCE_OPS: usize = 2_000_000;
/// Stream length for the end-to-end engine measurement.
const ENGINE_OBJECTS: usize = 6_000;
/// Ingestion batch size.
const ENGINE_BATCH: usize = 256;
/// The engine backend under test.
const ENGINE_BACKEND: &str = "ftv:0.4";
/// Regression tolerance of the `--check` gate.
const MAX_REGRESSION: f64 = 0.30;
/// Required compiled-vs-hash dominance speedup.
const MIN_SPEEDUP: f64 = 2.0;

struct Report {
    prefers_hash: f64,
    prefers_compiled: f64,
    dominance_hash: f64,
    dominance_compiled: f64,
    engine_objects_per_sec: f64,
}

impl Report {
    fn speedup(&self) -> f64 {
        self.dominance_compiled / self.dominance_hash
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"pm-perf-smoke/v1\",\n  \"profile\": \"movie\",\n  \"seed\": 42,\n  \
             \"prefers_hash_ops_per_sec\": {:.0},\n  \"prefers_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_hash_ops_per_sec\": {:.0},\n  \"dominance_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_speedup\": {:.3},\n  \"engine_backend\": \"{}\",\n  \
             \"engine_objects\": {},\n  \"engine_objects_per_sec\": {:.0}\n}}\n",
            self.prefers_hash,
            self.prefers_compiled,
            self.dominance_hash,
            self.dominance_compiled,
            self.speedup(),
            ENGINE_BACKEND,
            ENGINE_OBJECTS,
            self.engine_objects_per_sec,
        )
    }
}

/// Times `ops` invocations of `f` (called with a running index), returning
/// ops/sec. A black-boxed accumulator keeps the loop from being optimised
/// away.
fn ops_per_sec<F: FnMut(usize) -> usize>(ops: usize, mut f: F) -> f64 {
    let start = Instant::now();
    let mut acc = 0usize;
    for i in 0..ops {
        acc = acc.wrapping_add(f(i));
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    ops as f64 / elapsed
}

fn measure_dominance(preferences: &[Preference], objects: &[Object]) -> (f64, f64, f64, f64) {
    let hash: Vec<&Preference> = preferences.iter().take(WORKLOAD_PREFS).collect();
    let compiled: Vec<CompiledPreference> = hash.iter().map(|p| p.compile()).collect();
    let pair = |i: usize| {
        let (a, b) = object_pair_indices(i, objects.len());
        (&objects[a], &objects[b])
    };

    // Warm-up passes keep first-touch cache misses out of the timings.
    for i in 0..DOMINANCE_OPS / 10 {
        let (a, b) = pair(i);
        std::hint::black_box(hash[i % hash.len()].compare(a, b));
        std::hint::black_box(compiled[i % compiled.len()].compare(a, b));
    }

    let attr = pm_model::AttrId::new(0);
    let prefers_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = hash[i % hash.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let prefers_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = compiled[i % compiled.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let dominance_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        hash[i % hash.len()].compare(a, b) as usize
    });
    let dominance_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        compiled[i % compiled.len()].compare(a, b) as usize
    });
    (
        prefers_hash,
        prefers_compiled,
        dominance_hash,
        dominance_compiled,
    )
}

fn measure_engine(preferences: Vec<Preference>, objects: &[Object]) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(preferences, &EngineConfig::new(1), &spec);
    let stream: Vec<Object> = (0..ENGINE_OBJECTS)
        .map(|i| {
            let base = &objects[i % objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect();
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        let arrivals = engine.process_batch(chunk.to_vec());
        processed += arrivals.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    processed as f64 / elapsed
}

/// Minimal parser for the flat JSON this harness itself writes: returns the
/// numeric fields as (key, value) pairs.
fn parse_flat_json_numbers(text: &str) -> Vec<(String, f64)> {
    let mut fields = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(number) = value.trim().parse::<f64>() {
            fields.push((key.to_owned(), number));
        }
    }
    fields
}

fn check_against_baseline(report: &Report, baseline_path: &str) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("cannot read baseline {baseline_path}: {e}")]),
    };
    let baseline = parse_flat_json_numbers(&text);
    let lookup = |key: &str| baseline.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut failures = Vec::new();

    let gates = [
        ("dominance_compiled_ops_per_sec", report.dominance_compiled),
        ("engine_objects_per_sec", report.engine_objects_per_sec),
    ];
    for (key, current) in gates {
        let Some(expected) = lookup(key) else {
            failures.push(format!("baseline is missing `{key}`"));
            continue;
        };
        let floor = expected * (1.0 - MAX_REGRESSION);
        if current < floor {
            failures.push(format!(
                "{key} regressed: {current:.0} < {floor:.0} \
                 (baseline {expected:.0}, tolerance {:.0}%)",
                MAX_REGRESSION * 100.0
            ));
        } else {
            println!("gate ok: {key} = {current:.0} (>= {floor:.0})");
        }
    }

    let min_speedup = lookup("min_dominance_speedup").unwrap_or(MIN_SPEEDUP);
    if report.speedup() < min_speedup {
        failures.push(format!(
            "dominance speedup {:.2}x below required {min_speedup:.2}x",
            report.speedup()
        ));
    } else {
        println!(
            "gate ok: dominance_speedup = {:.2}x (>= {min_speedup:.2}x)",
            report.speedup()
        );
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() {
    let mut out_path = "BENCH_2.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (expected --out/--check)");
                std::process::exit(2);
            }
        }
    }

    println!("perf-smoke: movie profile, seed 42, fixed workload");
    let dataset = generate_dataset(&DatasetProfile::movie(), &Scale::quick());
    println!(
        "dataset: {} users, {} objects, {} attributes",
        dataset.num_users(),
        dataset.num_objects(),
        dataset.dimensions()
    );

    let (prefers_hash, prefers_compiled, dominance_hash, dominance_compiled) =
        measure_dominance(&dataset.preferences, &dataset.objects);
    println!("prefers/hash:        {prefers_hash:>12.0} ops/sec");
    println!("prefers/compiled:    {prefers_compiled:>12.0} ops/sec");
    println!("dominance/hash:      {dominance_hash:>12.0} ops/sec");
    println!("dominance/compiled:  {dominance_compiled:>12.0} ops/sec");
    println!(
        "dominance speedup:   {:>12.2}x (compiled vs hash)",
        dominance_compiled / dominance_hash
    );

    let engine_objects_per_sec = measure_engine(dataset.preferences.clone(), &dataset.objects);
    println!("engine ({ENGINE_BACKEND}, 1 shard): {engine_objects_per_sec:>12.0} objects/sec");

    let report = Report {
        prefers_hash,
        prefers_compiled,
        dominance_hash,
        dominance_compiled,
        engine_objects_per_sec,
    };
    std::fs::write(&out_path, report.to_json()).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        match check_against_baseline(&report, &baseline) {
            Ok(()) => println!("perf-smoke gate: PASS"),
            Err(failures) => {
                for failure in &failures {
                    eprintln!("perf-smoke gate: FAIL: {failure}");
                }
                std::process::exit(1);
            }
        }
    }
}
