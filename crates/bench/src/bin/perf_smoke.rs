//! Fixed-seed performance smoke harness and regression gate.
//!
//! Measures, on the movie-profile workload with a hard-coded seed:
//!
//! 1. the dominance hot path — `compare`/`dominates` throughput of the
//!    hash-map [`Preference`] form vs the bitset-compiled
//!    [`CompiledPreference`] form,
//! 2. end-to-end engine throughput — objects/sec through a
//!    [`ShardedEngine`] running the FilterThenVerify backend,
//! 3. the same stream with **registration churn**: one REGISTER +
//!    UNREGISTER pair per 10 objects (10% churn), so the perf gate also
//!    covers the dynamic-membership path (cluster join/repair + frontier
//!    backfill), and
//! 4. the same stream with **update churn**: 10% of arrivals preceded by
//!    an in-place UPDATE of a live user, covering the preference-update
//!    path (cluster diff / re-AND-fold + frontier replay). NB: this phase
//!    is *not* directly comparable to the registration-churn figure — it
//!    permutes the base users' preferences, which also changes the cluster
//!    structure the INGEST side runs on. The like-for-like claim (measured
//!    by swapping the verb on this same workload) is that in-place UPDATE
//!    runs ~20% faster than serving each update as UNREGISTER+REGISTER,
//!    and
//! 5. the registration-churn stream again on the **compacting history**
//!    backend (`ftv:0.4:compact`): REGISTER/UPDATE backfill replays the
//!    skyline-union retained set instead of the full stream. The report
//!    carries the retained-history size next to the full-history size; the
//!    `--check` gate additionally requires the compacted retained set to
//!    stay under `max_compact_retention_ratio` (0.5 = half) of the full
//!    history on this fixed-seed workload, so the memory win is regression
//!    -tested alongside the throughput floors, and
//! 6. the **instrumentation overhead** of the observability layer: the
//!    plain ingest stream runs with the metrics bundle on and off,
//!    interleaved, keeping each mode's best round. Every recording site is
//!    a relaxed atomic op, so the gate requires the on/off throughput gap
//!    to stay within `max_instrumentation_overhead` (5%) — a larger gap
//!    means someone put real work on the hot path. The metrics-on run also
//!    yields the ingest-batch latency percentiles the report carries, and
//! 7. **subscriber fan-out** through the full serving stack: the ingest
//!    stream is driven over TCP through the readiness reactor while ~1k
//!    subscriber connections (spread across every user) receive their
//!    `EVENT` delta streams. The clock covers ingestion *and* delivery —
//!    it stops only once every subscriber has drained its events behind a
//!    `HEALTH` barrier — so the per-arrival delta diff, the per-mode
//!    render cache, and the outbox writes are all on the measured path,
//!    and
//! 8. the **durability tax and recovery time**: the plain ingest stream
//!    runs with a write-ahead log attached under the group-commit policy
//!    (`--wal-sync=batch`) and detached, interleaved like phase 6, and the
//!    `--check` gate requires the WAL-on throughput to stay within
//!    `max_wal_overhead` (15%) of WAL-off. The WAL directory the last
//!    on-round leaves behind is then recovered — genesis snapshot plus a
//!    full log-tail replay, the worst case for this stream — and the
//!    wall-clock recovery time must stay under the baseline's
//!    `max_recovery_ms` ceiling, and
//! 9. **population scale**: 100,000 users are registered one by one from a
//!    512-prototype Zipf preference pool (the shared-preference premise of
//!    Sec. 4 at scale), measuring registration build time, the interner's
//!    bytes-per-user footprint, churn throughput on the big population,
//!    and — via two direct `cluster_users` probes at a fixed user count —
//!    that clustering build time scales with the *distinct-preference*
//!    count, not the population. Set `PM_SCALE_USERS=1000000` for the 1M
//!    run on capable hosts; the chosen population is always logged and
//!    written to the report, never silently capped. This phase writes its
//!    own report (`BENCH_9.json` by default), and
//! 10. **cluster scale-out** through the multi-node serving stack: a
//!     3-node in-process cluster (real TCP nodes behind a `pm-coord`
//!     front-end, the `pm_coord::harness` topology) ingests the replicated
//!     object stream through the coordinator's wire `INGEST` verb, against
//!     a 1-node cluster running the identical workload through the same
//!     front-end. Replication is write-all with a pipelined barrier, so
//!     the nodes absorb each batch in parallel and the coordinator's own
//!     cost — fan-out writes, the extra replies, the rollup merge — is
//!     the scale-out tax under test. The `--check` gate requires the
//!     cluster's *per-replica* ingest efficiency (aggregate applied-object
//!     rate over the 1-node rate, which is core-count independent — every
//!     node applies every object) to stay at or above
//!     `min_cluster_ingest_ratio` (0.8); the raw 3-node-vs-1-node stream
//!     ratio is reported alongside and reads as parity on hosts with
//!     enough cores to run the replicas in parallel. This phase writes its
//!     own report (`BENCH_10.json` by default).
//!
//! Results are printed as one line per metric and written to a JSON report
//! (`BENCH_8.json` by default; phases 9 and 10 additionally write
//! `BENCH_9.json` / `BENCH_10.json`). With `--check <baseline.json>` the
//! run fails (exit 1) when a throughput metric regresses more than 30%
//! against the checked-in baseline, when the compiled dominance path is
//! less than 2x the hash-map path, when compaction retains too much, when
//! the instrumentation, durability or recovery overheads exceed their
//! ceilings, when the scale phase blows its registration-time or
//! bytes-per-user ceiling, or when the cluster phase falls under its
//! scale-out ratio floor — this is the `perf-smoke` CI gate.
//!
//! `--phases <list>` (e.g. `--phases 1,2,9`) runs a subset; every phase
//! not in the list is logged as SKIPPED (nothing is capped silently) and
//! its gates are skipped with an explicit message. Phases that compare
//! against another phase's figures auto-enable their dependency (see
//! [`PHASE_DEPS`]), each with an explicit log line.
//!
//! ```text
//! perf_smoke [--out BENCH_8.json] [--scale-out BENCH_9.json]
//!            [--cluster-out BENCH_10.json]
//!            [--check bench-baseline.json] [--phases 1,2,...]
//! ```

use std::collections::BTreeSet;
use std::time::Instant;

use pm_bench::setup::{cluster_dataset, generate_dataset};
use pm_bench::workload::{object_pair_indices, value_pair, WORKLOAD_PREFS};
use pm_bench::Scale;
use pm_cluster::ExactMeasure;
use pm_coord::{spawn_coordinator, spawn_node, ClusterConfig, NodeSpec, TextClient, Topology};
use pm_datagen::{Dataset, DatasetProfile, ZipfSampler};
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::{Object, UserId};
use pm_porder::{CompiledPreference, Preference};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Comparisons per dominance measurement.
const DOMINANCE_OPS: usize = 2_000_000;
/// Stream length for the end-to-end engine measurement.
const ENGINE_OBJECTS: usize = 6_000;
/// Ingestion batch size.
const ENGINE_BATCH: usize = 256;
/// The engine backend under test.
const ENGINE_BACKEND: &str = "ftv:0.4";
/// The compacting-history variant of the engine backend (phase 5).
const ENGINE_BACKEND_COMPACT: &str = "ftv:0.4:compact";
/// Churn phase: one REGISTER/UNREGISTER pair per this many objects (10%).
const CHURN_PERIOD: usize = 10;
/// How many registrations stay live before being unregistered again.
const CHURN_LAG: u32 = 8;
/// Regression tolerance of the `--check` gate.
const MAX_REGRESSION: f64 = 0.30;
/// Required compiled-vs-hash dominance speedup.
const MIN_SPEEDUP: f64 = 2.0;
/// Stream length of one instrumentation-overhead round (phase 6). Shorter
/// than [`ENGINE_OBJECTS`]: the phase runs `2 *`[`OVERHEAD_ROUNDS`] times.
const OVERHEAD_OBJECTS: usize = 3_000;
/// Interleaved (off, on) round pairs of the overhead phase; each mode keeps
/// its best round, so thermal/scheduler drift hits both modes equally.
const OVERHEAD_ROUNDS: usize = 2;
/// Overhead ceiling used when the baseline lacks the key.
const MAX_OVERHEAD: f64 = 0.05;
/// Subscriber connections of the fan-out phase (phase 7). Scaled down if
/// the file-descriptor limit cannot accommodate ~2 fds per connection.
const FANOUT_SUBSCRIBERS: usize = 1_000;
/// Stream length of the fan-out phase: shorter than [`ENGINE_OBJECTS`]
/// because every arrival is also rendered and delivered ~[`FANOUT_SUBSCRIBERS`]
/// / users times.
const FANOUT_OBJECTS: usize = 1_500;
/// Interleaved (off, on) round pairs of the durability phase (phase 8).
const WAL_ROUNDS: usize = 2;
/// WAL-on vs WAL-off throughput-gap ceiling when the baseline lacks the
/// `max_wal_overhead` key.
const MAX_WAL_OVERHEAD: f64 = 0.15;
/// Population of the scale phase (phase 9). Overridable via
/// `PM_SCALE_USERS` (e.g. `1000000` on capable hosts); the scale ceilings
/// of the `--check` gate only apply at this calibrated default.
const SCALE_USERS: usize = 100_000;
/// Distinct preference prototypes the scale population draws from. The
/// paper's shared-preference premise (Sec. 4) at scale: many users, few
/// distinct preferences, Zipf-assigned.
const SCALE_POOL: usize = 512;
/// Zipf exponent of the prototype assignment (mild head-heavy skew).
const SCALE_SKEW: f64 = 1.1;
/// Backend of the scale phase. Baseline serves every distinct fingerprint
/// exactly once per arrival, so it isolates the interner's population
/// independence without a clustering pass over 100k+ users.
const SCALE_BACKEND: &str = "baseline";
/// Stream length of the scale churn measurement. Shorter than
/// [`ENGINE_OBJECTS`]: each arrival fans over ~[`SCALE_POOL`] bucket
/// frontiers instead of the quick-scale population's handful.
const SCALE_OBJECTS: usize = 2_000;
/// Fixed user count of the two clustering probes of phase 9. Held
/// constant while the distinct-preference count varies, so the probe
/// pair shows clustering cost tracking *distinct* preferences.
const SCALE_CLUSTER_USERS: usize = 2_000;
/// Distinct-preference count of the small clustering probe.
const SCALE_CLUSTER_SMALL: usize = 16;
/// Distinct-preference count of the large clustering probe.
const SCALE_CLUSTER_LARGE: usize = 512;
/// Nodes of the scale-out cluster (phase 10); the 1-node comparison run
/// uses the identical coordinator front-end.
const CLUSTER_NODES: usize = 3;
/// Registered users of the cluster phase, hash-partitioned across the
/// nodes by the coordinator.
const CLUSTER_USERS: usize = 24;
/// Stream length of one cluster ingest round. Shorter than
/// [`ENGINE_OBJECTS`]: every batch crosses the wire twice (client to
/// coordinator, coordinator to every node) and runs twice per round pair.
const CLUSTER_OBJECTS: usize = 4_000;
/// Ingest batch of the cluster phase: larger than [`ENGINE_BATCH`] so the
/// per-batch coordinator hop is amortised the way a replication client
/// would batch, keeping the ratio a measure of fan-out, not round trips.
const CLUSTER_BATCH: usize = 512;
/// Interleaved (1-node, 3-node) round pairs; each side keeps its best.
const CLUSTER_ROUNDS: usize = 2;
/// Scale-out floor used when the baseline lacks the
/// `min_cluster_ingest_ratio` key: the cluster's per-replica ingest
/// efficiency must stay within 20% of the 1-node figure (see
/// [`ClusterReport::replication_efficiency`]).
const MIN_CLUSTER_INGEST_RATIO: f64 = 0.8;
/// Attributes per object of the cluster workload (the harness node
/// default).
const CLUSTER_ARITY: usize = 4;
/// Values per attribute of the cluster workload.
const CLUSTER_DOMAIN: usize = 6;

/// Display names, indexed by phase number - 1, used by the `--phases`
/// skip logs so nothing is ever silently omitted.
const PHASE_NAMES: [&str; 10] = [
    "dominance",
    "engine ingest",
    "registration churn",
    "update churn",
    "compacting-history churn",
    "instrumentation overhead",
    "subscriber fan-out",
    "durability & recovery",
    "population scale",
    "cluster scale-out",
];

/// Cross-phase data dependencies: requesting `.0` auto-enables `.1`, with
/// `.2` logged as the reason. Resolved to a fixpoint in `main`, so chains
/// compose and nothing is enabled silently. This replaces ad-hoc
/// `contains`/`insert` special cases: a new dependent phase adds a row
/// here, not a branch there.
const PHASE_DEPS: &[(usize, usize, &str)] = &[(
    5,
    3,
    "phase 5 compares against phase 3's full-history figures",
)];

/// `a / b`, or 0 when the denominator is unset (a skipped phase leaves
/// its inputs zeroed; the report must stay valid JSON — no NaN).
fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

struct Report {
    prefers_hash: f64,
    prefers_compiled: f64,
    dominance_hash: f64,
    dominance_compiled: f64,
    engine_objects_per_sec: f64,
    engine_churn_objects_per_sec: f64,
    engine_update_objects_per_sec: f64,
    engine_compact_churn_objects_per_sec: f64,
    compact_retained_objects: u64,
    compact_full_objects: u64,
    compact_retained_bytes: u64,
    compact_full_bytes: u64,
    engine_metrics_on_objects_per_sec: f64,
    engine_metrics_off_objects_per_sec: f64,
    ingest_latency_p50_us: f64,
    ingest_latency_p95_us: f64,
    ingest_latency_p99_us: f64,
    engine_fanout_objects_per_sec: f64,
    fanout_subscribers: usize,
    fanout_events_delivered: u64,
    engine_wal_ingest_objects_per_sec: f64,
    engine_wal_off_objects_per_sec: f64,
    recovery_ms: f64,
    recovery_replayed: u64,
}

impl Report {
    fn speedup(&self) -> f64 {
        ratio(self.dominance_compiled, self.dominance_hash)
    }

    /// Retained-history memory relative to the full history an unlimited
    /// backend holds over the identical stream. Bytes, not object counts:
    /// value-duplicate collapsing stores each distinct vector once with an
    /// id list, which is most of the win on a stream that repeats vectors —
    /// skyline-union eviction then trims the id lists themselves.
    fn retention_ratio(&self) -> f64 {
        ratio(
            self.compact_retained_bytes as f64,
            self.compact_full_bytes as f64,
        )
    }

    /// Relative throughput cost of the metrics bundle: how much slower the
    /// metrics-on stream ran than the metrics-off stream (0 when it ran at
    /// least as fast — noise can swing either way).
    fn instrumentation_overhead(&self) -> f64 {
        (ratio(
            self.engine_metrics_off_objects_per_sec,
            self.engine_metrics_on_objects_per_sec,
        ) - 1.0)
            .max(0.0)
    }

    /// Relative throughput cost of the attached WAL under group commit:
    /// how much slower the WAL-on stream ran than the WAL-off stream.
    fn wal_overhead(&self) -> f64 {
        (ratio(
            self.engine_wal_off_objects_per_sec,
            self.engine_wal_ingest_objects_per_sec,
        ) - 1.0)
            .max(0.0)
    }

    fn to_json(&self, phases: &BTreeSet<usize>) -> String {
        let phase_list = phases
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\n  \"schema\": \"pm-perf-smoke/v8\",\n  \"profile\": \"movie\",\n  \"seed\": 42,\n  \
             \"phases\": \"{phase_list}\",\n  \
             \"prefers_hash_ops_per_sec\": {:.0},\n  \"prefers_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_hash_ops_per_sec\": {:.0},\n  \"dominance_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_speedup\": {:.3},\n  \"engine_backend\": \"{}\",\n  \
             \"engine_objects\": {},\n  \"engine_objects_per_sec\": {:.0},\n  \
             \"engine_churn_objects_per_sec\": {:.0},\n  \
             \"engine_update_objects_per_sec\": {:.0},\n  \
             \"engine_compact_backend\": \"{}\",\n  \
             \"engine_compact_churn_objects_per_sec\": {:.0},\n  \
             \"compact_retained_objects\": {},\n  \"compact_full_objects\": {},\n  \
             \"compact_retained_bytes\": {},\n  \"compact_full_bytes\": {},\n  \
             \"compact_retention_ratio\": {:.3},\n  \
             \"engine_metrics_on_objects_per_sec\": {:.0},\n  \
             \"engine_metrics_off_objects_per_sec\": {:.0},\n  \
             \"instrumentation_overhead_ratio\": {:.4},\n  \
             \"ingest_latency_p50_us\": {:.1},\n  \
             \"ingest_latency_p95_us\": {:.1},\n  \
             \"ingest_latency_p99_us\": {:.1},\n  \
             \"engine_fanout_objects_per_sec\": {:.0},\n  \
             \"fanout_objects\": {},\n  \
             \"fanout_subscribers\": {},\n  \
             \"fanout_events_delivered\": {},\n  \
             \"engine_wal_ingest_objects_per_sec\": {:.0},\n  \
             \"engine_wal_off_objects_per_sec\": {:.0},\n  \
             \"wal_overhead_ratio\": {:.4},\n  \
             \"recovery_ms\": {:.1},\n  \
             \"recovery_replayed\": {}\n}}\n",
            self.prefers_hash,
            self.prefers_compiled,
            self.dominance_hash,
            self.dominance_compiled,
            self.speedup(),
            ENGINE_BACKEND,
            ENGINE_OBJECTS,
            self.engine_objects_per_sec,
            self.engine_churn_objects_per_sec,
            self.engine_update_objects_per_sec,
            ENGINE_BACKEND_COMPACT,
            self.engine_compact_churn_objects_per_sec,
            self.compact_retained_objects,
            self.compact_full_objects,
            self.compact_retained_bytes,
            self.compact_full_bytes,
            self.retention_ratio(),
            self.engine_metrics_on_objects_per_sec,
            self.engine_metrics_off_objects_per_sec,
            self.instrumentation_overhead(),
            self.ingest_latency_p50_us,
            self.ingest_latency_p95_us,
            self.ingest_latency_p99_us,
            self.engine_fanout_objects_per_sec,
            FANOUT_OBJECTS,
            self.fanout_subscribers,
            self.fanout_events_delivered,
            self.engine_wal_ingest_objects_per_sec,
            self.engine_wal_off_objects_per_sec,
            self.wal_overhead(),
            self.recovery_ms,
            self.recovery_replayed,
        )
    }
}

/// Times `ops` invocations of `f` (called with a running index), returning
/// ops/sec. A black-boxed accumulator keeps the loop from being optimised
/// away.
fn ops_per_sec<F: FnMut(usize) -> usize>(ops: usize, mut f: F) -> f64 {
    let start = Instant::now();
    let mut acc = 0usize;
    for i in 0..ops {
        acc = acc.wrapping_add(f(i));
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    ops as f64 / elapsed
}

fn measure_dominance(preferences: &[Preference], objects: &[Object]) -> (f64, f64, f64, f64) {
    let hash: Vec<&Preference> = preferences.iter().take(WORKLOAD_PREFS).collect();
    let compiled: Vec<CompiledPreference> = hash.iter().map(|p| p.compile()).collect();
    let pair = |i: usize| {
        let (a, b) = object_pair_indices(i, objects.len());
        (&objects[a], &objects[b])
    };

    // Warm-up passes keep first-touch cache misses out of the timings.
    for i in 0..DOMINANCE_OPS / 10 {
        let (a, b) = pair(i);
        std::hint::black_box(hash[i % hash.len()].compare(a, b));
        std::hint::black_box(compiled[i % compiled.len()].compare(a, b));
    }

    let attr = pm_model::AttrId::new(0);
    let prefers_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = hash[i % hash.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let prefers_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = compiled[i % compiled.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let dominance_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        hash[i % hash.len()].compare(a, b) as usize
    });
    let dominance_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        compiled[i % compiled.len()].compare(a, b) as usize
    });
    (
        prefers_hash,
        prefers_compiled,
        dominance_hash,
        dominance_compiled,
    )
}

fn engine_stream(objects: &[Object]) -> Vec<Object> {
    (0..ENGINE_OBJECTS)
        .map(|i| {
            let base = &objects[i % objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect()
}

fn measure_engine(preferences: Vec<Preference>, objects: &[Object]) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(preferences, &EngineConfig::new(1), &spec);
    let stream = engine_stream(objects);
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        let arrivals = engine.process_batch(chunk.to_vec());
        processed += arrivals.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    processed as f64 / elapsed
}

/// The same stream with 10% registration churn on `backend`: after every
/// [`CHURN_PERIOD`] objects, one new user registers (preferences cycled
/// from the dataset, sparse ids above the base population) and the user
/// registered [`CHURN_LAG`] rounds earlier unregisters, so the population
/// stays near its base size while the dynamic path — cluster join/repair
/// plus frontier backfill over the retained history — runs continuously.
/// Returns the throughput plus the engine's final work counters (which
/// carry the retained-history gauges). One function serves both the plain
/// and the compacting phase so the two stay the *identical* workload the
/// retention-ratio gate compares.
fn run_churn_workload(dataset: &Dataset, backend: &str) -> (f64, pm_core::MonitorStats) {
    let spec = BackendSpec::parse(backend).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    let stream = engine_stream(&dataset.objects);
    let base = dataset.num_users() as u32;
    let churn_per_batch = ENGINE_BATCH / CHURN_PERIOD;
    let start = Instant::now();
    let mut processed = 0usize;
    let mut next_user = base;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += engine.process_batch(chunk.to_vec()).len();
        for _ in 0..churn_per_batch {
            let pref = dataset.preferences[(next_user as usize) % dataset.num_users()].clone();
            engine
                .register(UserId::new(1_000_000 + next_user), pref)
                .expect("register");
            if next_user >= base + CHURN_LAG {
                engine
                    .unregister(UserId::new(1_000_000 + next_user - CHURN_LAG))
                    .expect("unregister");
            }
            next_user += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    assert_eq!(
        engine.num_users(),
        dataset.num_users() + CHURN_LAG as usize,
        "churn must keep the population bounded"
    );
    (processed as f64 / elapsed, engine.stats())
}

/// The same stream with 10% **update churn**: after every [`CHURN_PERIOD`]
/// objects one live user's preference is replaced in place (preferences
/// cycled from the dataset, so most updates genuinely change the compiled
/// relations and exercise the cluster diff), while ids and the population
/// size never move. This times the in-place path the UPDATE verb serves:
/// one cluster re-AND-fold or local repair plus one frontier replay —
/// versus the two repairs and swap-remove renumbering of
/// UNREGISTER+REGISTER measured by [`run_churn_workload`].
fn measure_engine_update_churn(dataset: &Dataset) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    let stream = engine_stream(&dataset.objects);
    let base = dataset.num_users();
    let churn_per_batch = ENGINE_BATCH / CHURN_PERIOD;
    let start = Instant::now();
    let mut processed = 0usize;
    let mut round = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        for _ in 0..churn_per_batch {
            let user = UserId::from(round % base);
            let pref = dataset.preferences[(round + 13) % base].clone();
            engine.update(user, pref).expect("update");
            round += 1;
        }
        processed += engine.process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    assert_eq!(
        engine.num_users(),
        base,
        "update churn must not change the population"
    );
    processed as f64 / elapsed
}

/// One metrics-on or metrics-off run of the plain ingest stream (phase 6):
/// returns throughput and the final engine snapshot, whose ingest-latency
/// percentiles are nonzero only when the metrics bundle is on.
fn timed_plain_stream(dataset: &Dataset, metrics: bool) -> (f64, pm_engine::EngineSnapshot) {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let config = EngineConfig::new(1).with_metrics(metrics);
    let engine = ShardedEngine::new(dataset.preferences.clone(), &config, &spec);
    let stream: Vec<Object> = (0..OVERHEAD_OBJECTS)
        .map(|i| {
            let base = &dataset.objects[i % dataset.objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect();
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += engine.process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        processed, OVERHEAD_OBJECTS,
        "every object must be processed"
    );
    (processed as f64 / elapsed, engine.snapshot())
}

/// Phase 6: interleaved (off, on) rounds of the plain stream; each mode
/// keeps its best round so drift hits both equally. Returns
/// `(best_on, best_off, p50_us, p95_us, p99_us)`, the percentiles taken
/// from the best metrics-on round.
fn measure_instrumentation_overhead(dataset: &Dataset) -> (f64, f64, f64, f64, f64) {
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let (mut p50, mut p95, mut p99) = (0.0, 0.0, 0.0);
    for _ in 0..OVERHEAD_ROUNDS {
        let (off, _) = timed_plain_stream(dataset, false);
        best_off = best_off.max(off);
        let (on, snapshot) = timed_plain_stream(dataset, true);
        if on > best_on {
            best_on = on;
            p50 = snapshot.ingest_p50_us;
            p95 = snapshot.ingest_p95_us;
            p99 = snapshot.ingest_p99_us;
        }
    }
    (best_on, best_off, p50, p95, p99)
}

/// Phase 7: the serving stack under subscriber fan-out. One control
/// connection drives [`FANOUT_OBJECTS`] objects through the wire `INGEST`
/// verb of a reactor-served engine while subscriber connections — spread
/// round-robin over every user — hold live `SUBSCRIBE` streams. The clock
/// runs from the first ingest write until every subscriber has drained its
/// `EVENT` backlog behind a pipelined `HEALTH` barrier (per-connection
/// outboxes are FIFO), so delta diffing, rendering, and delivery are all
/// inside the measurement. Returns `(objects_per_sec, subscribers,
/// events_delivered)`.
fn measure_subscriber_fanout(dataset: &Dataset) -> (f64, usize, u64) {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    // Each subscriber costs two descriptors in this one process (client
    // and server end); raise the soft limit and scale down if refused.
    let limit = pm_reactor::raise_nofile_limit(8_192).unwrap_or(1_024);
    let subscribers = FANOUT_SUBSCRIBERS.min((limit.saturating_sub(300) / 2) as usize);

    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    // Slow-op warnings are disabled: a bench batch is *supposed* to be
    // saturated, and the log writes would perturb the measurement.
    let service = Arc::new(
        pm_engine::EngineService::new(engine, spec, dataset.dimensions(), 16).with_slow_op(None),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    // The bench measures throughput, not the eviction policy: a roomy
    // outbox bound keeps slow-reader eviction out of the picture.
    let config = pm_engine::ReactorConfig {
        max_outbox: 32 << 20,
        ..pm_engine::ReactorConfig::default()
    };
    std::thread::spawn(move || pm_engine::serve_with(listener, service, config));

    let connect = |request: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.write_all(request.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        assert!(line.starts_with("OK "), "unexpected reply: {line}");
        (stream, reader)
    };
    let (mut control, mut control_reader) = connect("HEALTH\n");
    let users = dataset.num_users();
    let mut subs: Vec<(TcpStream, BufReader<TcpStream>)> = (0..subscribers)
        .map(|i| connect(&format!("SUBSCRIBE {}\n", i % users)))
        .collect();

    // The wire form of the same recycled object stream the other engine
    // phases ingest (ids are assigned server-side in arrival order).
    let rows: Vec<String> = (0..FANOUT_OBJECTS)
        .map(|i| {
            let base = &dataset.objects[i % dataset.objects.len()];
            base.values()
                .iter()
                .map(|v| v.raw().to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();

    let start = Instant::now();
    let mut line = String::new();
    for chunk in rows.chunks(ENGINE_BATCH) {
        control
            .write_all(format!("INGEST {}\n", chunk.join(";")).as_bytes())
            .expect("ingest");
        line.clear();
        control_reader.read_line(&mut line).expect("ingest reply");
        assert!(line.starts_with("OK INGESTED"), "unexpected reply: {line}");
    }
    // Barrier: every subscriber answers HEALTH only after its event
    // backlog; writes first so the drains overlap server-side.
    for (stream, _) in &mut subs {
        stream.write_all(b"HEALTH\n").expect("barrier");
    }
    let mut events = 0u64;
    for (_, reader) in &mut subs {
        loop {
            line.clear();
            reader.read_line(&mut line).expect("drain");
            if line.starts_with("OK HEALTH") {
                break;
            }
            assert!(line.starts_with("EVENT "), "unexpected line: {line}");
            events += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(events > 0, "fan-out must deliver events");
    (FANOUT_OBJECTS as f64 / elapsed, subscribers, events)
}

/// One WAL-attached run of the plain ingest stream: builds the service
/// through `recover_or_create` on a fresh directory (which attaches the
/// log under `--wal-sync=batch` semantics) and times the identical stream
/// the WAL-off rounds process. Every batch is appended to the log inside
/// the shard-dispatch critical section, so the measured gap is the full
/// durability tax: encoding, the page-cache write, and the group-commit
/// fsyncs.
fn timed_wal_stream(dataset: &Dataset, dir: &std::path::Path) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let durability = pm_engine::DurabilityConfig {
        dir: dir.to_path_buf(),
        sync: pm_wal::SyncPolicy::Batch,
        snapshot_every: 0,
    };
    let (service, report) = pm_engine::durability::recover_or_create(
        dataset.preferences.clone(),
        &EngineConfig::new(1),
        &spec,
        dataset.dimensions(),
        16,
        &durability,
    )
    .expect("open WAL dir");
    assert!(
        report.is_none(),
        "the WAL round must start from a fresh dir"
    );
    let stream = engine_stream(&dataset.objects);
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += service.engine().process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    processed as f64 / elapsed
}

/// Phase 8: interleaved (off, on) rounds of the plain stream — WAL-off
/// rounds run the bare engine, WAL-on rounds append every ingest batch to
/// a fresh log under group commit; each mode keeps its best round. The
/// directory the last on-round leaves behind (genesis snapshot + the full
/// ingest tail) is then recovered and timed. Returns
/// `(best_on, best_off, recovery_ms, recovery_replayed)`.
fn measure_durability(dataset: &Dataset) -> (f64, f64, f64, u64) {
    let dir = std::env::temp_dir().join(format!("pm-perf-smoke-wal-{}", std::process::id()));
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..WAL_ROUNDS {
        let off = measure_engine(dataset.preferences.clone(), &dataset.objects);
        best_off = best_off.max(off);
        let _ = std::fs::remove_dir_all(&dir);
        best_on = best_on.max(timed_wal_stream(dataset, &dir));
    }

    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let durability = pm_engine::DurabilityConfig {
        dir: dir.clone(),
        sync: pm_wal::SyncPolicy::Batch,
        snapshot_every: 0,
    };
    let (_service, report) = pm_engine::durability::recover_or_create(
        dataset.preferences.clone(),
        &EngineConfig::new(1),
        &spec,
        dataset.dimensions(),
        16,
        &durability,
    )
    .expect("recover WAL dir");
    let report = report.expect("an ingested WAL dir must produce a recovery report");
    let _ = std::fs::remove_dir_all(&dir);
    (
        best_on,
        best_off,
        report.elapsed.as_secs_f64() * 1_000.0,
        report.replayed,
    )
}

/// Phase 9 measurements, written to their own report (`BENCH_9.json`).
struct ScaleReport {
    /// Registered population; [`SCALE_USERS`] unless `PM_SCALE_USERS`
    /// overrode it (always logged and recorded — never silently capped).
    users: usize,
    /// Wall-clock time of registering the whole population.
    register_ms: f64,
    /// Distinct fingerprints the interner holds after registration.
    distinct_preferences: u64,
    /// Estimated preference bytes across the whole population.
    preference_bytes: u64,
    /// Ingest throughput with 10% registration churn on the big population.
    churn_objects_per_sec: f64,
    /// Wall-clock of `cluster_users` over [`SCALE_CLUSTER_USERS`] users
    /// drawn from [`SCALE_CLUSTER_SMALL`] distinct preferences.
    cluster_small_ms: f64,
    /// Same population size, [`SCALE_CLUSTER_LARGE`] distinct preferences.
    cluster_large_ms: f64,
}

impl ScaleReport {
    /// Estimated preference bytes per registered user — the headline
    /// number of the interning refactor: it *falls* as the population
    /// grows, because distinct preferences are stored once.
    fn bytes_per_user(&self) -> f64 {
        ratio(self.preference_bytes as f64, self.users as f64)
    }

    /// Clustering-time ratio of the large probe over the small one at the
    /// identical user count: > 1 shows the build cost tracking the
    /// distinct-preference count, not the population.
    fn cluster_scaling_ratio(&self) -> f64 {
        ratio(self.cluster_large_ms, self.cluster_small_ms)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"pm-scale-smoke/v1\",\n  \"profile\": \"movie\",\n  \"seed\": 42,\n  \
             \"scale_backend\": \"{}\",\n  \
             \"scale_users\": {},\n  \"scale_pool\": {},\n  \
             \"scale_register_ms\": {:.1},\n  \
             \"scale_distinct_preferences\": {},\n  \
             \"scale_preference_bytes\": {},\n  \
             \"scale_bytes_per_user\": {:.1},\n  \
             \"scale_churn_objects_per_sec\": {:.0},\n  \
             \"cluster_probe_users\": {},\n  \
             \"cluster_small_distinct\": {},\n  \"cluster_small_ms\": {:.1},\n  \
             \"cluster_large_distinct\": {},\n  \"cluster_large_ms\": {:.1},\n  \
             \"cluster_scaling_ratio\": {:.2}\n}}\n",
            SCALE_BACKEND,
            self.users,
            SCALE_POOL,
            self.register_ms,
            self.distinct_preferences,
            self.preference_bytes,
            self.bytes_per_user(),
            self.churn_objects_per_sec,
            SCALE_CLUSTER_USERS,
            SCALE_CLUSTER_SMALL,
            self.cluster_small_ms,
            SCALE_CLUSTER_LARGE,
            self.cluster_large_ms,
            self.cluster_scaling_ratio(),
        )
    }
}

/// Phase 9: the interning refactor at population scale. Registers
/// [`SCALE_USERS`] users (or `PM_SCALE_USERS`) one at a time — never
/// materialising the population's preferences up front, which at ~25KB per
/// distinct preference would cost gigabytes — from a [`SCALE_POOL`]-
/// prototype pool under a Zipf assignment, then measures churn throughput
/// on the big population and runs the two fixed-population clustering
/// probes that show build time tracking the distinct-preference count.
fn measure_scale() -> ScaleReport {
    let users = match std::env::var("PM_SCALE_USERS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0 && n <= 16_000_000)
            .unwrap_or_else(|| panic!("PM_SCALE_USERS must be in 1..=16000000, got `{v}`")),
        Err(_) => SCALE_USERS,
    };
    println!(
        "scale population:    {users} users, {SCALE_POOL} prototypes, zipf {SCALE_SKEW} \
         (PM_SCALE_USERS=1000000 for the 1M run)"
    );

    // The prototype pool is itself a generated dataset: its users' derived
    // preferences become the pool, its objects feed the churn stream.
    let pool_profile = DatasetProfile::movie()
        .with_users(SCALE_POOL)
        .with_objects(1_200)
        .with_interactions(60);
    let pool = Dataset::generate(&pool_profile, 42);
    let sampler = ZipfSampler::new(SCALE_POOL, SCALE_SKEW);
    let mut rng = StdRng::seed_from_u64(42);

    let spec = BackendSpec::parse(SCALE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(Vec::new(), &EngineConfig::new(1), &spec);
    let start = Instant::now();
    for i in 0..users {
        let proto = sampler.sample(&mut rng);
        engine
            .register(UserId::new(i as u32), pool.preferences[proto].clone())
            .expect("register");
    }
    let register_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(engine.num_users(), users, "every user must be registered");
    let (distinct_preferences, preference_bytes) = engine.preference_footprint();
    assert!(
        distinct_preferences <= SCALE_POOL as u64,
        "the interner must collapse the population onto the prototype pool"
    );

    // The standard churn mix (one REGISTER+UNREGISTER pair per
    // [`CHURN_PERIOD`] objects) on the big population: each arrival is
    // served per distinct fingerprint, not per user, which is what makes
    // this population size tractable at all.
    let stream: Vec<Object> = (0..SCALE_OBJECTS)
        .map(|i| {
            let base = &pool.objects[i % pool.objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect();
    let churn_per_batch = ENGINE_BATCH / CHURN_PERIOD;
    let mut next = 0u32;
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += engine.process_batch(chunk.to_vec()).len();
        for _ in 0..churn_per_batch {
            let pref = pool.preferences[(next as usize) % SCALE_POOL].clone();
            engine
                .register(UserId::new(users as u32 + next), pref)
                .expect("register");
            if next >= CHURN_LAG {
                engine
                    .unregister(UserId::new(users as u32 + next - CHURN_LAG))
                    .expect("unregister");
            }
            next += 1;
        }
    }
    let churn_objects_per_sec = processed as f64 / start.elapsed().as_secs_f64();
    assert_eq!(processed, SCALE_OBJECTS, "every object must be processed");
    drop(engine);

    // Clustering probes: the user count is pinned while the distinct-
    // preference count varies 16x, so the timing pair isolates what the
    // agglomerative build actually scales with after the fingerprint
    // bucketing — the number of *distinct* preferences.
    let probe = |distinct: usize| {
        let profile = DatasetProfile::movie()
            .with_users(SCALE_CLUSTER_USERS)
            .with_objects(1_200)
            .with_interactions(60)
            .with_distinct_preferences(distinct, SCALE_SKEW);
        let data = Dataset::generate(&profile, 42);
        let start = Instant::now();
        let (_, summary) = cluster_dataset(&data, ExactMeasure::Jaccard, 0.4);
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(summary.users, SCALE_CLUSTER_USERS);
        ms
    };
    let cluster_small_ms = probe(SCALE_CLUSTER_SMALL);
    let cluster_large_ms = probe(SCALE_CLUSTER_LARGE);

    ScaleReport {
        users,
        register_ms,
        distinct_preferences,
        preference_bytes,
        churn_objects_per_sec,
        cluster_small_ms,
        cluster_large_ms,
    }
}

/// Phase 10 measurements, written to their own report (`BENCH_10.json`).
struct ClusterReport {
    /// Nodes of the scaled-out run ([`CLUSTER_NODES`]).
    nodes: usize,
    /// Ingest throughput of the [`CLUSTER_NODES`]-node cluster through the
    /// coordinator's wire `INGEST` verb (replicated write-all, pipelined
    /// barrier).
    cluster_ingest_objects_per_sec: f64,
    /// The identical workload on a 1-node cluster behind the identical
    /// coordinator front-end — the scale-out ratio's denominator, so the
    /// constant front-end cost cancels out of the gated figure.
    single_node_ingest_objects_per_sec: f64,
}

impl ClusterReport {
    /// Raw 3-node over 1-node stream throughput. Machine-dependent: every
    /// node ingests every object, so on hosts with at least
    /// [`CLUSTER_NODES`] cores the replicas absorb the fan-out in parallel
    /// and this sits near 1.0, while a single-core host serializes N
    /// engines' work and caps it near `1/N`. Reported, not gated.
    fn ingest_ratio(&self) -> f64 {
        ratio(
            self.cluster_ingest_objects_per_sec,
            self.single_node_ingest_objects_per_sec,
        )
    }

    /// Per-replica ingest efficiency, the gated figure: the cluster's
    /// aggregate object-application rate (`nodes ×` stream throughput —
    /// each replicated object is applied on every node) over the 1-node
    /// rate. Unlike the raw ratio this is core-count independent: parallel
    /// replicas push it above 1, and even fully serialized replicas hold
    /// it near 1 unless the coordinator itself (fan-out writes, barrier
    /// replies, rollup merges) eats the difference — which is exactly the
    /// regression the `min_cluster_ingest_ratio` floor catches.
    fn replication_efficiency(&self) -> f64 {
        ratio(
            self.nodes as f64 * self.cluster_ingest_objects_per_sec,
            self.single_node_ingest_objects_per_sec,
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"pm-cluster-smoke/v1\",\n  \"seed\": 42,\n  \
             \"cluster_backend\": \"{ENGINE_BACKEND}\",\n  \
             \"cluster_nodes\": {},\n  \"cluster_users\": {CLUSTER_USERS},\n  \
             \"cluster_objects\": {CLUSTER_OBJECTS},\n  \
             \"cluster_batch\": {CLUSTER_BATCH},\n  \
             \"cluster_ingest_objects_per_sec\": {:.0},\n  \
             \"single_node_ingest_objects_per_sec\": {:.0},\n  \
             \"cluster_ingest_ratio\": {:.3},\n  \
             \"cluster_replication_efficiency\": {:.3}\n}}\n",
            self.nodes,
            self.cluster_ingest_objects_per_sec,
            self.single_node_ingest_objects_per_sec,
            self.ingest_ratio(),
            self.replication_efficiency(),
        )
    }
}

/// A chain preference over the phase-10 domain: attribute `a` prefers
/// `v+1` over `v` for every value except one user-dependent skipped rank,
/// so each of the [`CLUSTER_USERS`] frontiers genuinely differs and the
/// nodes do real per-user work on every arrival.
fn cluster_preference(user: usize) -> String {
    (0..CLUSTER_ARITY)
        .map(|attr| {
            let skip = (user + attr) % (CLUSTER_DOMAIN - 1);
            (0..CLUSTER_DOMAIN - 1)
                .filter(|&v| v != skip)
                .map(|v| format!("{}>{}", v + 1, v))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// `count` wire-format object rows starting at stream position `start`,
/// deterministic in the position so the 1-node and 3-node runs ingest the
/// byte-identical stream.
fn cluster_rows(start: usize, count: usize) -> String {
    (start..start + count)
        .map(|i| {
            (0..CLUSTER_ARITY)
                .map(|attr| ((i * (attr + 3) + attr) % CLUSTER_DOMAIN).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// One cluster ingest round: spawns `nodes` single-shard engine nodes and
/// a coordinator on loopback, registers the population through the wire
/// verb, then clocks [`CLUSTER_OBJECTS`] objects through replicated
/// `INGEST` — each batch returns only after every node has applied it, so
/// the replication barrier is inside the measurement. The cluster `STATS`
/// rollup is checked afterwards: every object must have reached every
/// node.
fn timed_cluster_ingest(nodes: usize) -> f64 {
    let mut spec = NodeSpec::new(
        BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec"),
        1,
    );
    // A saturated bench batch is supposed to be slow; the warning's log
    // writes would perturb the measurement (as in the fan-out phase).
    spec.slow_op = None;
    let handles: Vec<_> = (0..nodes)
        .map(|_| spawn_node(&spec).expect("spawn node"))
        .collect();
    let topology = Topology::new(handles.iter().map(|h| h.addr().to_owned()).collect())
        .expect("loopback topology");
    let coordinator =
        spawn_coordinator(&topology, ClusterConfig::default()).expect("spawn coordinator");
    let mut client = TextClient::connect(coordinator.addr()).expect("connect to coordinator");

    for user in 0..CLUSTER_USERS {
        let reply = client
            .ask(&format!("REGISTER {user} {}", cluster_preference(user)))
            .expect("register");
        assert!(
            reply.starts_with("OK REGISTERED"),
            "unexpected reply: {reply}"
        );
    }

    let start = Instant::now();
    let mut sent = 0usize;
    while sent < CLUSTER_OBJECTS {
        let batch = CLUSTER_BATCH.min(CLUSTER_OBJECTS - sent);
        let reply = client
            .ask(&format!("INGEST {}", cluster_rows(sent, batch)))
            .expect("ingest");
        assert!(
            reply.starts_with("OK INGESTED"),
            "unexpected reply: {reply}"
        );
        sent += batch;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let stats = client.ask("STATS").expect("stats");
    assert!(
        stats.starts_with("OK STATS cluster")
            && stats.contains(&format!(" ingested={CLUSTER_OBJECTS} ")),
        "cluster rollup must show the full replicated stream: {stats}"
    );
    drop(client);
    coordinator.kill();
    for handle in handles {
        handle.kill();
    }
    CLUSTER_OBJECTS as f64 / elapsed
}

/// Phase 10: interleaved (1-node, [`CLUSTER_NODES`]-node) rounds of the
/// identical replicated workload; each side keeps its best round so drift
/// hits both equally, like the other paired phases.
fn measure_cluster_scale_out() -> ClusterReport {
    let mut best_single = 0.0f64;
    let mut best_cluster = 0.0f64;
    for _ in 0..CLUSTER_ROUNDS {
        best_single = best_single.max(timed_cluster_ingest(1));
        best_cluster = best_cluster.max(timed_cluster_ingest(CLUSTER_NODES));
    }
    ClusterReport {
        nodes: CLUSTER_NODES,
        cluster_ingest_objects_per_sec: best_cluster,
        single_node_ingest_objects_per_sec: best_single,
    }
}

/// Minimal parser for the flat JSON this harness itself writes: returns the
/// numeric fields as (key, value) pairs.
fn parse_flat_json_numbers(text: &str) -> Vec<(String, f64)> {
    let mut fields = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(number) = value.trim().parse::<f64>() {
            fields.push((key.to_owned(), number));
        }
    }
    fields
}

/// Checks the run against the checked-in baseline. Gates whose phase was
/// not run are skipped with an explicit line — a filtered run can never
/// silently pass a gate its phases didn't exercise.
fn check_against_baseline(
    report: &Report,
    scale: Option<&ScaleReport>,
    cluster: Option<&ClusterReport>,
    phases: &BTreeSet<usize>,
    baseline_path: &str,
) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("cannot read baseline {baseline_path}: {e}")]),
    };
    let baseline = parse_flat_json_numbers(&text);
    let lookup = |key: &str| baseline.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut failures = Vec::new();
    let skipped = |key: &str, phase: usize| {
        println!(
            "gate skipped: {key} (phase {phase}, {}, not run)",
            PHASE_NAMES[phase - 1]
        );
    };

    let gates = [
        (
            1,
            "dominance_compiled_ops_per_sec",
            report.dominance_compiled,
        ),
        (2, "engine_objects_per_sec", report.engine_objects_per_sec),
        (
            3,
            "engine_churn_objects_per_sec",
            report.engine_churn_objects_per_sec,
        ),
        (
            4,
            "engine_update_objects_per_sec",
            report.engine_update_objects_per_sec,
        ),
        (
            5,
            "engine_compact_churn_objects_per_sec",
            report.engine_compact_churn_objects_per_sec,
        ),
        (
            7,
            "engine_fanout_objects_per_sec",
            report.engine_fanout_objects_per_sec,
        ),
        (
            8,
            "engine_wal_ingest_objects_per_sec",
            report.engine_wal_ingest_objects_per_sec,
        ),
    ];
    for (phase, key, current) in gates {
        if !phases.contains(&phase) {
            skipped(key, phase);
            continue;
        }
        let Some(expected) = lookup(key) else {
            failures.push(format!("baseline is missing `{key}`"));
            continue;
        };
        let floor = expected * (1.0 - MAX_REGRESSION);
        if current < floor {
            failures.push(format!(
                "{key} regressed: {current:.0} < {floor:.0} \
                 (baseline {expected:.0}, tolerance {:.0}%)",
                MAX_REGRESSION * 100.0
            ));
        } else {
            println!("gate ok: {key} = {current:.0} (>= {floor:.0})");
        }
    }

    if phases.contains(&1) {
        let min_speedup = lookup("min_dominance_speedup").unwrap_or(MIN_SPEEDUP);
        if report.speedup() < min_speedup {
            failures.push(format!(
                "dominance speedup {:.2}x below required {min_speedup:.2}x",
                report.speedup()
            ));
        } else {
            println!(
                "gate ok: dominance_speedup = {:.2}x (>= {min_speedup:.2}x)",
                report.speedup()
            );
        }
    } else {
        skipped("dominance_speedup", 1);
    }

    // Memory-reduction gate: the compacted retained set must stay under the
    // baseline ratio of the full history on this fixed-seed workload.
    if phases.contains(&5) {
        if let Some(max_ratio) = lookup("max_compact_retention_ratio") {
            if report.retention_ratio() > max_ratio {
                failures.push(format!(
                    "compaction retained {} of {} history bytes ({:.1}%), above \
                     the {:.1}% ceiling",
                    report.compact_retained_bytes,
                    report.compact_full_bytes,
                    report.retention_ratio() * 100.0,
                    max_ratio * 100.0
                ));
            } else {
                println!(
                    "gate ok: compact_retention_ratio = {:.3} (<= {max_ratio:.3})",
                    report.retention_ratio()
                );
            }
        } else {
            failures.push("baseline is missing `max_compact_retention_ratio`".to_owned());
        }
    } else {
        skipped("max_compact_retention_ratio", 5);
    }

    // Instrumentation-overhead gate: the metrics bundle must stay within
    // its documented throughput cost on the identical interleaved stream.
    if phases.contains(&6) {
        let max_overhead = lookup("max_instrumentation_overhead").unwrap_or(MAX_OVERHEAD);
        if report.instrumentation_overhead() > max_overhead {
            failures.push(format!(
                "instrumentation overhead {:.1}% above the {:.1}% ceiling \
                 (metrics on {:.0} vs off {:.0} objects/sec)",
                report.instrumentation_overhead() * 100.0,
                max_overhead * 100.0,
                report.engine_metrics_on_objects_per_sec,
                report.engine_metrics_off_objects_per_sec,
            ));
        } else {
            println!(
                "gate ok: instrumentation_overhead = {:.1}% (<= {:.1}%)",
                report.instrumentation_overhead() * 100.0,
                max_overhead * 100.0
            );
        }
    } else {
        skipped("max_instrumentation_overhead", 6);
    }

    if phases.contains(&8) {
        // Durability-tax gate: the attached WAL under group commit must
        // stay within its documented throughput cost on the identical
        // stream.
        let max_wal_overhead = lookup("max_wal_overhead").unwrap_or(MAX_WAL_OVERHEAD);
        if report.wal_overhead() > max_wal_overhead {
            failures.push(format!(
                "WAL overhead {:.1}% above the {:.1}% ceiling \
                 (WAL on {:.0} vs off {:.0} objects/sec)",
                report.wal_overhead() * 100.0,
                max_wal_overhead * 100.0,
                report.engine_wal_ingest_objects_per_sec,
                report.engine_wal_off_objects_per_sec,
            ));
        } else {
            println!(
                "gate ok: wal_overhead = {:.1}% (<= {:.1}%)",
                report.wal_overhead() * 100.0,
                max_wal_overhead * 100.0
            );
        }

        // Recovery-time gate: genesis snapshot + full log-tail replay of
        // this fixed stream must finish under the baseline ceiling.
        if let Some(max_recovery_ms) = lookup("max_recovery_ms") {
            if report.recovery_ms > max_recovery_ms {
                failures.push(format!(
                    "recovery took {:.1} ms ({} records replayed), above the \
                     {max_recovery_ms:.0} ms ceiling",
                    report.recovery_ms, report.recovery_replayed
                ));
            } else {
                println!(
                    "gate ok: recovery_ms = {:.1} (<= {max_recovery_ms:.0})",
                    report.recovery_ms
                );
            }
        } else {
            failures.push("baseline is missing `max_recovery_ms`".to_owned());
        }
    } else {
        skipped("max_wal_overhead", 8);
        skipped("max_recovery_ms", 8);
    }

    // Scale gates: the 100k-user registration must finish under the build
    // ceiling and the interner must hold bytes-per-user down. Calibrated
    // at the default population only — a PM_SCALE_USERS override changes
    // what the numbers mean, so the ceilings are skipped (loudly).
    match scale {
        Some(scale) if scale.users == SCALE_USERS => {
            if let Some(max_register_ms) = lookup("max_scale_register_ms") {
                if scale.register_ms > max_register_ms {
                    failures.push(format!(
                        "scale registration took {:.0} ms for {} users, above the \
                         {max_register_ms:.0} ms ceiling",
                        scale.register_ms, scale.users
                    ));
                } else {
                    println!(
                        "gate ok: scale_register_ms = {:.0} (<= {max_register_ms:.0})",
                        scale.register_ms
                    );
                }
            } else {
                failures.push("baseline is missing `max_scale_register_ms`".to_owned());
            }
            if let Some(max_bytes_per_user) = lookup("max_scale_bytes_per_user") {
                if scale.bytes_per_user() > max_bytes_per_user {
                    failures.push(format!(
                        "scale footprint is {:.1} bytes/user ({} distinct preferences, \
                         {} bytes), above the {max_bytes_per_user:.0} bytes/user ceiling",
                        scale.bytes_per_user(),
                        scale.distinct_preferences,
                        scale.preference_bytes
                    ));
                } else {
                    println!(
                        "gate ok: scale_bytes_per_user = {:.1} (<= {max_bytes_per_user:.0})",
                        scale.bytes_per_user()
                    );
                }
            } else {
                failures.push("baseline is missing `max_scale_bytes_per_user`".to_owned());
            }
        }
        Some(scale) => {
            println!(
                "gate skipped: scale ceilings (PM_SCALE_USERS={} differs from the \
                 calibrated {SCALE_USERS})",
                scale.users
            );
        }
        None => {
            skipped("max_scale_register_ms", 9);
            skipped("max_scale_bytes_per_user", 9);
        }
    }

    // Scale-out gate: the cluster's per-replica ingest efficiency (see
    // [`ClusterReport::replication_efficiency`]) must hold 0.8 of the
    // 1-node rate. Same-run, same-stack and core-count independent, so it
    // is hardware-robust the way min_dominance_speedup is; the raw
    // stream-throughput ratio is reported alongside for multi-core hosts,
    // where it reads as straight 3-node-vs-1-node parity.
    match cluster {
        Some(cluster) => {
            let min_ratio = lookup("min_cluster_ingest_ratio").unwrap_or(MIN_CLUSTER_INGEST_RATIO);
            if cluster.replication_efficiency() < min_ratio {
                failures.push(format!(
                    "cluster replication efficiency {:.2} below required {min_ratio:.2} \
                     ({}-node {:.0} vs 1-node {:.0} objects/sec, raw ratio {:.2})",
                    cluster.replication_efficiency(),
                    cluster.nodes,
                    cluster.cluster_ingest_objects_per_sec,
                    cluster.single_node_ingest_objects_per_sec,
                    cluster.ingest_ratio(),
                ));
            } else {
                println!(
                    "gate ok: cluster_replication_efficiency = {:.2} (>= {min_ratio:.2})",
                    cluster.replication_efficiency()
                );
            }
        }
        None => skipped("min_cluster_ingest_ratio", 10),
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Parses the `--phases` list: comma-separated phase numbers in 1..=10.
fn parse_phases(spec: &str) -> Result<BTreeSet<usize>, String> {
    let mut phases = BTreeSet::new();
    for part in spec.split(',') {
        let part = part.trim();
        let n: usize = part
            .parse()
            .map_err(|_| format!("bad phase `{part}` (expected a number in 1..=10)"))?;
        if !(1..=10).contains(&n) {
            return Err(format!("phase {n} out of range 1..=10"));
        }
        phases.insert(n);
    }
    if phases.is_empty() {
        return Err("empty phase list".to_owned());
    }
    Ok(phases)
}

fn main() {
    let mut out_path = "BENCH_8.json".to_owned();
    let mut scale_out_path = "BENCH_9.json".to_owned();
    let mut cluster_out_path = "BENCH_10.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut phases: BTreeSet<usize> = (1..=10).collect();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--scale-out" => scale_out_path = args.next().expect("--scale-out needs a path"),
            "--cluster-out" => {
                cluster_out_path = args.next().expect("--cluster-out needs a path");
            }
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--phases" => {
                let spec = args.next().expect("--phases needs a comma-separated list");
                phases = parse_phases(&spec).unwrap_or_else(|e| {
                    eprintln!("--phases: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (expected --out/--scale-out/--cluster-out/--check/--phases)"
                );
                std::process::exit(2);
            }
        }
    }
    // Resolve cross-phase dependencies to a fixpoint, logging every
    // auto-enable: a filtered run must never silently miss the data a
    // requested phase compares against.
    loop {
        let mut changed = false;
        for &(dependent, dependency, why) in PHASE_DEPS {
            if phases.contains(&dependent) && !phases.contains(&dependency) {
                phases.insert(dependency);
                println!(
                    "phase {dependency} ({}): enabled ({why})",
                    PHASE_NAMES[dependency - 1]
                );
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let enabled = |n: usize| {
        let on = phases.contains(&n);
        if !on {
            println!("phase {n} ({}): SKIPPED (--phases)", PHASE_NAMES[n - 1]);
        }
        on
    };

    println!("perf-smoke: movie profile, seed 42, fixed workload");
    let dataset = generate_dataset(&DatasetProfile::movie(), &Scale::quick());
    println!(
        "dataset: {} users, {} objects, {} attributes",
        dataset.num_users(),
        dataset.num_objects(),
        dataset.dimensions()
    );

    // Skipped phases leave their report fields zeroed; the gate skips the
    // matching checks (loudly), and a zero in the JSON marks "not run".
    let mut report = Report {
        prefers_hash: 0.0,
        prefers_compiled: 0.0,
        dominance_hash: 0.0,
        dominance_compiled: 0.0,
        engine_objects_per_sec: 0.0,
        engine_churn_objects_per_sec: 0.0,
        engine_update_objects_per_sec: 0.0,
        engine_compact_churn_objects_per_sec: 0.0,
        compact_retained_objects: 0,
        compact_full_objects: 0,
        compact_retained_bytes: 0,
        compact_full_bytes: 0,
        engine_metrics_on_objects_per_sec: 0.0,
        engine_metrics_off_objects_per_sec: 0.0,
        ingest_latency_p50_us: 0.0,
        ingest_latency_p95_us: 0.0,
        ingest_latency_p99_us: 0.0,
        engine_fanout_objects_per_sec: 0.0,
        fanout_subscribers: 0,
        fanout_events_delivered: 0,
        engine_wal_ingest_objects_per_sec: 0.0,
        engine_wal_off_objects_per_sec: 0.0,
        recovery_ms: 0.0,
        recovery_replayed: 0,
    };

    if enabled(1) {
        let (prefers_hash, prefers_compiled, dominance_hash, dominance_compiled) =
            measure_dominance(&dataset.preferences, &dataset.objects);
        println!("prefers/hash:        {prefers_hash:>12.0} ops/sec");
        println!("prefers/compiled:    {prefers_compiled:>12.0} ops/sec");
        println!("dominance/hash:      {dominance_hash:>12.0} ops/sec");
        println!("dominance/compiled:  {dominance_compiled:>12.0} ops/sec");
        println!(
            "dominance speedup:   {:>12.2}x (compiled vs hash)",
            dominance_compiled / dominance_hash
        );
        report.prefers_hash = prefers_hash;
        report.prefers_compiled = prefers_compiled;
        report.dominance_hash = dominance_hash;
        report.dominance_compiled = dominance_compiled;
    }

    if enabled(2) {
        report.engine_objects_per_sec =
            measure_engine(dataset.preferences.clone(), &dataset.objects);
        println!(
            "engine ({ENGINE_BACKEND}, 1 shard): {:>12.0} objects/sec",
            report.engine_objects_per_sec
        );
    }

    // The unlimited backend's retained-history bytes double as the "full
    // history" yardstick of the compaction phase (identical stream).
    let mut full_stats: Option<pm_core::MonitorStats> = None;
    if enabled(3) {
        let (engine_churn_objects_per_sec, stats) = run_churn_workload(&dataset, ENGINE_BACKEND);
        println!(
            "engine + 10% churn:  {engine_churn_objects_per_sec:>12.0} objects/sec \
             (1 REGISTER+UNREGISTER per {CHURN_PERIOD} objects)"
        );
        report.engine_churn_objects_per_sec = engine_churn_objects_per_sec;
        full_stats = Some(stats);
    }

    if enabled(4) {
        report.engine_update_objects_per_sec = measure_engine_update_churn(&dataset);
        println!(
            "engine + 10% update: {:>12.0} objects/sec \
             (1 in-place UPDATE per {CHURN_PERIOD} objects)",
            report.engine_update_objects_per_sec
        );
    }

    // Phase 5: the identical churn workload on the compacting-history
    // backend — every REGISTER backfill replays the skyline-union retained
    // set instead of the full stream; churn preferences come from the base
    // population, so backfill stays exact while the history shrinks.
    if enabled(5) {
        let full = full_stats.as_ref().expect("phase 3 runs whenever 5 does");
        let (engine_compact_churn_objects_per_sec, compact_stats) =
            run_churn_workload(&dataset, ENGINE_BACKEND_COMPACT);
        report.engine_compact_churn_objects_per_sec = engine_compact_churn_objects_per_sec;
        report.compact_retained_objects = compact_stats.history_objects;
        report.compact_retained_bytes = compact_stats.history_bytes;
        report.compact_full_objects = full.history_objects;
        report.compact_full_bytes = full.history_bytes;
        println!(
            "engine compact+churn ({ENGINE_BACKEND_COMPACT}): \
             {engine_compact_churn_objects_per_sec:>12.0} objects/sec"
        );
        println!(
            "compacted history:   {:>12} of {} objects, {} of {} bytes retained ({:.1}%)",
            report.compact_retained_objects,
            report.compact_full_objects,
            report.compact_retained_bytes,
            report.compact_full_bytes,
            100.0 * report.retention_ratio()
        );
    }

    // Phase 6: instrumentation overhead of the observability layer, plus
    // the ingest-latency percentiles seen through the metrics bundle.
    if enabled(6) {
        let (on, off, p50, p95, p99) = measure_instrumentation_overhead(&dataset);
        report.engine_metrics_on_objects_per_sec = on;
        report.engine_metrics_off_objects_per_sec = off;
        report.ingest_latency_p50_us = p50;
        report.ingest_latency_p95_us = p95;
        report.ingest_latency_p99_us = p99;
        println!(
            "engine metrics on:   {on:>12.0} objects/sec \
             (off: {off:.0}, overhead {:.1}%)",
            report.instrumentation_overhead() * 100.0
        );
        println!(
            "ingest latency:      p50 {p50:.0}us, p95 {p95:.0}us, p99 {p99:.0}us \
             (per {ENGINE_BATCH}-object batch)"
        );
    }

    // Phase 7: the same engine behind the readiness reactor, fanning event
    // deltas out to ~1k live subscriber connections.
    if enabled(7) {
        let (engine_fanout_objects_per_sec, fanout_subscribers, fanout_events_delivered) =
            measure_subscriber_fanout(&dataset);
        report.engine_fanout_objects_per_sec = engine_fanout_objects_per_sec;
        report.fanout_subscribers = fanout_subscribers;
        report.fanout_events_delivered = fanout_events_delivered;
        println!(
            "engine + fan-out:    {engine_fanout_objects_per_sec:>12.0} objects/sec \
             ({fanout_subscribers} subscribers, {fanout_events_delivered} events delivered)"
        );
    }

    // Phase 8: the durability tax of the attached WAL, and the wall-clock
    // cost of recovering the directory it leaves behind.
    if enabled(8) {
        let (wal_on, wal_off, recovery_ms, recovery_replayed) = measure_durability(&dataset);
        report.engine_wal_ingest_objects_per_sec = wal_on;
        report.engine_wal_off_objects_per_sec = wal_off;
        report.recovery_ms = recovery_ms;
        report.recovery_replayed = recovery_replayed;
        println!(
            "engine WAL on:       {wal_on:>12.0} objects/sec \
             (off: {wal_off:.0}, overhead {:.1}%, wal-sync=batch)",
            report.wal_overhead() * 100.0
        );
        println!(
            "recovery:            {recovery_ms:>12.1} ms \
             (genesis snapshot + {recovery_replayed} records replayed)"
        );
    }

    // Phase 9: the interning refactor at population scale; writes its own
    // report so the scale figures version independently of the per-phase
    // throughput schema.
    let mut scale: Option<ScaleReport> = None;
    if enabled(9) {
        let s = measure_scale();
        println!(
            "scale registration:  {:>12.0} ms ({} users, {} distinct preferences)",
            s.register_ms, s.users, s.distinct_preferences
        );
        println!(
            "scale footprint:     {:>12.1} bytes/user ({} preference bytes total)",
            s.bytes_per_user(),
            s.preference_bytes
        );
        println!(
            "scale + 10% churn:   {:>12.0} objects/sec ({SCALE_BACKEND}, {} users)",
            s.churn_objects_per_sec, s.users
        );
        println!(
            "scale clustering:    {:>12.1} ms at {SCALE_CLUSTER_LARGE} distinct vs {:.1} ms \
             at {SCALE_CLUSTER_SMALL} ({:.1}x, {SCALE_CLUSTER_USERS} users both)",
            s.cluster_large_ms,
            s.cluster_small_ms,
            s.cluster_scaling_ratio()
        );
        std::fs::write(&scale_out_path, s.to_json()).expect("write scale report");
        println!("wrote {scale_out_path}");
        scale = Some(s);
    }

    // Phase 10: the multi-node serving stack; writes its own report so the
    // cluster figures version independently, like the scale phase.
    let mut cluster: Option<ClusterReport> = None;
    if enabled(10) {
        let c = measure_cluster_scale_out();
        println!(
            "cluster ingest:      {:>12.0} objects/sec \
             ({CLUSTER_NODES} nodes, replicated write-all via pm-coord)",
            c.cluster_ingest_objects_per_sec
        );
        println!(
            "single-node ingest:  {:>12.0} objects/sec \
             (same coordinator front-end; raw ratio {:.2}x, per-replica \
             efficiency {:.2}x)",
            c.single_node_ingest_objects_per_sec,
            c.ingest_ratio(),
            c.replication_efficiency()
        );
        std::fs::write(&cluster_out_path, c.to_json()).expect("write cluster report");
        println!("wrote {cluster_out_path}");
        cluster = Some(c);
    }

    std::fs::write(&out_path, report.to_json(&phases)).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        match check_against_baseline(
            &report,
            scale.as_ref(),
            cluster.as_ref(),
            &phases,
            &baseline,
        ) {
            Ok(()) => println!("perf-smoke gate: PASS"),
            Err(failures) => {
                for failure in &failures {
                    eprintln!("perf-smoke gate: FAIL: {failure}");
                }
                std::process::exit(1);
            }
        }
    }
}
