//! Fixed-seed performance smoke harness and regression gate.
//!
//! Measures, on the movie-profile workload with a hard-coded seed:
//!
//! 1. the dominance hot path — `compare`/`dominates` throughput of the
//!    hash-map [`Preference`] form vs the bitset-compiled
//!    [`CompiledPreference`] form,
//! 2. end-to-end engine throughput — objects/sec through a
//!    [`ShardedEngine`] running the FilterThenVerify backend,
//! 3. the same stream with **registration churn**: one REGISTER +
//!    UNREGISTER pair per 10 objects (10% churn), so the perf gate also
//!    covers the dynamic-membership path (cluster join/repair + frontier
//!    backfill), and
//! 4. the same stream with **update churn**: 10% of arrivals preceded by
//!    an in-place UPDATE of a live user, covering the preference-update
//!    path (cluster diff / re-AND-fold + frontier replay). NB: this phase
//!    is *not* directly comparable to the registration-churn figure — it
//!    permutes the base users' preferences, which also changes the cluster
//!    structure the INGEST side runs on. The like-for-like claim (measured
//!    by swapping the verb on this same workload) is that in-place UPDATE
//!    runs ~20% faster than serving each update as UNREGISTER+REGISTER,
//!    and
//! 5. the registration-churn stream again on the **compacting history**
//!    backend (`ftv:0.4:compact`): REGISTER/UPDATE backfill replays the
//!    skyline-union retained set instead of the full stream. The report
//!    carries the retained-history size next to the full-history size; the
//!    `--check` gate additionally requires the compacted retained set to
//!    stay under `max_compact_retention_ratio` (0.5 = half) of the full
//!    history on this fixed-seed workload, so the memory win is regression
//!    -tested alongside the throughput floors, and
//! 6. the **instrumentation overhead** of the observability layer: the
//!    plain ingest stream runs with the metrics bundle on and off,
//!    interleaved, keeping each mode's best round. Every recording site is
//!    a relaxed atomic op, so the gate requires the on/off throughput gap
//!    to stay within `max_instrumentation_overhead` (5%) — a larger gap
//!    means someone put real work on the hot path. The metrics-on run also
//!    yields the ingest-batch latency percentiles the report carries, and
//! 7. **subscriber fan-out** through the full serving stack: the ingest
//!    stream is driven over TCP through the readiness reactor while ~1k
//!    subscriber connections (spread across every user) receive their
//!    `EVENT` delta streams. The clock covers ingestion *and* delivery —
//!    it stops only once every subscriber has drained its events behind a
//!    `HEALTH` barrier — so the per-arrival delta diff, the per-mode
//!    render cache, and the outbox writes are all on the measured path,
//!    and
//! 8. the **durability tax and recovery time**: the plain ingest stream
//!    runs with a write-ahead log attached under the group-commit policy
//!    (`--wal-sync=batch`) and detached, interleaved like phase 6, and the
//!    `--check` gate requires the WAL-on throughput to stay within
//!    `max_wal_overhead` (15%) of WAL-off. The WAL directory the last
//!    on-round leaves behind is then recovered — genesis snapshot plus a
//!    full log-tail replay, the worst case for this stream — and the
//!    wall-clock recovery time must stay under the baseline's
//!    `max_recovery_ms` ceiling.
//!
//! Results are printed as one line per metric and written to a JSON report
//! (`BENCH_8.json` by default). With `--check <baseline.json>` the run
//! fails (exit 1) when a throughput metric regresses more than 30% against
//! the checked-in baseline, when the compiled dominance path is less than
//! 2x the hash-map path, when compaction retains too much, or when the
//! instrumentation, durability or recovery overheads exceed their
//! ceilings — this is the `perf-smoke` CI gate.
//!
//! ```text
//! perf_smoke [--out BENCH_8.json] [--check bench-baseline.json]
//! ```

use std::time::Instant;

use pm_bench::setup::generate_dataset;
use pm_bench::workload::{object_pair_indices, value_pair, WORKLOAD_PREFS};
use pm_bench::Scale;
use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::{BackendSpec, EngineConfig, ShardedEngine};
use pm_model::{Object, UserId};
use pm_porder::{CompiledPreference, Preference};

/// Comparisons per dominance measurement.
const DOMINANCE_OPS: usize = 2_000_000;
/// Stream length for the end-to-end engine measurement.
const ENGINE_OBJECTS: usize = 6_000;
/// Ingestion batch size.
const ENGINE_BATCH: usize = 256;
/// The engine backend under test.
const ENGINE_BACKEND: &str = "ftv:0.4";
/// The compacting-history variant of the engine backend (phase 5).
const ENGINE_BACKEND_COMPACT: &str = "ftv:0.4:compact";
/// Churn phase: one REGISTER/UNREGISTER pair per this many objects (10%).
const CHURN_PERIOD: usize = 10;
/// How many registrations stay live before being unregistered again.
const CHURN_LAG: u32 = 8;
/// Regression tolerance of the `--check` gate.
const MAX_REGRESSION: f64 = 0.30;
/// Required compiled-vs-hash dominance speedup.
const MIN_SPEEDUP: f64 = 2.0;
/// Stream length of one instrumentation-overhead round (phase 6). Shorter
/// than [`ENGINE_OBJECTS`]: the phase runs `2 *`[`OVERHEAD_ROUNDS`] times.
const OVERHEAD_OBJECTS: usize = 3_000;
/// Interleaved (off, on) round pairs of the overhead phase; each mode keeps
/// its best round, so thermal/scheduler drift hits both modes equally.
const OVERHEAD_ROUNDS: usize = 2;
/// Overhead ceiling used when the baseline lacks the key.
const MAX_OVERHEAD: f64 = 0.05;
/// Subscriber connections of the fan-out phase (phase 7). Scaled down if
/// the file-descriptor limit cannot accommodate ~2 fds per connection.
const FANOUT_SUBSCRIBERS: usize = 1_000;
/// Stream length of the fan-out phase: shorter than [`ENGINE_OBJECTS`]
/// because every arrival is also rendered and delivered ~[`FANOUT_SUBSCRIBERS`]
/// / users times.
const FANOUT_OBJECTS: usize = 1_500;
/// Interleaved (off, on) round pairs of the durability phase (phase 8).
const WAL_ROUNDS: usize = 2;
/// WAL-on vs WAL-off throughput-gap ceiling when the baseline lacks the
/// `max_wal_overhead` key.
const MAX_WAL_OVERHEAD: f64 = 0.15;

struct Report {
    prefers_hash: f64,
    prefers_compiled: f64,
    dominance_hash: f64,
    dominance_compiled: f64,
    engine_objects_per_sec: f64,
    engine_churn_objects_per_sec: f64,
    engine_update_objects_per_sec: f64,
    engine_compact_churn_objects_per_sec: f64,
    compact_retained_objects: u64,
    compact_full_objects: u64,
    compact_retained_bytes: u64,
    compact_full_bytes: u64,
    engine_metrics_on_objects_per_sec: f64,
    engine_metrics_off_objects_per_sec: f64,
    ingest_latency_p50_us: f64,
    ingest_latency_p95_us: f64,
    ingest_latency_p99_us: f64,
    engine_fanout_objects_per_sec: f64,
    fanout_subscribers: usize,
    fanout_events_delivered: u64,
    engine_wal_ingest_objects_per_sec: f64,
    engine_wal_off_objects_per_sec: f64,
    recovery_ms: f64,
    recovery_replayed: u64,
}

impl Report {
    fn speedup(&self) -> f64 {
        self.dominance_compiled / self.dominance_hash
    }

    /// Retained-history memory relative to the full history an unlimited
    /// backend holds over the identical stream. Bytes, not object counts:
    /// value-duplicate collapsing stores each distinct vector once with an
    /// id list, which is most of the win on a stream that repeats vectors —
    /// skyline-union eviction then trims the id lists themselves.
    fn retention_ratio(&self) -> f64 {
        self.compact_retained_bytes as f64 / self.compact_full_bytes as f64
    }

    /// Relative throughput cost of the metrics bundle: how much slower the
    /// metrics-on stream ran than the metrics-off stream (0 when it ran at
    /// least as fast — noise can swing either way).
    fn instrumentation_overhead(&self) -> f64 {
        (self.engine_metrics_off_objects_per_sec / self.engine_metrics_on_objects_per_sec - 1.0)
            .max(0.0)
    }

    /// Relative throughput cost of the attached WAL under group commit:
    /// how much slower the WAL-on stream ran than the WAL-off stream.
    fn wal_overhead(&self) -> f64 {
        (self.engine_wal_off_objects_per_sec / self.engine_wal_ingest_objects_per_sec - 1.0)
            .max(0.0)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"pm-perf-smoke/v7\",\n  \"profile\": \"movie\",\n  \"seed\": 42,\n  \
             \"prefers_hash_ops_per_sec\": {:.0},\n  \"prefers_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_hash_ops_per_sec\": {:.0},\n  \"dominance_compiled_ops_per_sec\": {:.0},\n  \
             \"dominance_speedup\": {:.3},\n  \"engine_backend\": \"{}\",\n  \
             \"engine_objects\": {},\n  \"engine_objects_per_sec\": {:.0},\n  \
             \"engine_churn_objects_per_sec\": {:.0},\n  \
             \"engine_update_objects_per_sec\": {:.0},\n  \
             \"engine_compact_backend\": \"{}\",\n  \
             \"engine_compact_churn_objects_per_sec\": {:.0},\n  \
             \"compact_retained_objects\": {},\n  \"compact_full_objects\": {},\n  \
             \"compact_retained_bytes\": {},\n  \"compact_full_bytes\": {},\n  \
             \"compact_retention_ratio\": {:.3},\n  \
             \"engine_metrics_on_objects_per_sec\": {:.0},\n  \
             \"engine_metrics_off_objects_per_sec\": {:.0},\n  \
             \"instrumentation_overhead_ratio\": {:.4},\n  \
             \"ingest_latency_p50_us\": {:.1},\n  \
             \"ingest_latency_p95_us\": {:.1},\n  \
             \"ingest_latency_p99_us\": {:.1},\n  \
             \"engine_fanout_objects_per_sec\": {:.0},\n  \
             \"fanout_objects\": {},\n  \
             \"fanout_subscribers\": {},\n  \
             \"fanout_events_delivered\": {},\n  \
             \"engine_wal_ingest_objects_per_sec\": {:.0},\n  \
             \"engine_wal_off_objects_per_sec\": {:.0},\n  \
             \"wal_overhead_ratio\": {:.4},\n  \
             \"recovery_ms\": {:.1},\n  \
             \"recovery_replayed\": {}\n}}\n",
            self.prefers_hash,
            self.prefers_compiled,
            self.dominance_hash,
            self.dominance_compiled,
            self.speedup(),
            ENGINE_BACKEND,
            ENGINE_OBJECTS,
            self.engine_objects_per_sec,
            self.engine_churn_objects_per_sec,
            self.engine_update_objects_per_sec,
            ENGINE_BACKEND_COMPACT,
            self.engine_compact_churn_objects_per_sec,
            self.compact_retained_objects,
            self.compact_full_objects,
            self.compact_retained_bytes,
            self.compact_full_bytes,
            self.retention_ratio(),
            self.engine_metrics_on_objects_per_sec,
            self.engine_metrics_off_objects_per_sec,
            self.instrumentation_overhead(),
            self.ingest_latency_p50_us,
            self.ingest_latency_p95_us,
            self.ingest_latency_p99_us,
            self.engine_fanout_objects_per_sec,
            FANOUT_OBJECTS,
            self.fanout_subscribers,
            self.fanout_events_delivered,
            self.engine_wal_ingest_objects_per_sec,
            self.engine_wal_off_objects_per_sec,
            self.wal_overhead(),
            self.recovery_ms,
            self.recovery_replayed,
        )
    }
}

/// Times `ops` invocations of `f` (called with a running index), returning
/// ops/sec. A black-boxed accumulator keeps the loop from being optimised
/// away.
fn ops_per_sec<F: FnMut(usize) -> usize>(ops: usize, mut f: F) -> f64 {
    let start = Instant::now();
    let mut acc = 0usize;
    for i in 0..ops {
        acc = acc.wrapping_add(f(i));
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    ops as f64 / elapsed
}

fn measure_dominance(preferences: &[Preference], objects: &[Object]) -> (f64, f64, f64, f64) {
    let hash: Vec<&Preference> = preferences.iter().take(WORKLOAD_PREFS).collect();
    let compiled: Vec<CompiledPreference> = hash.iter().map(|p| p.compile()).collect();
    let pair = |i: usize| {
        let (a, b) = object_pair_indices(i, objects.len());
        (&objects[a], &objects[b])
    };

    // Warm-up passes keep first-touch cache misses out of the timings.
    for i in 0..DOMINANCE_OPS / 10 {
        let (a, b) = pair(i);
        std::hint::black_box(hash[i % hash.len()].compare(a, b));
        std::hint::black_box(compiled[i % compiled.len()].compare(a, b));
    }

    let attr = pm_model::AttrId::new(0);
    let prefers_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = hash[i % hash.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let prefers_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let rel = compiled[i % compiled.len()].relation(attr);
        let (x, y) = value_pair(objects, i);
        rel.prefers(x, y) as usize
    });
    let dominance_hash = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        hash[i % hash.len()].compare(a, b) as usize
    });
    let dominance_compiled = ops_per_sec(DOMINANCE_OPS, |i| {
        let (a, b) = pair(i);
        compiled[i % compiled.len()].compare(a, b) as usize
    });
    (
        prefers_hash,
        prefers_compiled,
        dominance_hash,
        dominance_compiled,
    )
}

fn engine_stream(objects: &[Object]) -> Vec<Object> {
    (0..ENGINE_OBJECTS)
        .map(|i| {
            let base = &objects[i % objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect()
}

fn measure_engine(preferences: Vec<Preference>, objects: &[Object]) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(preferences, &EngineConfig::new(1), &spec);
    let stream = engine_stream(objects);
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        let arrivals = engine.process_batch(chunk.to_vec());
        processed += arrivals.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    processed as f64 / elapsed
}

/// The same stream with 10% registration churn on `backend`: after every
/// [`CHURN_PERIOD`] objects, one new user registers (preferences cycled
/// from the dataset, sparse ids above the base population) and the user
/// registered [`CHURN_LAG`] rounds earlier unregisters, so the population
/// stays near its base size while the dynamic path — cluster join/repair
/// plus frontier backfill over the retained history — runs continuously.
/// Returns the throughput plus the engine's final work counters (which
/// carry the retained-history gauges). One function serves both the plain
/// and the compacting phase so the two stay the *identical* workload the
/// retention-ratio gate compares.
fn run_churn_workload(dataset: &Dataset, backend: &str) -> (f64, pm_core::MonitorStats) {
    let spec = BackendSpec::parse(backend).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    let stream = engine_stream(&dataset.objects);
    let base = dataset.num_users() as u32;
    let churn_per_batch = ENGINE_BATCH / CHURN_PERIOD;
    let start = Instant::now();
    let mut processed = 0usize;
    let mut next_user = base;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += engine.process_batch(chunk.to_vec()).len();
        for _ in 0..churn_per_batch {
            let pref = dataset.preferences[(next_user as usize) % dataset.num_users()].clone();
            engine
                .register(UserId::new(1_000_000 + next_user), pref)
                .expect("register");
            if next_user >= base + CHURN_LAG {
                engine
                    .unregister(UserId::new(1_000_000 + next_user - CHURN_LAG))
                    .expect("unregister");
            }
            next_user += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    assert_eq!(
        engine.num_users(),
        dataset.num_users() + CHURN_LAG as usize,
        "churn must keep the population bounded"
    );
    (processed as f64 / elapsed, engine.stats())
}

/// The same stream with 10% **update churn**: after every [`CHURN_PERIOD`]
/// objects one live user's preference is replaced in place (preferences
/// cycled from the dataset, so most updates genuinely change the compiled
/// relations and exercise the cluster diff), while ids and the population
/// size never move. This times the in-place path the UPDATE verb serves:
/// one cluster re-AND-fold or local repair plus one frontier replay —
/// versus the two repairs and swap-remove renumbering of
/// UNREGISTER+REGISTER measured by [`run_churn_workload`].
fn measure_engine_update_churn(dataset: &Dataset) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    let stream = engine_stream(&dataset.objects);
    let base = dataset.num_users();
    let churn_per_batch = ENGINE_BATCH / CHURN_PERIOD;
    let start = Instant::now();
    let mut processed = 0usize;
    let mut round = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        for _ in 0..churn_per_batch {
            let user = UserId::from(round % base);
            let pref = dataset.preferences[(round + 13) % base].clone();
            engine.update(user, pref).expect("update");
            round += 1;
        }
        processed += engine.process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    assert_eq!(
        engine.num_users(),
        base,
        "update churn must not change the population"
    );
    processed as f64 / elapsed
}

/// One metrics-on or metrics-off run of the plain ingest stream (phase 6):
/// returns throughput and the final engine snapshot, whose ingest-latency
/// percentiles are nonzero only when the metrics bundle is on.
fn timed_plain_stream(dataset: &Dataset, metrics: bool) -> (f64, pm_engine::EngineSnapshot) {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let config = EngineConfig::new(1).with_metrics(metrics);
    let engine = ShardedEngine::new(dataset.preferences.clone(), &config, &spec);
    let stream: Vec<Object> = (0..OVERHEAD_OBJECTS)
        .map(|i| {
            let base = &dataset.objects[i % dataset.objects.len()];
            Object::new(pm_model::ObjectId::from(i), base.values().to_vec())
        })
        .collect();
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += engine.process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        processed, OVERHEAD_OBJECTS,
        "every object must be processed"
    );
    (processed as f64 / elapsed, engine.snapshot())
}

/// Phase 6: interleaved (off, on) rounds of the plain stream; each mode
/// keeps its best round so drift hits both equally. Returns
/// `(best_on, best_off, p50_us, p95_us, p99_us)`, the percentiles taken
/// from the best metrics-on round.
fn measure_instrumentation_overhead(dataset: &Dataset) -> (f64, f64, f64, f64, f64) {
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let (mut p50, mut p95, mut p99) = (0.0, 0.0, 0.0);
    for _ in 0..OVERHEAD_ROUNDS {
        let (off, _) = timed_plain_stream(dataset, false);
        best_off = best_off.max(off);
        let (on, snapshot) = timed_plain_stream(dataset, true);
        if on > best_on {
            best_on = on;
            p50 = snapshot.ingest_p50_us;
            p95 = snapshot.ingest_p95_us;
            p99 = snapshot.ingest_p99_us;
        }
    }
    (best_on, best_off, p50, p95, p99)
}

/// Phase 7: the serving stack under subscriber fan-out. One control
/// connection drives [`FANOUT_OBJECTS`] objects through the wire `INGEST`
/// verb of a reactor-served engine while subscriber connections — spread
/// round-robin over every user — hold live `SUBSCRIBE` streams. The clock
/// runs from the first ingest write until every subscriber has drained its
/// `EVENT` backlog behind a pipelined `HEALTH` barrier (per-connection
/// outboxes are FIFO), so delta diffing, rendering, and delivery are all
/// inside the measurement. Returns `(objects_per_sec, subscribers,
/// events_delivered)`.
fn measure_subscriber_fanout(dataset: &Dataset) -> (f64, usize, u64) {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    // Each subscriber costs two descriptors in this one process (client
    // and server end); raise the soft limit and scale down if refused.
    let limit = pm_reactor::raise_nofile_limit(8_192).unwrap_or(1_024);
    let subscribers = FANOUT_SUBSCRIBERS.min((limit.saturating_sub(300) / 2) as usize);

    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let engine = ShardedEngine::new(dataset.preferences.clone(), &EngineConfig::new(1), &spec);
    // Slow-op warnings are disabled: a bench batch is *supposed* to be
    // saturated, and the log writes would perturb the measurement.
    let service = Arc::new(
        pm_engine::EngineService::new(engine, spec, dataset.dimensions(), 16).with_slow_op(None),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    // The bench measures throughput, not the eviction policy: a roomy
    // outbox bound keeps slow-reader eviction out of the picture.
    let config = pm_engine::ReactorConfig {
        max_outbox: 32 << 20,
        ..pm_engine::ReactorConfig::default()
    };
    std::thread::spawn(move || pm_engine::serve_with(listener, service, config));

    let connect = |request: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.write_all(request.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        assert!(line.starts_with("OK "), "unexpected reply: {line}");
        (stream, reader)
    };
    let (mut control, mut control_reader) = connect("HEALTH\n");
    let users = dataset.num_users();
    let mut subs: Vec<(TcpStream, BufReader<TcpStream>)> = (0..subscribers)
        .map(|i| connect(&format!("SUBSCRIBE {}\n", i % users)))
        .collect();

    // The wire form of the same recycled object stream the other engine
    // phases ingest (ids are assigned server-side in arrival order).
    let rows: Vec<String> = (0..FANOUT_OBJECTS)
        .map(|i| {
            let base = &dataset.objects[i % dataset.objects.len()];
            base.values()
                .iter()
                .map(|v| v.raw().to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();

    let start = Instant::now();
    let mut line = String::new();
    for chunk in rows.chunks(ENGINE_BATCH) {
        control
            .write_all(format!("INGEST {}\n", chunk.join(";")).as_bytes())
            .expect("ingest");
        line.clear();
        control_reader.read_line(&mut line).expect("ingest reply");
        assert!(line.starts_with("OK INGESTED"), "unexpected reply: {line}");
    }
    // Barrier: every subscriber answers HEALTH only after its event
    // backlog; writes first so the drains overlap server-side.
    for (stream, _) in &mut subs {
        stream.write_all(b"HEALTH\n").expect("barrier");
    }
    let mut events = 0u64;
    for (_, reader) in &mut subs {
        loop {
            line.clear();
            reader.read_line(&mut line).expect("drain");
            if line.starts_with("OK HEALTH") {
                break;
            }
            assert!(line.starts_with("EVENT "), "unexpected line: {line}");
            events += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(events > 0, "fan-out must deliver events");
    (FANOUT_OBJECTS as f64 / elapsed, subscribers, events)
}

/// One WAL-attached run of the plain ingest stream: builds the service
/// through `recover_or_create` on a fresh directory (which attaches the
/// log under `--wal-sync=batch` semantics) and times the identical stream
/// the WAL-off rounds process. Every batch is appended to the log inside
/// the shard-dispatch critical section, so the measured gap is the full
/// durability tax: encoding, the page-cache write, and the group-commit
/// fsyncs.
fn timed_wal_stream(dataset: &Dataset, dir: &std::path::Path) -> f64 {
    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let durability = pm_engine::DurabilityConfig {
        dir: dir.to_path_buf(),
        sync: pm_wal::SyncPolicy::Batch,
        snapshot_every: 0,
    };
    let (service, report) = pm_engine::durability::recover_or_create(
        dataset.preferences.clone(),
        &EngineConfig::new(1),
        &spec,
        dataset.dimensions(),
        16,
        &durability,
    )
    .expect("open WAL dir");
    assert!(
        report.is_none(),
        "the WAL round must start from a fresh dir"
    );
    let stream = engine_stream(&dataset.objects);
    let start = Instant::now();
    let mut processed = 0usize;
    for chunk in stream.chunks(ENGINE_BATCH) {
        processed += service.engine().process_batch(chunk.to_vec()).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, ENGINE_OBJECTS, "every object must be processed");
    processed as f64 / elapsed
}

/// Phase 8: interleaved (off, on) rounds of the plain stream — WAL-off
/// rounds run the bare engine, WAL-on rounds append every ingest batch to
/// a fresh log under group commit; each mode keeps its best round. The
/// directory the last on-round leaves behind (genesis snapshot + the full
/// ingest tail) is then recovered and timed. Returns
/// `(best_on, best_off, recovery_ms, recovery_replayed)`.
fn measure_durability(dataset: &Dataset) -> (f64, f64, f64, u64) {
    let dir = std::env::temp_dir().join(format!("pm-perf-smoke-wal-{}", std::process::id()));
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..WAL_ROUNDS {
        let off = measure_engine(dataset.preferences.clone(), &dataset.objects);
        best_off = best_off.max(off);
        let _ = std::fs::remove_dir_all(&dir);
        best_on = best_on.max(timed_wal_stream(dataset, &dir));
    }

    let spec = BackendSpec::parse(ENGINE_BACKEND).expect("valid backend spec");
    let durability = pm_engine::DurabilityConfig {
        dir: dir.clone(),
        sync: pm_wal::SyncPolicy::Batch,
        snapshot_every: 0,
    };
    let (_service, report) = pm_engine::durability::recover_or_create(
        dataset.preferences.clone(),
        &EngineConfig::new(1),
        &spec,
        dataset.dimensions(),
        16,
        &durability,
    )
    .expect("recover WAL dir");
    let report = report.expect("an ingested WAL dir must produce a recovery report");
    let _ = std::fs::remove_dir_all(&dir);
    (
        best_on,
        best_off,
        report.elapsed.as_secs_f64() * 1_000.0,
        report.replayed,
    )
}

/// Minimal parser for the flat JSON this harness itself writes: returns the
/// numeric fields as (key, value) pairs.
fn parse_flat_json_numbers(text: &str) -> Vec<(String, f64)> {
    let mut fields = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(number) = value.trim().parse::<f64>() {
            fields.push((key.to_owned(), number));
        }
    }
    fields
}

fn check_against_baseline(report: &Report, baseline_path: &str) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("cannot read baseline {baseline_path}: {e}")]),
    };
    let baseline = parse_flat_json_numbers(&text);
    let lookup = |key: &str| baseline.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut failures = Vec::new();

    let gates = [
        ("dominance_compiled_ops_per_sec", report.dominance_compiled),
        ("engine_objects_per_sec", report.engine_objects_per_sec),
        (
            "engine_churn_objects_per_sec",
            report.engine_churn_objects_per_sec,
        ),
        (
            "engine_update_objects_per_sec",
            report.engine_update_objects_per_sec,
        ),
        (
            "engine_compact_churn_objects_per_sec",
            report.engine_compact_churn_objects_per_sec,
        ),
        (
            "engine_fanout_objects_per_sec",
            report.engine_fanout_objects_per_sec,
        ),
        (
            "engine_wal_ingest_objects_per_sec",
            report.engine_wal_ingest_objects_per_sec,
        ),
    ];
    for (key, current) in gates {
        let Some(expected) = lookup(key) else {
            failures.push(format!("baseline is missing `{key}`"));
            continue;
        };
        let floor = expected * (1.0 - MAX_REGRESSION);
        if current < floor {
            failures.push(format!(
                "{key} regressed: {current:.0} < {floor:.0} \
                 (baseline {expected:.0}, tolerance {:.0}%)",
                MAX_REGRESSION * 100.0
            ));
        } else {
            println!("gate ok: {key} = {current:.0} (>= {floor:.0})");
        }
    }

    let min_speedup = lookup("min_dominance_speedup").unwrap_or(MIN_SPEEDUP);
    if report.speedup() < min_speedup {
        failures.push(format!(
            "dominance speedup {:.2}x below required {min_speedup:.2}x",
            report.speedup()
        ));
    } else {
        println!(
            "gate ok: dominance_speedup = {:.2}x (>= {min_speedup:.2}x)",
            report.speedup()
        );
    }

    // Memory-reduction gate: the compacted retained set must stay under the
    // baseline ratio of the full history on this fixed-seed workload.
    if let Some(max_ratio) = lookup("max_compact_retention_ratio") {
        if report.retention_ratio() > max_ratio {
            failures.push(format!(
                "compaction retained {} of {} history bytes ({:.1}%), above \
                 the {:.1}% ceiling",
                report.compact_retained_bytes,
                report.compact_full_bytes,
                report.retention_ratio() * 100.0,
                max_ratio * 100.0
            ));
        } else {
            println!(
                "gate ok: compact_retention_ratio = {:.3} (<= {max_ratio:.3})",
                report.retention_ratio()
            );
        }
    } else {
        failures.push("baseline is missing `max_compact_retention_ratio`".to_owned());
    }

    // Instrumentation-overhead gate: the metrics bundle must stay within
    // its documented throughput cost on the identical interleaved stream.
    let max_overhead = lookup("max_instrumentation_overhead").unwrap_or(MAX_OVERHEAD);
    if report.instrumentation_overhead() > max_overhead {
        failures.push(format!(
            "instrumentation overhead {:.1}% above the {:.1}% ceiling \
             (metrics on {:.0} vs off {:.0} objects/sec)",
            report.instrumentation_overhead() * 100.0,
            max_overhead * 100.0,
            report.engine_metrics_on_objects_per_sec,
            report.engine_metrics_off_objects_per_sec,
        ));
    } else {
        println!(
            "gate ok: instrumentation_overhead = {:.1}% (<= {:.1}%)",
            report.instrumentation_overhead() * 100.0,
            max_overhead * 100.0
        );
    }

    // Durability-tax gate: the attached WAL under group commit must stay
    // within its documented throughput cost on the identical stream.
    let max_wal_overhead = lookup("max_wal_overhead").unwrap_or(MAX_WAL_OVERHEAD);
    if report.wal_overhead() > max_wal_overhead {
        failures.push(format!(
            "WAL overhead {:.1}% above the {:.1}% ceiling \
             (WAL on {:.0} vs off {:.0} objects/sec)",
            report.wal_overhead() * 100.0,
            max_wal_overhead * 100.0,
            report.engine_wal_ingest_objects_per_sec,
            report.engine_wal_off_objects_per_sec,
        ));
    } else {
        println!(
            "gate ok: wal_overhead = {:.1}% (<= {:.1}%)",
            report.wal_overhead() * 100.0,
            max_wal_overhead * 100.0
        );
    }

    // Recovery-time gate: genesis snapshot + full log-tail replay of this
    // fixed stream must finish under the baseline ceiling.
    if let Some(max_recovery_ms) = lookup("max_recovery_ms") {
        if report.recovery_ms > max_recovery_ms {
            failures.push(format!(
                "recovery took {:.1} ms ({} records replayed), above the \
                 {max_recovery_ms:.0} ms ceiling",
                report.recovery_ms, report.recovery_replayed
            ));
        } else {
            println!(
                "gate ok: recovery_ms = {:.1} (<= {max_recovery_ms:.0})",
                report.recovery_ms
            );
        }
    } else {
        failures.push("baseline is missing `max_recovery_ms`".to_owned());
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() {
    let mut out_path = "BENCH_8.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (expected --out/--check)");
                std::process::exit(2);
            }
        }
    }

    println!("perf-smoke: movie profile, seed 42, fixed workload");
    let dataset = generate_dataset(&DatasetProfile::movie(), &Scale::quick());
    println!(
        "dataset: {} users, {} objects, {} attributes",
        dataset.num_users(),
        dataset.num_objects(),
        dataset.dimensions()
    );

    let (prefers_hash, prefers_compiled, dominance_hash, dominance_compiled) =
        measure_dominance(&dataset.preferences, &dataset.objects);
    println!("prefers/hash:        {prefers_hash:>12.0} ops/sec");
    println!("prefers/compiled:    {prefers_compiled:>12.0} ops/sec");
    println!("dominance/hash:      {dominance_hash:>12.0} ops/sec");
    println!("dominance/compiled:  {dominance_compiled:>12.0} ops/sec");
    println!(
        "dominance speedup:   {:>12.2}x (compiled vs hash)",
        dominance_compiled / dominance_hash
    );

    let engine_objects_per_sec = measure_engine(dataset.preferences.clone(), &dataset.objects);
    println!("engine ({ENGINE_BACKEND}, 1 shard): {engine_objects_per_sec:>12.0} objects/sec");

    // The unlimited backend's retained-history bytes double as the "full
    // history" yardstick of the compaction phase (identical stream).
    let (engine_churn_objects_per_sec, full_stats) = run_churn_workload(&dataset, ENGINE_BACKEND);
    let compact_full_bytes = full_stats.history_bytes;
    println!(
        "engine + 10% churn:  {engine_churn_objects_per_sec:>12.0} objects/sec \
         (1 REGISTER+UNREGISTER per {CHURN_PERIOD} objects)"
    );

    let engine_update_objects_per_sec = measure_engine_update_churn(&dataset);
    println!(
        "engine + 10% update: {engine_update_objects_per_sec:>12.0} objects/sec \
         (1 in-place UPDATE per {CHURN_PERIOD} objects)"
    );

    // Phase 5: the identical churn workload on the compacting-history
    // backend — every REGISTER backfill replays the skyline-union retained
    // set instead of the full stream; churn preferences come from the base
    // population, so backfill stays exact while the history shrinks.
    let (engine_compact_churn_objects_per_sec, compact_stats) =
        run_churn_workload(&dataset, ENGINE_BACKEND_COMPACT);
    let compact_retained_objects = compact_stats.history_objects;
    let compact_retained_bytes = compact_stats.history_bytes;
    let compact_full_objects = full_stats.history_objects;
    println!(
        "engine compact+churn ({ENGINE_BACKEND_COMPACT}): \
         {engine_compact_churn_objects_per_sec:>12.0} objects/sec"
    );
    println!(
        "compacted history:   {compact_retained_objects:>12} of {compact_full_objects} \
         objects, {compact_retained_bytes} of {compact_full_bytes} bytes retained ({:.1}%)",
        100.0 * compact_retained_bytes as f64 / compact_full_bytes as f64
    );

    // Phase 6: instrumentation overhead of the observability layer, plus
    // the ingest-latency percentiles seen through the metrics bundle.
    let (
        engine_metrics_on_objects_per_sec,
        engine_metrics_off_objects_per_sec,
        ingest_latency_p50_us,
        ingest_latency_p95_us,
        ingest_latency_p99_us,
    ) = measure_instrumentation_overhead(&dataset);
    println!(
        "engine metrics on:   {engine_metrics_on_objects_per_sec:>12.0} objects/sec \
         (off: {engine_metrics_off_objects_per_sec:.0}, overhead {:.1}%)",
        (engine_metrics_off_objects_per_sec / engine_metrics_on_objects_per_sec - 1.0).max(0.0)
            * 100.0
    );
    println!(
        "ingest latency:      p50 {ingest_latency_p50_us:.0}us, \
         p95 {ingest_latency_p95_us:.0}us, p99 {ingest_latency_p99_us:.0}us \
         (per {ENGINE_BATCH}-object batch)"
    );

    // Phase 7: the same engine behind the readiness reactor, fanning event
    // deltas out to ~1k live subscriber connections.
    let (engine_fanout_objects_per_sec, fanout_subscribers, fanout_events_delivered) =
        measure_subscriber_fanout(&dataset);
    println!(
        "engine + fan-out:    {engine_fanout_objects_per_sec:>12.0} objects/sec \
         ({fanout_subscribers} subscribers, {fanout_events_delivered} events delivered)"
    );

    // Phase 8: the durability tax of the attached WAL, and the wall-clock
    // cost of recovering the directory it leaves behind.
    let (
        engine_wal_ingest_objects_per_sec,
        engine_wal_off_objects_per_sec,
        recovery_ms,
        recovery_replayed,
    ) = measure_durability(&dataset);
    println!(
        "engine WAL on:       {engine_wal_ingest_objects_per_sec:>12.0} objects/sec \
         (off: {engine_wal_off_objects_per_sec:.0}, overhead {:.1}%, wal-sync=batch)",
        (engine_wal_off_objects_per_sec / engine_wal_ingest_objects_per_sec - 1.0).max(0.0) * 100.0
    );
    println!(
        "recovery:            {recovery_ms:>12.1} ms \
         (genesis snapshot + {recovery_replayed} records replayed)"
    );

    let report = Report {
        prefers_hash,
        prefers_compiled,
        dominance_hash,
        dominance_compiled,
        engine_objects_per_sec,
        engine_churn_objects_per_sec,
        engine_update_objects_per_sec,
        engine_compact_churn_objects_per_sec,
        compact_retained_objects,
        compact_full_objects,
        compact_retained_bytes,
        compact_full_bytes,
        engine_metrics_on_objects_per_sec,
        engine_metrics_off_objects_per_sec,
        ingest_latency_p50_us,
        ingest_latency_p95_us,
        ingest_latency_p99_us,
        engine_fanout_objects_per_sec,
        fanout_subscribers,
        fanout_events_delivered,
        engine_wal_ingest_objects_per_sec,
        engine_wal_off_objects_per_sec,
        recovery_ms,
        recovery_replayed,
    };
    std::fs::write(&out_path, report.to_json()).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        match check_against_baseline(&report, &baseline) {
            Ok(()) => println!("perf-smoke gate: PASS"),
            Err(failures) => {
                for failure in &failures {
                    eprintln!("perf-smoke gate: FAIL: {failure}");
                }
                std::process::exit(1);
            }
        }
    }
}
