//! Experiment setup: dataset generation at a [`Scale`] and monitor
//! construction (clustering + virtual preferences).

use pm_cluster::{
    cluster_users, ApproxConfig, ApproxMeasure, Cluster, ClusteringConfig, ExactMeasure,
};
use pm_core::{FilterThenVerifyMonitor, FilterThenVerifySwMonitor};
use pm_datagen::{Dataset, DatasetProfile};

use crate::scale::Scale;

/// Generates a dataset for `profile` under `scale`.
pub fn generate_dataset(profile: &DatasetProfile, scale: &Scale) -> Dataset {
    let objects = if scale.objects == usize::MAX {
        profile.num_objects
    } else {
        scale.objects
    };
    let sized = profile
        .with_users(scale.users)
        .with_objects(objects)
        .with_interactions(scale.interactions);
    Dataset::generate(&sized, scale.seed)
}

/// Summary of a clustering pass, reported alongside experiment rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSummary {
    /// Number of clusters `k`.
    pub clusters: usize,
    /// Size of the largest cluster.
    pub largest: usize,
    /// Number of users clustered.
    pub users: usize,
}

/// Clusters a dataset's users with the given measure and branch cut `h`.
pub fn cluster_dataset(
    dataset: &Dataset,
    measure: ExactMeasure,
    branch_cut: f64,
) -> (Vec<Cluster>, ClusterSummary) {
    let outcome = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Exact {
            measure,
            branch_cut,
        },
    );
    let summary = ClusterSummary {
        clusters: outcome.len(),
        largest: outcome.largest_cluster(),
        users: dataset.num_users(),
    };
    (outcome.clusters, summary)
}

/// Clusters a dataset's users with an approximate (frequency-vector) measure.
pub fn cluster_dataset_approx(
    dataset: &Dataset,
    measure: ApproxMeasure,
    branch_cut: f64,
) -> (Vec<Cluster>, ClusterSummary) {
    let outcome = cluster_users(
        &dataset.preferences,
        ClusteringConfig::Approx {
            measure,
            branch_cut,
        },
    );
    let summary = ClusterSummary {
        clusters: outcome.len(),
        largest: outcome.largest_cluster(),
        users: dataset.num_users(),
    };
    (outcome.clusters, summary)
}

/// Builds a `FilterThenVerify` monitor (exact common preference relations)
/// for `dataset`, clustering with Jaccard similarity at branch cut `h`.
pub fn build_exact_monitor(dataset: &Dataset, h: f64) -> (FilterThenVerifyMonitor, ClusterSummary) {
    let (clusters, summary) = cluster_dataset(dataset, ExactMeasure::Jaccard, h);
    (
        FilterThenVerifyMonitor::new(dataset.preferences.clone(), &clusters),
        summary,
    )
}

/// Builds a `FilterThenVerifyApprox` monitor: approximate clustering
/// (frequency-vector Jaccard) plus approximate common preference relations
/// built by Alg. 3 under `config`.
pub fn build_approx_monitor(
    dataset: &Dataset,
    h: f64,
    config: ApproxConfig,
) -> (FilterThenVerifyMonitor, ClusterSummary) {
    let (clusters, summary) = cluster_dataset_approx(dataset, ApproxMeasure::Jaccard, h);
    (
        FilterThenVerifyMonitor::with_approx_clusters(
            dataset.preferences.clone(),
            &clusters,
            config,
        ),
        summary,
    )
}

/// Builds the sliding-window `FilterThenVerifySW` monitor.
pub fn build_exact_sw_monitor(
    dataset: &Dataset,
    h: f64,
    window: usize,
) -> (FilterThenVerifySwMonitor, ClusterSummary) {
    let (clusters, summary) = cluster_dataset(dataset, ExactMeasure::Jaccard, h);
    (
        FilterThenVerifySwMonitor::new(dataset.preferences.clone(), &clusters, window),
        summary,
    )
}

/// Builds the sliding-window `FilterThenVerifyApproxSW` monitor.
pub fn build_approx_sw_monitor(
    dataset: &Dataset,
    h: f64,
    config: ApproxConfig,
    window: usize,
) -> (FilterThenVerifySwMonitor, ClusterSummary) {
    let (clusters, summary) = cluster_dataset_approx(dataset, ApproxMeasure::Jaccard, h);
    (
        FilterThenVerifySwMonitor::with_approx_clusters(
            dataset.preferences.clone(),
            &clusters,
            config,
            window,
        ),
        summary,
    )
}

/// The default θ1/θ2 thresholds used by the approximate experiments.
pub fn default_approx_config() -> ApproxConfig {
    ApproxConfig::new(512, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Dataset, Scale) {
        let scale = Scale::smoke();
        let dataset = generate_dataset(&DatasetProfile::movie(), &scale);
        (dataset, scale)
    }

    #[test]
    fn generated_dataset_respects_scale() {
        let (dataset, scale) = tiny();
        assert_eq!(dataset.num_users(), scale.users);
        assert_eq!(dataset.num_objects(), scale.objects);
    }

    #[test]
    fn clustering_partitions_users() {
        let (dataset, _) = tiny();
        let (clusters, summary) = cluster_dataset(&dataset, ExactMeasure::Jaccard, 0.4);
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, dataset.num_users());
        assert_eq!(summary.users, dataset.num_users());
        assert!(summary.clusters <= dataset.num_users());
        assert!(summary.largest >= 1);
    }

    #[test]
    fn monitors_build_and_process() {
        use pm_core::ContinuousMonitor;
        let (dataset, _) = tiny();
        let (mut exact, _) = build_exact_monitor(&dataset, 0.4);
        let (mut approx, _) = build_approx_monitor(&dataset, 0.4, default_approx_config());
        for o in dataset.objects.iter().take(50).cloned() {
            exact.process(o.clone());
            approx.process(o);
        }
        assert!(exact.stats().comparisons > 0);
        assert!(approx.stats().comparisons > 0);
    }

    #[test]
    fn sw_monitors_build_and_process() {
        use pm_core::ContinuousMonitor;
        let (dataset, _) = tiny();
        let (mut exact, _) = build_exact_sw_monitor(&dataset, 0.4, 50);
        let (mut approx, _) = build_approx_sw_monitor(&dataset, 0.4, default_approx_config(), 50);
        for o in dataset.stream(120).iter() {
            exact.process(o.clone());
            approx.process(o);
        }
        assert!(exact.stats().expirations > 0);
        assert!(approx.stats().expirations > 0);
    }
}
