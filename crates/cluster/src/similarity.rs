//! Exact similarity measures between clusters' common preference relations
//! (Section 5 of the paper, Eq. 1–5).
//!
//! All four measures are defined per attribute and summed over attributes
//! (Eq. 1). The weighted measures assign each common preference tuple the
//! average weight of its *better* value in the two clusters, where a value's
//! weight is the inverse of (1 + its minimum distance from a maximal value
//! on the cluster's Hasse diagram).
//!
//! Two implementations are provided: the original hash-map form on
//! [`Relation`] (kept as the reference and for one-off comparisons), and the
//! `compiled_*` functions on [`CompiledRelation`] bit-rows, where every
//! measure reduces to word-wise AND / AND-NOT plus popcount. The clustering
//! loop ([`crate::cluster_users`]) runs on the compiled form.

use pm_porder::{CompiledRelation, HasseDiagram, Preference, Relation};

/// Which exact similarity measure to use (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExactMeasure {
    /// `simᵈ_i`: number of common preference tuples (Eq. 2).
    IntersectionSize,
    /// `simᵈ_j`: intersection size over union size (Eq. 3).
    Jaccard,
    /// `simᵈ_wi`: weighted intersection size (Eq. 4).
    WeightedIntersectionSize,
    /// `simᵈ_wj`: weighted Jaccard (Eq. 5).
    WeightedJaccard,
}

impl ExactMeasure {
    /// All four measures, handy for ablation sweeps.
    pub const ALL: [ExactMeasure; 4] = [
        ExactMeasure::IntersectionSize,
        ExactMeasure::Jaccard,
        ExactMeasure::WeightedIntersectionSize,
        ExactMeasure::WeightedJaccard,
    ];

    /// Short, stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ExactMeasure::IntersectionSize => "intersection",
            ExactMeasure::Jaccard => "jaccard",
            ExactMeasure::WeightedIntersectionSize => "weighted-intersection",
            ExactMeasure::WeightedJaccard => "weighted-jaccard",
        }
    }
}

/// A similarity measure over per-attribute preference relations.
pub trait SimilarityMeasure {
    /// Similarity between two clusters' relations on one attribute.
    fn attr_similarity(&self, a: &Relation, b: &Relation) -> f64;

    /// Similarity between two clusters' full preferences: the sum of
    /// per-attribute similarities (Eq. 1).
    fn similarity(&self, a: &Preference, b: &Preference) -> f64 {
        debug_assert_eq!(a.arity(), b.arity());
        a.relations()
            .zip(b.relations())
            .map(|((_, ra), (_, rb))| self.attr_similarity(ra, rb))
            .sum()
    }
}

impl SimilarityMeasure for ExactMeasure {
    fn attr_similarity(&self, a: &Relation, b: &Relation) -> f64 {
        match self {
            ExactMeasure::IntersectionSize => intersection_size(a, b),
            ExactMeasure::Jaccard => jaccard(a, b),
            ExactMeasure::WeightedIntersectionSize => weighted_intersection(a, b),
            ExactMeasure::WeightedJaccard => weighted_jaccard(a, b),
        }
    }
}

/// `simᵈ_i(U1, U2) = |≻ᵈ_U1 ∩ ≻ᵈ_U2|` (Eq. 2).
pub fn intersection_size(a: &Relation, b: &Relation) -> f64 {
    a.intersection_size(b) as f64
}

/// `simᵈ_j(U1, U2) = |∩| / |∪|` (Eq. 3). Defined as 0 when both relations
/// are empty.
pub fn jaccard(a: &Relation, b: &Relation) -> f64 {
    let union = a.union_size(b);
    if union == 0 {
        0.0
    } else {
        a.intersection_size(b) as f64 / union as f64
    }
}

/// `simᵈ_wi(U1, U2)` (Eq. 4): for every common preference tuple `(v, v')`,
/// add the average of `v`'s weights in the two clusters.
pub fn weighted_intersection(a: &Relation, b: &Relation) -> f64 {
    let ha = HasseDiagram::of(a);
    let hb = HasseDiagram::of(b);
    weighted_intersection_with(a, b, &ha, &hb)
}

fn weighted_intersection_with(
    a: &Relation,
    b: &Relation,
    ha: &HasseDiagram,
    hb: &HasseDiagram,
) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .pairs()
        .filter(|&(x, y)| large.prefers(x, y))
        .map(|(v, _)| 0.5 * (ha.weight(v) + hb.weight(v)))
        .sum()
}

/// `simᵈ_wj(U1, U2)` (Eq. 5): weighted intersection over weighted union,
/// where tuples exclusive to one cluster contribute their better value's
/// weight in that cluster alone.
pub fn weighted_jaccard(a: &Relation, b: &Relation) -> f64 {
    let ha = HasseDiagram::of(a);
    let hb = HasseDiagram::of(b);
    let wi = weighted_intersection_with(a, b, &ha, &hb);
    let only_a: f64 = a.difference(b).map(|(v, _)| ha.weight(v)).sum();
    let only_b: f64 = b.difference(a).map(|(v, _)| hb.weight(v)).sum();
    let denom = wi + only_a + only_b;
    if denom == 0.0 {
        0.0
    } else {
        wi / denom
    }
}

/// `simᵈ_i` on bit-rows: word-wise AND + popcount.
///
/// Both relations must share a compiled universe (see
/// [`CompiledRelation::compile_with_universe`]).
pub fn compiled_intersection_size(a: &CompiledRelation, b: &CompiledRelation) -> f64 {
    a.intersection_size(b) as f64
}

/// `simᵈ_j` on bit-rows. Defined as 0 when both relations are empty.
pub fn compiled_jaccard(a: &CompiledRelation, b: &CompiledRelation) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// `simᵈ_wi` on bit-rows: every common tuple with better value `v`
/// contributes the average of `v`'s weights, so one AND + popcount per row
/// scaled by that row's average weight covers all of the row's tuples.
///
/// `wa` / `wb` are the clusters' Hasse value weights aligned to the shared
/// universe's dense indices (see [`CompiledRelation::value_weights`]).
pub fn compiled_weighted_intersection(
    a: &CompiledRelation,
    wa: &[f64],
    b: &CompiledRelation,
    wb: &[f64],
) -> f64 {
    (0..a.num_values())
        .map(|i| {
            let common: u32 = a
                .row(i)
                .iter()
                .zip(b.row(i))
                .map(|(x, y)| (x & y).count_ones())
                .sum();
            f64::from(common) * 0.5 * (wa[i] + wb[i])
        })
        .sum()
}

/// `simᵈ_wj` on bit-rows: the weighted intersection over the weighted
/// union, with the tuples exclusive to one cluster (AND-NOT popcounts)
/// weighted by that cluster's weights alone.
pub fn compiled_weighted_jaccard(
    a: &CompiledRelation,
    wa: &[f64],
    b: &CompiledRelation,
    wb: &[f64],
) -> f64 {
    let mut wi = 0.0;
    let mut only_a = 0.0;
    let mut only_b = 0.0;
    for i in 0..a.num_values() {
        let (mut common, mut oa, mut ob) = (0u32, 0u32, 0u32);
        for (x, y) in a.row(i).iter().zip(b.row(i)) {
            common += (x & y).count_ones();
            oa += (x & !y).count_ones();
            ob += (!x & y).count_ones();
        }
        wi += f64::from(common) * 0.5 * (wa[i] + wb[i]);
        only_a += f64::from(oa) * wa[i];
        only_b += f64::from(ob) * wb[i];
    }
    let denom = wi + only_a + only_b;
    if denom == 0.0 {
        0.0
    } else {
        wi / denom
    }
}

impl ExactMeasure {
    /// The measure on one attribute's compiled bit-rows; `wa` / `wb` are the
    /// two clusters' Hasse value weights over the shared universe (ignored
    /// by the unweighted measures).
    pub fn compiled_attr_similarity(
        self,
        a: &CompiledRelation,
        wa: &[f64],
        b: &CompiledRelation,
        wb: &[f64],
    ) -> f64 {
        match self {
            ExactMeasure::IntersectionSize => compiled_intersection_size(a, b),
            ExactMeasure::Jaccard => compiled_jaccard(a, b),
            ExactMeasure::WeightedIntersectionSize => compiled_weighted_intersection(a, wa, b, wb),
            ExactMeasure::WeightedJaccard => compiled_weighted_jaccard(a, wa, b, wb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::ValueId;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    /// The three brand clusters of Table 3 / Examples 5.1–5.5.
    /// Apple=0, Lenovo=1, Samsung=2, Toshiba=3.
    fn u1() -> Relation {
        // U1: Apple ≻ Lenovo ≻ Samsung, Toshiba ≻ Samsung (closure adds Apple ≻ Samsung).
        Relation::from_pairs([(v(0), v(1)), (v(1), v(2)), (v(3), v(2))]).unwrap()
    }

    fn u2() -> Relation {
        // U2: Samsung ≻ Lenovo ≻ {Apple, Toshiba}.
        Relation::from_pairs([(v(2), v(1)), (v(1), v(0)), (v(1), v(3))]).unwrap()
    }

    fn u3() -> Relation {
        // U3: Lenovo ≻ Apple ≻ Samsung, Lenovo ≻ Toshiba, Lenovo ≻ Samsung.
        Relation::from_pairs([(v(1), v(0)), (v(0), v(2)), (v(1), v(3))]).unwrap()
    }

    #[test]
    fn example_5_1_intersection_sizes() {
        assert_eq!(intersection_size(&u1(), &u2()), 0.0);
        assert_eq!(intersection_size(&u1(), &u3()), 2.0); // (Apple,Samsung), (Lenovo,Samsung)
        assert_eq!(intersection_size(&u2(), &u3()), 2.0); // (Lenovo,Apple), (Lenovo,Toshiba)
    }

    #[test]
    fn example_5_2_jaccard() {
        assert!((jaccard(&u1(), &u3()) - 2.0 / 6.0).abs() < 1e-12);
        assert!((jaccard(&u2(), &u3()) - 2.0 / 7.0).abs() < 1e-12);
        assert_eq!(jaccard(&u1(), &u2()), 0.0);
    }

    #[test]
    fn example_5_4_weighted_intersection() {
        // Both pairs' better values (Apple, Lenovo resp. Lenovo) average to 3/4,
        // giving 3/2 for both cluster pairs.
        assert!((weighted_intersection(&u1(), &u3()) - 1.5).abs() < 1e-12);
        assert!((weighted_intersection(&u2(), &u3()) - 1.5).abs() < 1e-12);
        assert_eq!(weighted_intersection(&u1(), &u2()), 0.0);
    }

    #[test]
    fn example_5_5_weighted_jaccard_breaks_tie() {
        let wj13 = weighted_jaccard(&u1(), &u3());
        let wj23 = weighted_jaccard(&u2(), &u3());
        assert!((wj13 - 3.0 / 11.0).abs() < 1e-12, "got {wj13}");
        assert!((wj23 - 3.0 / 12.0).abs() < 1e-12, "got {wj23}");
        assert!(wj13 > wj23);
    }

    #[test]
    fn measures_are_symmetric() {
        for m in ExactMeasure::ALL {
            let ab = m.attr_similarity(&u1(), &u3());
            let ba = m.attr_similarity(&u3(), &u1());
            assert!((ab - ba).abs() < 1e-12, "{} not symmetric", m.name());
        }
    }

    #[test]
    fn empty_relations_have_zero_similarity() {
        let e = Relation::new();
        for m in ExactMeasure::ALL {
            assert_eq!(m.attr_similarity(&e, &e), 0.0, "{}", m.name());
            assert_eq!(m.attr_similarity(&e, &u1()), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn self_similarity_jaccard_is_one() {
        assert_eq!(jaccard(&u1(), &u1()), 1.0);
        assert_eq!(weighted_jaccard(&u1(), &u1()), 1.0);
    }

    #[test]
    fn preference_similarity_sums_over_attributes() {
        use pm_porder::Preference;
        let p1 = Preference::from_relations(vec![u1(), u1()]);
        let p2 = Preference::from_relations(vec![u3(), u3()]);
        let m = ExactMeasure::IntersectionSize;
        assert_eq!(m.similarity(&p1, &p2), 4.0);
    }

    #[test]
    fn compiled_measures_match_reference_on_table3() {
        let rels = [u1(), u2(), u3()];
        let mut universe: Vec<ValueId> = rels
            .iter()
            .flat_map(|r| r.values())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        universe.sort_unstable();
        let compiled: Vec<CompiledRelation> = rels
            .iter()
            .map(|r| CompiledRelation::compile_with_universe(r, &universe))
            .collect();
        let weights: Vec<Vec<f64>> = compiled.iter().map(|c| c.value_weights()).collect();
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                for m in ExactMeasure::ALL {
                    let reference = m.attr_similarity(&rels[i], &rels[j]);
                    let bitset = m.compiled_attr_similarity(
                        &compiled[i],
                        &weights[i],
                        &compiled[j],
                        &weights[j],
                    );
                    assert!(
                        (reference - bitset).abs() < 1e-12,
                        "{} mismatch on ({i}, {j}): {reference} vs {bitset}",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn measure_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            ExactMeasure::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
