//! # pm-cluster
//!
//! Clustering of users whose preferences are strict partial orders —
//! Sections 5 and 6 of Sultana & Li (EDBT 2018).
//!
//! * [`similarity`] — the four exact similarity measures between clusters'
//!   common preference relations: intersection size, Jaccard, weighted
//!   intersection size and weighted Jaccard (Eq. 1–5). Each comes in a
//!   hash-map reference form and a `compiled_*` bit-row form (word-wise
//!   AND + popcount) that the clustering loop runs on.
//! * [`approx_similarity`] — the frequency-vector Jaccard and weighted
//!   Jaccard measures used when clustering for approximate common
//!   preference relations (Eq. 9–10).
//! * [`agglomerative`] — conventional hierarchical agglomerative clustering
//!   with a branch cut `h`, producing [`Cluster`]s of users together with
//!   their virtual-user preferences.
//! * [`approx`] — `GetApproxPreferenceTuples` (Alg. 3), constructing
//!   approximate common preference relations under thresholds θ1 and θ2.
//! * [`maintain`] — an incrementally maintained [`Clustering`] for dynamic
//!   user populations: online insertion joins the most similar cluster (or
//!   spins up a singleton), removal repairs only the affected cluster by
//!   re-intersecting the remaining members' compiled relations, and an
//!   in-place preference update diffs the old and new relations to decide
//!   between a stay-put re-AND-fold and a local repair + re-insertion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod approx;
pub mod approx_similarity;
pub mod maintain;
pub mod similarity;

pub use agglomerative::{cluster_users, Cluster, ClusteringConfig, ClusteringOutcome};
pub use approx::{approx_common_preference, approx_common_relation, ApproxConfig};
pub use approx_similarity::{ApproxMeasure, FrequencyVectors};
pub use maintain::{Clustering, Placement, Removal, Update};
pub use similarity::{ExactMeasure, SimilarityMeasure};
