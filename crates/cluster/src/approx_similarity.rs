//! Approximate similarity measures over frequency vectors (Section 6.3,
//! Eq. 9–10).
//!
//! When clustering for *approximate* common preference relations, a cluster
//! `U` is summarised, per attribute, by a sparse vector indexed by ordered
//! value pairs: the entry for pair `A_i = (x, y)` is the fraction of member
//! users whose preference relation contains `A_i` (Jaccard variant), or the
//! member-averaged weight of the better value `x` among the members that
//! contain `A_i` (weighted variant). Cluster similarity is then the
//! generalised Jaccard similarity `Σ min / Σ max` of the two vectors,
//! summed over attributes.

use std::collections::HashMap;

use pm_model::{AttrId, ValueId};
use pm_porder::{HasseDiagram, Preference};

/// Which approximate (frequency-vector) measure to use (Sec. 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproxMeasure {
    /// Eq. 9: entries are membership fractions.
    Jaccard,
    /// Eq. 10: entries are member-averaged better-value weights.
    WeightedJaccard,
}

impl ApproxMeasure {
    /// Short, stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ApproxMeasure::Jaccard => "approx-jaccard",
            ApproxMeasure::WeightedJaccard => "approx-weighted-jaccard",
        }
    }
}

/// Sparse per-attribute frequency vectors for a cluster of users.
///
/// Internally stores *sums* over members plus the member count, so that two
/// clusters can be merged by adding their sums — the invariant exploited by
/// the agglomerative clustering loop.
#[derive(Debug, Clone, Default)]
pub struct FrequencyVectors {
    member_count: usize,
    attrs: Vec<HashMap<(ValueId, ValueId), f64>>,
}

impl FrequencyVectors {
    /// Builds the vectors of a singleton cluster containing just `pref`.
    pub fn of_user(pref: &Preference, measure: ApproxMeasure) -> Self {
        let mut attrs = Vec::with_capacity(pref.arity());
        for (_, rel) in pref.relations() {
            let mut map = HashMap::with_capacity(rel.len());
            match measure {
                ApproxMeasure::Jaccard => {
                    for pair in rel.pairs() {
                        map.insert(pair, 1.0);
                    }
                }
                ApproxMeasure::WeightedJaccard => {
                    let hasse = HasseDiagram::of(rel);
                    for (x, y) in rel.pairs() {
                        map.insert((x, y), hasse.weight(x));
                    }
                }
            }
            attrs.push(map);
        }
        Self {
            member_count: 1,
            attrs,
        }
    }

    /// Builds the vectors of a cluster from its members' preferences.
    pub fn of_users<'a, I>(prefs: I, measure: ApproxMeasure) -> Self
    where
        I: IntoIterator<Item = &'a Preference>,
    {
        let mut acc: Option<FrequencyVectors> = None;
        for pref in prefs {
            let single = Self::of_user(pref, measure);
            acc = Some(match acc {
                None => single,
                Some(prev) => prev.merge(&single),
            });
        }
        acc.unwrap_or_default()
    }

    /// Merges two clusters' vectors (sums add, member counts add).
    pub fn merge(&self, other: &FrequencyVectors) -> FrequencyVectors {
        let arity = self.attrs.len().max(other.attrs.len());
        let mut attrs = Vec::with_capacity(arity);
        for idx in 0..arity {
            let mut map = self.attrs.get(idx).cloned().unwrap_or_default();
            if let Some(other_map) = other.attrs.get(idx) {
                for (&pair, &v) in other_map {
                    *map.entry(pair).or_insert(0.0) += v;
                }
            }
            attrs.push(map);
        }
        FrequencyVectors {
            member_count: self.member_count + other.member_count,
            attrs,
        }
    }

    /// Number of member users summarised by these vectors.
    pub fn member_count(&self) -> usize {
        self.member_count
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The normalised vector entry for `pair` on attribute `attr`.
    pub fn frequency(&self, attr: AttrId, pair: (ValueId, ValueId)) -> f64 {
        if self.member_count == 0 {
            return 0.0;
        }
        self.attrs
            .get(attr.index())
            .and_then(|m| m.get(&pair))
            .copied()
            .unwrap_or(0.0)
            / self.member_count as f64
    }

    /// Generalised Jaccard similarity of two clusters on one attribute:
    /// `Σ_i min(U(i), V(i)) / Σ_i max(U(i), V(i))`.
    pub fn attr_similarity(&self, other: &FrequencyVectors, attr: AttrId) -> f64 {
        let empty = HashMap::new();
        let a = self.attrs.get(attr.index()).unwrap_or(&empty);
        let b = other.attrs.get(attr.index()).unwrap_or(&empty);
        let (na, nb) = (
            self.member_count.max(1) as f64,
            other.member_count.max(1) as f64,
        );
        let mut min_sum = 0.0;
        let mut max_sum = 0.0;
        for (&pair, &sa) in a {
            let fa = sa / na;
            let fb = b.get(&pair).copied().unwrap_or(0.0) / nb;
            min_sum += fa.min(fb);
            max_sum += fa.max(fb);
        }
        for (&pair, &sb) in b {
            if !a.contains_key(&pair) {
                max_sum += sb / nb;
            }
        }
        if max_sum == 0.0 {
            0.0
        } else {
            min_sum / max_sum
        }
    }

    /// Full similarity: per-attribute similarities summed (Eq. 1 applied to
    /// the approximate measures).
    pub fn similarity(&self, other: &FrequencyVectors) -> f64 {
        let arity = self.attrs.len().max(other.attrs.len());
        (0..arity)
            .map(|i| self.attr_similarity(other, AttrId::from(i)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;
    use pm_porder::Relation;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn pref(pairs: &[(u32, u32)]) -> Preference {
        let rel = Relation::from_pairs(pairs.iter().map(|&(x, y)| (v(x), v(y)))).unwrap();
        Preference::from_relations(vec![rel])
    }

    // Table 3 brand encoding: Apple=0, Lenovo=1, Samsung=2, Toshiba=3.
    // U1 members (Example 6.8): c1 = A≻L≻S, T≻L; c2 = A≻L≻S, T≻S.
    fn u1_members() -> Vec<Preference> {
        vec![
            pref(&[(0, 1), (1, 2), (3, 1)]),
            pref(&[(0, 1), (1, 2), (3, 2)]),
        ]
    }

    // U3 members: c5 = L≻{A,T}, A≻S, T≻S; c6 = L≻A≻{T,S}.
    fn u3_members() -> Vec<Preference> {
        vec![
            pref(&[(1, 0), (1, 3), (0, 2), (3, 2)]),
            pref(&[(1, 0), (0, 3), (0, 2)]),
        ]
    }

    #[test]
    fn example_6_8_unweighted_vectors_and_similarity() {
        let m = ApproxMeasure::Jaccard;
        let u1 = FrequencyVectors::of_users(&u1_members(), m);
        let u3 = FrequencyVectors::of_users(&u3_members(), m);
        let a = AttrId::new(0);
        // Spot-check the frequencies quoted in the paper.
        assert_eq!(u1.frequency(a, (v(0), v(1))), 1.0); // (Apple, Lenovo) = 2/2
        assert_eq!(u1.frequency(a, (v(3), v(1))), 0.5); // (Toshiba, Lenovo) = 1/2
        assert_eq!(u3.frequency(a, (v(0), v(3))), 0.5); // (Apple, Toshiba) = 1/2
        assert_eq!(u3.frequency(a, (v(1), v(0))), 1.0); // (Lenovo, Apple) = 2/2
        let sim = u1.similarity(&u3);
        assert!((sim - 2.5 / 7.0).abs() < 1e-12, "got {sim}"); // ≈ 0.36 in the paper
    }

    #[test]
    fn example_6_9_weighted_vectors_and_similarity() {
        let m = ApproxMeasure::WeightedJaccard;
        let u1 = FrequencyVectors::of_users(&u1_members(), m);
        let u3 = FrequencyVectors::of_users(&u3_members(), m);
        let a = AttrId::new(0);
        assert_eq!(u1.frequency(a, (v(1), v(2))), 0.5); // (Lenovo, Samsung): weights 1/2 both
        assert_eq!(u3.frequency(a, (v(0), v(3))), 0.25); // (Apple, Toshiba): 1/2 for one member
        assert_eq!(u3.frequency(a, (v(3), v(2))), 0.25); // (Toshiba, Samsung): 1/2 for one member
        let sim = u1.similarity(&u3);
        assert!((sim - 1.25 / 6.75).abs() < 1e-12, "got {sim}"); // ≈ 0.19 in the paper
    }

    #[test]
    fn merge_equals_batch_construction() {
        let m = ApproxMeasure::Jaccard;
        let members = u1_members();
        let merged = FrequencyVectors::of_user(&members[0], m)
            .merge(&FrequencyVectors::of_user(&members[1], m));
        let batch = FrequencyVectors::of_users(&members, m);
        assert_eq!(merged.member_count(), 2);
        let a = AttrId::new(0);
        for pair in [(v(0), v(1)), (v(3), v(1)), (v(1), v(2)), (v(3), v(2))] {
            assert_eq!(merged.frequency(a, pair), batch.frequency(a, pair));
        }
    }

    #[test]
    fn self_similarity_is_arity() {
        let m = ApproxMeasure::Jaccard;
        let u1 = FrequencyVectors::of_users(&u1_members(), m);
        assert!((u1.similarity(&u1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_has_zero_similarity() {
        let empty = FrequencyVectors::default();
        let u1 = FrequencyVectors::of_users(&u1_members(), ApproxMeasure::Jaccard);
        assert_eq!(empty.similarity(&u1), 0.0);
        assert_eq!(empty.member_count(), 0);
        assert_eq!(empty.frequency(AttrId::new(0), (v(0), v(1))), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        for m in [ApproxMeasure::Jaccard, ApproxMeasure::WeightedJaccard] {
            let u1 = FrequencyVectors::of_users(&u1_members(), m);
            let u3 = FrequencyVectors::of_users(&u3_members(), m);
            assert!((u1.similarity(&u3) - u3.similarity(&u1)).abs() < 1e-12);
        }
    }

    #[test]
    fn measure_names_are_distinct() {
        assert_ne!(
            ApproxMeasure::Jaccard.name(),
            ApproxMeasure::WeightedJaccard.name()
        );
    }
}
