//! Hierarchical agglomerative clustering of users with a branch cut.
//!
//! The paper (Sec. 5 and 8.2) clusters users with the conventional
//! agglomerative algorithm: every user starts as a singleton cluster, the
//! two most similar clusters are merged repeatedly, and the dendrogram is
//! cut at branch cut `h` — i.e. merging stops once no pair of clusters has
//! similarity ≥ `h`.
//!
//! Two families of similarity are supported:
//!
//! * **Exact** ([`ExactMeasure`]) — cluster similarity is computed on the
//!   clusters' *common preference relations*; the merged cluster's common
//!   relation is the per-attribute intersection of its parents'. The loop
//!   runs entirely on bitset-compiled relations sharing one interned
//!   universe per attribute: similarities are AND + popcount over bit-rows
//!   and a merge's common relation is a word-wise AND
//!   ([`pm_porder::CompiledRelation::intersect`]).
//! * **Approximate** ([`ApproxMeasure`]) — cluster similarity is computed on
//!   per-cluster frequency vectors (Sec. 6.3); merging adds the vectors.
//!   The merged cluster's exact common relation is still materialised for
//!   the output, while the *approximate* common relation (Alg. 3) is built
//!   later by [`crate::approx::approx_common_preference`].

use std::collections::{HashMap, HashSet};

use pm_model::{AttrId, UserId, ValueId};
use pm_porder::{CompiledRelation, Fingerprint, Preference, Relation};

use crate::approx_similarity::{ApproxMeasure, FrequencyVectors};
use crate::similarity::ExactMeasure;

/// Configuration of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusteringConfig {
    /// Cluster on exact common preference relations (Sec. 5).
    Exact {
        /// Which of the four exact similarity measures to use.
        measure: ExactMeasure,
        /// Branch cut `h`: minimum similarity required to merge.
        branch_cut: f64,
    },
    /// Cluster on frequency vectors (Sec. 6.3).
    Approx {
        /// Which approximate similarity measure to use.
        measure: ApproxMeasure,
        /// Branch cut `h`: minimum similarity required to merge.
        branch_cut: f64,
    },
}

impl ClusteringConfig {
    /// The branch cut `h` of this configuration.
    pub fn branch_cut(&self) -> f64 {
        match *self {
            ClusteringConfig::Exact { branch_cut, .. } => branch_cut,
            ClusteringConfig::Approx { branch_cut, .. } => branch_cut,
        }
    }
}

/// A cluster of users together with its virtual-user preference.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The member users of the cluster.
    pub members: Vec<UserId>,
    /// The exact common preference relation of the members (Def. 4.1),
    /// i.e. the preferences of the virtual user `U`.
    pub common: Preference,
}

impl Cluster {
    /// Number of member users.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never produced by clustering).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// One merge performed by the agglomerative loop, for dendrogram inspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// Index (into the evolving cluster list) of the surviving cluster.
    pub kept: usize,
    /// Index of the cluster merged into `kept` and removed.
    pub absorbed: usize,
    /// The similarity at which the merge happened.
    pub similarity: f64,
}

/// The result of a clustering pass.
#[derive(Debug, Clone)]
pub struct ClusteringOutcome {
    /// The final clusters (dendrogram cut at `h`).
    pub clusters: Vec<Cluster>,
    /// The sequence of merges performed, in order.
    pub merges: Vec<MergeStep>,
}

impl ClusteringOutcome {
    /// Number of clusters produced (`k` in the paper's cost model).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no clusters were produced (only for empty input).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The size of the largest cluster.
    pub fn largest_cluster(&self) -> usize {
        self.clusters.iter().map(Cluster::len).max().unwrap_or(0)
    }
}

/// The sorted value universe of every attribute across all users, so that
/// all clusters' compiled relations of one attribute share an index space.
pub(crate) fn attribute_universes(preferences: &[Preference], arity: usize) -> Vec<Vec<ValueId>> {
    let mut sets: Vec<HashSet<ValueId>> = vec![HashSet::new(); arity];
    for pref in preferences {
        for (attr, rel) in pref.relations() {
            sets[attr.index()].extend(rel.values());
        }
    }
    sets.into_iter()
        .map(|set| {
            let mut universe: Vec<ValueId> = set.into_iter().collect();
            universe.sort_unstable();
            universe
        })
        .collect()
}

/// One cluster's common preference relations as bit matrices (all clusters
/// share per-attribute universes) plus the Hasse value weights the weighted
/// measures need, aligned to the same dense indices.
///
/// Shared with [`crate::maintain::Clustering`], which keeps one such state
/// per user and per cluster to support incremental membership changes.
#[derive(Debug, Clone)]
pub(crate) struct ExactState {
    relations: Vec<CompiledRelation>,
    weights: Vec<Vec<f64>>,
}

impl ExactState {
    pub(crate) fn of_user(pref: &Preference, universes: &[Vec<ValueId>]) -> Self {
        let empty = Relation::new();
        let relations: Vec<CompiledRelation> = universes
            .iter()
            .enumerate()
            .map(|(idx, universe)| {
                let rel = if idx < pref.arity() {
                    pref.relation(AttrId::from(idx))
                } else {
                    &empty
                };
                CompiledRelation::compile_with_universe(rel, universe)
            })
            .collect();
        Self::with_weights(relations)
    }

    fn with_weights(relations: Vec<CompiledRelation>) -> Self {
        let weights = relations
            .iter()
            .map(CompiledRelation::value_weights)
            .collect();
        Self { relations, weights }
    }

    /// The merged cluster's common relation (Def. 4.1): a word-wise AND per
    /// attribute. No closure recomputation is needed (Theorem 4.2).
    pub(crate) fn merge(&self, other: &ExactState) -> ExactState {
        Self::with_weights(
            self.relations
                .iter()
                .zip(&other.relations)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        )
    }

    /// Cluster similarity: the measure summed over attributes (Eq. 1), each
    /// attribute an AND(+NOT) + popcount pass over the two bit matrices.
    pub(crate) fn similarity(&self, other: &ExactState, measure: ExactMeasure) -> f64 {
        self.relations
            .iter()
            .zip(&other.relations)
            .enumerate()
            .map(|(idx, (a, b))| {
                measure.compiled_attr_similarity(a, &self.weights[idx], b, &other.weights[idx])
            })
            .sum()
    }

    /// Decompiles into the [`Preference`] of the cluster's virtual user.
    pub(crate) fn to_preference(&self) -> Preference {
        Preference::from_relations(
            self.relations
                .iter()
                .map(CompiledRelation::to_relation)
                .collect(),
        )
    }
}

/// Internal per-cluster state during the agglomerative loop.
enum State {
    Exact(ExactState),
    Approx(FrequencyVectors),
}

struct Working {
    members: Vec<UserId>,
    /// Member indices into the original preference slice.
    member_idx: Vec<usize>,
    state: State,
}

/// Clusters `preferences` (indexed by user id) under `config`.
///
/// The returned clusters partition the users; singleton clusters are kept
/// as-is. Users are first bucketed by preference [`Fingerprint`] (with a
/// full equality check on collision), so the agglomerative loop runs over
/// *distinct* preferences weighted by multiplicity — identical users are
/// free, and build cost scales with the distinct-preference count rather
/// than the population size (the paper's Sec. 4 shared-preference premise).
/// The loop itself is the textbook O(d³) agglomerative procedure in the
/// distinct count `d`.
pub fn cluster_users(preferences: &[Preference], config: ClusteringConfig) -> ClusteringOutcome {
    let arity = preferences.iter().map(Preference::arity).max().unwrap_or(0);
    let universes = match config {
        ClusteringConfig::Exact { .. } => attribute_universes(preferences, arity),
        ClusteringConfig::Approx { .. } => Vec::new(),
    };
    // Group user indices by distinct preference, first occurrence first.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_fp: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
    for (idx, pref) in preferences.iter().enumerate() {
        let slot = by_fp.entry(pref.fingerprint()).or_default();
        match slot.iter().find(|&&g| &preferences[groups[g][0]] == pref) {
            Some(&g) => groups[g].push(idx),
            None => {
                slot.push(groups.len());
                groups.push(vec![idx]);
            }
        }
    }
    let mut working: Vec<Working> = groups
        .into_iter()
        .map(|member_idx| {
            let pref = &preferences[member_idx[0]];
            Working {
                members: member_idx.iter().map(|&i| UserId::from(i)).collect(),
                state: match config {
                    ClusteringConfig::Exact { .. } => {
                        // The exact measures are multiplicity-invariant
                        // (intersection is idempotent): one state per
                        // distinct preference suffices.
                        State::Exact(ExactState::of_user(pref, &universes))
                    }
                    ClusteringConfig::Approx { measure, .. } => {
                        // Frequency vectors are *not* multiplicity-invariant:
                        // weight the distinct preference by its member count.
                        State::Approx(FrequencyVectors::of_users(
                            std::iter::repeat(pref).take(member_idx.len()),
                            measure,
                        ))
                    }
                },
                member_idx,
            }
        })
        .collect();
    let mut merges = Vec::new();
    let h = config.branch_cut();

    // Pairwise similarity matrix, kept in sync with `working` so that each
    // merge only recomputes one row/column instead of the full matrix
    // (the textbook O(n²)-space agglomerative optimisation).
    let n = working.len();
    let mut sims: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = pair_similarity(&working[i], &working[j], &config);
            sims[i][j] = s;
            sims[j][i] = s;
        }
    }

    while working.len() > 1 {
        // Find the most similar pair.
        let mut best: Option<(usize, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)]
        for i in 0..working.len() {
            for j in (i + 1)..working.len() {
                let sim = sims[i][j];
                if best.map(|(_, _, b)| sim > b).unwrap_or(true) {
                    best = Some((i, j, sim));
                }
            }
        }
        let Some((i, j, sim)) = best else { break };
        if sim < h {
            break;
        }
        let absorbed = working.swap_remove(j);
        // Mirror the swap_remove in the similarity matrix.
        sims.swap_remove(j);
        for row in &mut sims {
            row.swap_remove(j);
        }
        let keeper = &mut working[i];
        keeper.members.extend(absorbed.members);
        keeper.member_idx.extend(absorbed.member_idx);
        keeper.state = match (&keeper.state, &absorbed.state) {
            (State::Exact(a), State::Exact(b)) => State::Exact(a.merge(b)),
            (State::Approx(a), State::Approx(b)) => State::Approx(a.merge(b)),
            _ => unreachable!("cluster states never mix within one run"),
        };
        // Refresh the merged cluster's similarities.
        for other in 0..working.len() {
            if other == i {
                continue;
            }
            let s = pair_similarity(&working[i], &working[other], &config);
            sims[i][other] = s;
            sims[other][i] = s;
        }
        merges.push(MergeStep {
            kept: i,
            absorbed: j,
            similarity: sim,
        });
    }

    let clusters = working
        .into_iter()
        .map(|w| {
            let common = match w.state {
                State::Exact(state) => state.to_preference(),
                // For the approximate path the exact common relation is still
                // the natural "virtual user" summary; the approximate relation
                // is derived separately with Alg. 3.
                State::Approx(_) => {
                    Preference::common_of(w.member_idx.iter().map(|&i| &preferences[i]))
                }
            };
            Cluster {
                members: w.members,
                common,
            }
        })
        .collect();
    ClusteringOutcome { clusters, merges }
}

fn pair_similarity(a: &Working, b: &Working, config: &ClusteringConfig) -> f64 {
    match (config, &a.state, &b.state) {
        (ClusteringConfig::Exact { measure, .. }, State::Exact(sa), State::Exact(sb)) => {
            sa.similarity(sb, *measure)
        }
        (ClusteringConfig::Approx { .. }, State::Approx(va), State::Approx(vb)) => {
            va.similarity(vb)
        }
        _ => unreachable!("cluster states never mix within one run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::ValueId;
    use pm_porder::Relation;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn pref(pairs: &[(u32, u32)]) -> Preference {
        let rel = Relation::from_pairs(pairs.iter().map(|&(x, y)| (v(x), v(y)))).unwrap();
        Preference::from_relations(vec![rel])
    }

    /// The six users of Table 3 (brand attribute only).
    /// Apple=0, Lenovo=1, Samsung=2, Toshiba=3.
    fn table3_users() -> Vec<Preference> {
        vec![
            pref(&[(0, 1), (1, 2), (3, 1)]),         // c1
            pref(&[(0, 1), (1, 2), (3, 2)]),         // c2
            pref(&[(2, 1), (1, 0), (1, 3)]),         // c3: Samsung ≻ Lenovo ≻ {Apple, Toshiba}
            pref(&[(2, 1), (1, 0), (1, 3), (0, 3)]), // c4: like c3 plus Apple ≻ Toshiba
            pref(&[(1, 0), (1, 3), (0, 2), (3, 2)]), // c5
            pref(&[(1, 0), (0, 3), (0, 2)]),         // c6
        ]
    }

    #[test]
    fn high_branch_cut_keeps_singletons() {
        let users = table3_users();
        let out = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 100.0,
            },
        );
        assert_eq!(out.len(), users.len());
        assert!(out.merges.is_empty());
        assert_eq!(out.largest_cluster(), 1);
    }

    #[test]
    fn zero_branch_cut_merges_everything() {
        let users = table3_users();
        let out = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::IntersectionSize,
                branch_cut: 0.0,
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.clusters[0].len(), 6);
        assert_eq!(out.merges.len(), 5);
    }

    #[test]
    fn clusters_partition_all_users() {
        let users = table3_users();
        for cfg in [
            ClusteringConfig::Exact {
                measure: ExactMeasure::Jaccard,
                branch_cut: 0.3,
            },
            ClusteringConfig::Approx {
                measure: ApproxMeasure::Jaccard,
                branch_cut: 0.3,
            },
        ] {
            let out = cluster_users(&users, cfg);
            let mut seen: Vec<u32> = out
                .clusters
                .iter()
                .flat_map(|c| c.members.iter().map(|u| u.raw()))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn example_5_5_weighted_jaccard_clusters() {
        // With weighted Jaccard and h ∈ (0, 3/11], the paper obtains
        // {{c1, c2, c5, c6}, {c3, c4}}.
        let users = table3_users();
        let out = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.2,
            },
        );
        assert_eq!(
            out.len(),
            2,
            "expected two clusters, got {:?}",
            out.clusters
        );
        let mut sizes: Vec<usize> = out.clusters.iter().map(Cluster::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4]);
        let big = out.clusters.iter().find(|c| c.len() == 4).unwrap();
        let mut members: Vec<u32> = big.members.iter().map(|u| u.raw()).collect();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 4, 5]);
    }

    #[test]
    fn common_preference_is_intersection_of_members() {
        let users = table3_users();
        let out = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::IntersectionSize,
                branch_cut: 0.0,
            },
        );
        let all = &out.clusters[0];
        let expected = Preference::common_of(users.iter());
        let attr = pm_model::AttrId::new(0);
        let got: std::collections::HashSet<_> = all.common.relation(attr).pairs().collect();
        let want: std::collections::HashSet<_> = expected.relation(attr).pairs().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn approx_path_reports_exact_common_relation() {
        let users = table3_users();
        let out = cluster_users(
            &users,
            ClusteringConfig::Approx {
                measure: ApproxMeasure::WeightedJaccard,
                branch_cut: 0.0,
            },
        );
        assert_eq!(out.len(), 1);
        let attr = pm_model::AttrId::new(0);
        let expected = Preference::common_of(users.iter());
        assert_eq!(
            out.clusters[0].common.relation(attr).len(),
            expected.relation(attr).len()
        );
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        let out = cluster_users(
            &[],
            ClusteringConfig::Exact {
                measure: ExactMeasure::Jaccard,
                branch_cut: 0.5,
            },
        );
        assert!(out.is_empty());
        assert_eq!(out.largest_cluster(), 0);
    }

    #[test]
    fn single_user_is_its_own_cluster() {
        let users = vec![pref(&[(0, 1)])];
        let out = cluster_users(
            &users,
            ClusteringConfig::Approx {
                measure: ApproxMeasure::Jaccard,
                branch_cut: 0.5,
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.clusters[0].members, vec![UserId::new(0)]);
    }

    /// Many users sharing few distinct preferences must cluster exactly as
    /// the distinct set does — the dedup pass only changes the work done,
    /// never the outcome (Lemma 4.6: twins are maximally similar, so they
    /// always travel together).
    #[test]
    fn duplicated_population_clusters_like_its_distinct_preferences() {
        let distinct = table3_users();
        let copies = 5usize;
        // Interleave the copies so twins are not adjacent in user-id order.
        let users: Vec<Preference> = (0..distinct.len() * copies)
            .map(|i| distinct[i % distinct.len()].clone())
            .collect();
        let config = ClusteringConfig::Exact {
            measure: ExactMeasure::WeightedJaccard,
            branch_cut: 0.2,
        };
        let base = cluster_users(&distinct, config);
        let out = cluster_users(&users, config);
        assert_eq!(out.len(), base.len());
        // Pairwise merges happen between distinct groups only, so the merge
        // log is bounded by the distinct count, not the user count.
        assert!(
            out.merges.len() < distinct.len(),
            "{} merges for {} distinct preferences",
            out.merges.len(),
            distinct.len()
        );
        for cluster in &out.clusters {
            // Which distinct preference each member holds (user i % 6).
            let kinds: HashSet<usize> = cluster
                .members
                .iter()
                .map(|u| u.index() % distinct.len())
                .collect();
            // Every twin of those kinds is present …
            assert_eq!(cluster.members.len(), kinds.len() * copies);
            // … and the kinds form exactly one cluster of the distinct run.
            let twin = base
                .clusters
                .iter()
                .find(|c| c.members.iter().map(|u| u.index()).collect::<HashSet<_>>() == kinds)
                .unwrap_or_else(|| panic!("no base cluster with kinds {kinds:?}"));
            let want: HashSet<_> = twin.common.relation(AttrId::new(0)).pairs().collect();
            let got: HashSet<_> = cluster.common.relation(AttrId::new(0)).pairs().collect();
            assert_eq!(got, want);
        }
    }

    /// The approx path weights its frequency vectors by multiplicity: a
    /// duplicated population still partitions every user and reports the
    /// exact common relation per cluster.
    #[test]
    fn approx_path_weights_duplicates_by_multiplicity() {
        let distinct = table3_users();
        let users: Vec<Preference> = (0..distinct.len() * 4)
            .map(|i| distinct[i % distinct.len()].clone())
            .collect();
        let out = cluster_users(
            &users,
            ClusteringConfig::Approx {
                measure: ApproxMeasure::Jaccard,
                branch_cut: 0.3,
            },
        );
        let mut seen: Vec<UserId> = out
            .clusters
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        seen.sort();
        let expected: Vec<UserId> = (0..users.len()).map(UserId::from).collect();
        assert_eq!(seen, expected);
        for cluster in &out.clusters {
            let expected =
                Preference::common_of(cluster.members.iter().map(|&m| &users[m.index()]));
            let want: HashSet<_> = expected.relation(AttrId::new(0)).pairs().collect();
            let got: HashSet<_> = cluster.common.relation(AttrId::new(0)).pairs().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn branch_cut_accessor_matches_config() {
        assert_eq!(
            ClusteringConfig::Exact {
                measure: ExactMeasure::Jaccard,
                branch_cut: 0.7
            }
            .branch_cut(),
            0.7
        );
        assert_eq!(
            ClusteringConfig::Approx {
                measure: ApproxMeasure::Jaccard,
                branch_cut: 0.4
            }
            .branch_cut(),
            0.4
        );
    }
}
