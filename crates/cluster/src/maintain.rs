//! Incrementally maintained clustering for dynamic user populations.
//!
//! The agglomerative pass of [`crate::cluster_users`] is a build-time
//! operation: it assumes the whole population is known before the stream
//! starts. Online REGISTER/UNREGISTER traffic instead needs
//! *dendrogram-local repair*:
//!
//! * [`Clustering::insert_user`] either joins the most similar existing
//!   cluster — when that similarity clears the branch cut `h`, exactly the
//!   agglomerative merge criterion — or spins up a new singleton cluster.
//!   Joining recomputes the cluster's common preference relation as a
//!   word-wise AND ([`pm_porder::CompiledRelation::intersect`]) of the old
//!   common relation and the new member's relations.
//! * [`Clustering::remove_user`] shrinks the user's cluster, recomputing
//!   its common relation as the AND-fold of the remaining members'
//!   compiled relations, or dissolves the cluster entirely when the last
//!   member leaves.
//! * [`Clustering::update_user`] changes a user's preference *in place* by
//!   diffing the old and new compiled relations against the user's current
//!   cluster: when the new relations still clear the branch cut against the
//!   remaining members' common relation the user stays put and only that
//!   cluster's common relation is re-AND-folded; otherwise the cluster is
//!   locally repaired and the user re-inserted as if newly registered.
//!
//! State is keyed by **distinct preference**, not by user: users are
//! bucketed by preference [`Fingerprint`] (full equality check on
//! collision) into slab entries, each holding one compiled `ExactState`
//! and a member list. A user whose preference already exists joins its
//! twin's entry — and therefore its twin's cluster — in O(1), with no
//! similarity scan and no state change (intersection is idempotent);
//! AND-folds and universe recompiles run over distinct entries only. Churn
//! and memory thus scale with the distinct-preference count, cashing in the
//! paper's Sec. 4 premise that real users share preferences. The one
//! deliberate exception: a user alone in its cluster never moves on update
//! (callers rely on updates never dissolving a cluster), so two entries
//! with the same fingerprint may coexist in different clusters.
//!
//! All states live on shared per-attribute value universes; a registered
//! user mentioning a never-seen value triggers the one slow path: the
//! universes grow and every stored entry is recompiled.

use std::collections::HashMap;

use pm_model::{UserId, ValueId};
use pm_porder::{Fingerprint, Preference};

use crate::agglomerative::{attribute_universes, cluster_users, Cluster, ExactState};
use crate::{ClusteringConfig, ExactMeasure};

/// Where [`Clustering::insert_user`] placed a user.
#[derive(Debug, Clone)]
pub enum Placement {
    /// The user joined existing cluster `cluster`, whose common preference
    /// relation shrank to `common` (the old common relation intersected
    /// with the user's relations — unchanged when the user joined an
    /// identical-preference twin).
    Joined {
        /// Index of the joined cluster.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// No cluster was similar enough (or none existed): the user became a
    /// new singleton cluster, appended at index `cluster`.
    Singleton {
        /// Index of the new singleton cluster (`num_clusters() - 1`).
        cluster: usize,
    },
}

impl Placement {
    /// The index of the cluster the user ended up in.
    pub fn cluster(&self) -> usize {
        match *self {
            Placement::Joined { cluster, .. } | Placement::Singleton { cluster } => cluster,
        }
    }
}

/// What [`Clustering::remove_user`] did to the user's cluster.
#[derive(Debug, Clone)]
pub enum Removal {
    /// Cluster `cluster` lost the user; its common preference relation was
    /// recomputed from the remaining members as `common` (unchanged when an
    /// identical-preference twin remains).
    Shrunk {
        /// Index of the shrunk cluster.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// The user was the cluster's last member: the cluster at `cluster`
    /// was removed by swap-remove (the previously-last cluster now holds
    /// this index).
    Dissolved {
        /// Index the dissolved cluster occupied.
        cluster: usize,
    },
}

/// What [`Clustering::update_user`] did with the user's new preference.
#[derive(Debug, Clone)]
pub enum Update {
    /// The new relations still clear the branch cut against the rest of the
    /// user's cluster (trivially so for a singleton): the user stayed in
    /// `cluster` and its common preference relation was re-AND-folded to
    /// `common`.
    Stayed {
        /// Index of the cluster the user stayed in.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// The new relations no longer fit: the user left its old cluster and
    /// was re-inserted under the ordinary placement rule (`to`). The old
    /// cluster always *shrinks* — a singleton would have stayed put — so
    /// no cluster index shifts before `to` is applied; the variant carries
    /// the shrunk cluster's index and recomputed common relation directly
    /// to make dissolution unrepresentable.
    Moved {
        /// Index of the cluster the user left.
        from_cluster: usize,
        /// That cluster's recomputed common preference relation.
        from_common: Preference,
        /// Where the user landed.
        to: Placement,
    },
}

/// One distinct preference: its compiled state plus every user holding it.
/// An entry belongs to exactly one cluster; its members are a subset of
/// that cluster's members.
#[derive(Debug, Clone)]
struct DistinctEntry {
    fingerprint: Fingerprint,
    preference: Preference,
    state: ExactState,
    members: Vec<UserId>,
    cluster: usize,
}

#[derive(Debug, Clone)]
struct MaintainedCluster {
    /// Member users in insertion order (the caller-facing view).
    members: Vec<UserId>,
    /// Distinct-preference entries making up this cluster; the state fold
    /// runs over these, not over users.
    entries: Vec<u32>,
    state: ExactState,
}

/// A clustering of users that tracks membership changes incrementally.
///
/// Built once with the agglomerative algorithm over the initial population,
/// then maintained under churn with dendrogram-local repair (see the module
/// docs). The caller chooses the user-id space: ids only need to be unique,
/// not dense.
#[derive(Debug, Clone)]
pub struct Clustering {
    measure: ExactMeasure,
    branch_cut: f64,
    universes: Vec<Vec<ValueId>>,
    /// Slab of distinct-preference entries; freed slots are recycled.
    entries: Vec<Option<DistinctEntry>>,
    free: Vec<u32>,
    /// Fingerprint → live entry ids (more than one only on hash collision
    /// or for same-preference entries pinned in different clusters by the
    /// singleton stay-put rule).
    by_fp: HashMap<Fingerprint, Vec<u32>>,
    /// User → entry id holding its preference.
    users: HashMap<UserId, u32>,
    clusters: Vec<MaintainedCluster>,
}

impl Clustering {
    /// Clusters `preferences` (indexed by user id) with the agglomerative
    /// algorithm under `measure` and `branch_cut`, keeping the compiled
    /// state needed for later incremental maintenance.
    pub fn new(preferences: &[Preference], measure: ExactMeasure, branch_cut: f64) -> Self {
        let outcome = cluster_users(
            preferences,
            ClusteringConfig::Exact {
                measure,
                branch_cut,
            },
        );
        let arity = preferences.iter().map(Preference::arity).max().unwrap_or(0);
        let universes = attribute_universes(preferences, arity);
        let mut this = Self {
            measure,
            branch_cut,
            universes,
            entries: Vec::new(),
            free: Vec::new(),
            by_fp: HashMap::new(),
            users: HashMap::new(),
            clusters: Vec::new(),
        };
        for cluster in &outcome.clusters {
            let cidx = this.clusters.len();
            let state = ExactState::of_user(&cluster.common, &this.universes);
            this.clusters.push(MaintainedCluster {
                members: cluster.members.clone(),
                entries: Vec::new(),
                state,
            });
            for &member in &cluster.members {
                this.attach_in_cluster(member, &preferences[member.index()], None, cidx);
            }
        }
        this
    }

    /// The similarity measure merges are judged by.
    pub fn measure(&self) -> ExactMeasure {
        self.measure
    }

    /// The branch cut `h` a join must clear.
    pub fn branch_cut(&self) -> f64 {
        self.branch_cut
    }

    /// Number of clustered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Whether no users are clustered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of distinct preferences across the population (live slab
    /// entries). Entries pinned in different clusters by the singleton
    /// stay-put rule count separately.
    pub fn distinct_preferences(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether `user` is currently clustered.
    pub fn contains(&self, user: UserId) -> bool {
        self.users.contains_key(&user)
    }

    /// The stored preference of `user`, if clustered.
    pub fn preference_of(&self, user: UserId) -> Option<&Preference> {
        self.users
            .get(&user)
            .map(|&eid| &self.entry(eid).preference)
    }

    /// The index of the cluster containing `user`, if any. O(1): the
    /// user's distinct-preference entry tracks its cluster index.
    pub fn cluster_of(&self, user: UserId) -> Option<usize> {
        self.users.get(&user).map(|&eid| self.entry(eid).cluster)
    }

    /// The members of cluster `cluster`, in insertion order.
    pub fn members(&self, cluster: usize) -> &[UserId] {
        &self.clusters[cluster].members
    }

    /// The common preference relation of cluster `cluster` (Def. 4.1),
    /// decompiled from the maintained bit matrices.
    pub fn common_preference(&self, cluster: usize) -> Preference {
        self.clusters[cluster].state.to_preference()
    }

    /// All clusters as [`Cluster`] values (members + exact common
    /// preference), e.g. for constructing a FilterThenVerify monitor.
    pub fn clusters(&self) -> Vec<Cluster> {
        self.clusters
            .iter()
            .map(|cluster| Cluster {
                members: cluster.members.clone(),
                common: cluster.state.to_preference(),
            })
            .collect()
    }

    fn entry(&self, eid: u32) -> &DistinctEntry {
        self.entries[eid as usize]
            .as_ref()
            .expect("entry id points at a live slot")
    }

    fn entry_mut(&mut self, eid: u32) -> &mut DistinctEntry {
        self.entries[eid as usize]
            .as_mut()
            .expect("entry id points at a live slot")
    }

    /// Extends the shared universes to cover `pref`, recompiling every
    /// stored state when they grow — the rare slow path taken when a
    /// registered user mentions a value (or attribute) never seen before.
    /// Recompilation touches each *distinct* preference once.
    fn ensure_covered(&mut self, pref: &Preference) {
        let covered = pref.arity() <= self.universes.len()
            && pref.relations().all(|(attr, rel)| {
                let universe = &self.universes[attr.index()];
                rel.values()
                    .into_iter()
                    .all(|v| universe.binary_search(&v).is_ok())
            });
        if covered {
            return;
        }
        let all: Vec<Preference> = self
            .entries
            .iter()
            .flatten()
            .map(|entry| entry.preference.clone())
            .chain([pref.clone()])
            .collect();
        let arity = all.iter().map(Preference::arity).max().unwrap_or(0);
        self.universes = attribute_universes(&all, arity);
        for entry in self.entries.iter_mut().flatten() {
            entry.state = ExactState::of_user(&entry.preference, &self.universes);
        }
        for idx in 0..self.clusters.len() {
            let entry_ids = self.clusters[idx].entries.clone();
            self.clusters[idx].state = self.fold_entries(&entry_ids);
        }
    }

    /// The AND-fold of the entries' compiled relations: the cluster's
    /// common preference relation per Def. 4.1 / Theorem 4.2. Folding over
    /// distinct entries equals folding over users because intersection is
    /// idempotent.
    fn fold_entries(&self, entry_ids: &[u32]) -> ExactState {
        let mut iter = entry_ids.iter();
        let first = iter.next().expect("a cluster has at least one entry");
        let mut state = self.entry(*first).state.clone();
        for &eid in iter {
            state = state.merge(&self.entry(eid).state);
        }
        state
    }

    /// Finds the entry holding exactly `preference` (fingerprint bucket +
    /// full equality), optionally restricted to one cluster.
    fn find_entry(
        &self,
        fingerprint: Fingerprint,
        preference: &Preference,
        cluster: Option<usize>,
    ) -> Option<u32> {
        self.by_fp.get(&fingerprint).and_then(|ids| {
            ids.iter().copied().find(|&eid| {
                let entry = self.entry(eid);
                cluster.map_or(true, |c| entry.cluster == c) && entry.preference == *preference
            })
        })
    }

    /// Adds `user` to cluster `cidx`'s entry for `preference`, allocating a
    /// fresh slab entry (compiling `state` if not supplied) when the
    /// cluster holds no identical-preference twin. Maintains `users`,
    /// `by_fp`, and the cluster's entry list — but not the cluster's member
    /// list or state, which the caller owns.
    fn attach_in_cluster(
        &mut self,
        user: UserId,
        preference: &Preference,
        state: Option<ExactState>,
        cidx: usize,
    ) -> u32 {
        let fingerprint = preference.fingerprint();
        let eid = match self.find_entry(fingerprint, preference, Some(cidx)) {
            Some(eid) => eid,
            None => {
                let state =
                    state.unwrap_or_else(|| ExactState::of_user(preference, &self.universes));
                let entry = DistinctEntry {
                    fingerprint,
                    preference: preference.clone(),
                    state,
                    members: Vec::new(),
                    cluster: cidx,
                };
                let eid = match self.free.pop() {
                    Some(eid) => {
                        self.entries[eid as usize] = Some(entry);
                        eid
                    }
                    None => {
                        self.entries.push(Some(entry));
                        (self.entries.len() - 1) as u32
                    }
                };
                self.by_fp.entry(fingerprint).or_default().push(eid);
                self.clusters[cidx].entries.push(eid);
                eid
            }
        };
        self.entry_mut(eid).members.push(user);
        self.users.insert(user, eid);
        eid
    }

    /// Removes `user` from its entry's member list, freeing the entry (and
    /// unlinking it from its cluster's entry list) when it empties. Does
    /// not touch `users` or the cluster's member list/state.
    fn detach_from_entry(&mut self, user: UserId, eid: u32) {
        let entry = self.entry_mut(eid);
        entry.members.retain(|&member| member != user);
        if entry.members.is_empty() {
            let fingerprint = entry.fingerprint;
            let cidx = entry.cluster;
            self.entries[eid as usize] = None;
            self.free.push(eid);
            if let Some(ids) = self.by_fp.get_mut(&fingerprint) {
                ids.retain(|&other| other != eid);
                if ids.is_empty() {
                    self.by_fp.remove(&fingerprint);
                }
            }
            self.clusters[cidx].entries.retain(|&other| other != eid);
        }
    }

    /// Inserts `user` with `preference`. A user whose exact preference is
    /// already clustered joins its twin's entry — and cluster — in O(1):
    /// identical preferences are maximally similar by construction, and the
    /// common relation is unchanged (AND with itself). Otherwise the
    /// ordinary rule applies: join the most similar cluster if that
    /// similarity reaches the branch cut, else create a new singleton
    /// cluster.
    ///
    /// # Panics
    /// Panics if `user` is already clustered.
    pub fn insert_user(&mut self, user: UserId, preference: &Preference) -> Placement {
        assert!(
            !self.users.contains_key(&user),
            "user {user} is already clustered"
        );
        self.ensure_covered(preference);
        let fingerprint = preference.fingerprint();
        if let Some(eid) = self.find_entry(fingerprint, preference, None) {
            let cidx = self.entry(eid).cluster;
            self.entry_mut(eid).members.push(user);
            self.users.insert(user, eid);
            self.clusters[cidx].members.push(user);
            return Placement::Joined {
                cluster: cidx,
                common: self.clusters[cidx].state.to_preference(),
            };
        }
        let state = ExactState::of_user(preference, &self.universes);
        let mut best: Option<(usize, f64)> = None;
        for (idx, cluster) in self.clusters.iter().enumerate() {
            let sim = state.similarity(&cluster.state, self.measure);
            if best.map(|(_, b)| sim > b).unwrap_or(true) {
                best = Some((idx, sim));
            }
        }
        match best {
            Some((idx, sim)) if sim >= self.branch_cut => {
                self.clusters[idx].members.push(user);
                self.clusters[idx].state = self.clusters[idx].state.merge(&state);
                self.attach_in_cluster(user, preference, Some(state), idx);
                Placement::Joined {
                    cluster: idx,
                    common: self.clusters[idx].state.to_preference(),
                }
            }
            _ => {
                let idx = self.clusters.len();
                self.clusters.push(MaintainedCluster {
                    members: vec![user],
                    entries: Vec::new(),
                    state: state.clone(),
                });
                self.attach_in_cluster(user, preference, Some(state), idx);
                Placement::Singleton { cluster: idx }
            }
        }
    }

    /// Removes `user`, repairing only its own cluster. When an
    /// identical-preference twin remains, the cluster's common relation is
    /// unchanged and no fold runs at all.
    ///
    /// # Panics
    /// Panics if `user` is not clustered.
    pub fn remove_user(&mut self, user: UserId) -> Removal {
        let eid = self
            .users
            .remove(&user)
            .unwrap_or_else(|| panic!("user {user} is not clustered"));
        let cidx = self.entry(eid).cluster;
        let entry_survives = self.entry(eid).members.len() > 1;
        self.detach_from_entry(user, eid);
        self.clusters[cidx].members.retain(|&member| member != user);
        if self.clusters[cidx].members.is_empty() {
            self.clusters.swap_remove(cidx);
            // The previously-last cluster moved into slot `cidx`: repoint
            // its entries.
            if cidx < self.clusters.len() {
                let moved = self.clusters[cidx].entries.clone();
                for other in moved {
                    self.entry_mut(other).cluster = cidx;
                }
            }
            return Removal::Dissolved { cluster: cidx };
        }
        if !entry_survives {
            let entry_ids = self.clusters[cidx].entries.clone();
            self.clusters[cidx].state = self.fold_entries(&entry_ids);
        }
        Removal::Shrunk {
            cluster: cidx,
            common: self.clusters[cidx].state.to_preference(),
        }
    }

    /// Replaces the preference of `user` in place, diffing the old and new
    /// compiled relations against the user's current cluster.
    ///
    /// When the new relations still clear the branch cut against the
    /// AND-fold of the *other* members' relations, the user stays in its
    /// cluster and only that cluster's common relation is recomputed (one
    /// AND-fold over the cluster's distinct entries — no membership change
    /// anywhere). A singleton trivially stays put: its common relation just
    /// becomes the new preference. Otherwise the old cluster is repaired
    /// exactly as by [`Self::remove_user`] and the user re-inserted exactly
    /// as by [`Self::insert_user`] — but the user id never changes, so
    /// callers need no renumbering.
    ///
    /// # Panics
    /// Panics if `user` is not clustered.
    pub fn update_user(&mut self, user: UserId, preference: &Preference) -> Update {
        assert!(
            self.users.contains_key(&user),
            "user {user} is not clustered"
        );
        self.ensure_covered(preference);
        let old_eid = self.users[&user];
        let cidx = self.entry(old_eid).cluster;
        if self.entry(old_eid).preference == *preference {
            // The preference didn't actually change: nothing to re-fold.
            return Update::Stayed {
                cluster: cidx,
                common: self.clusters[cidx].state.to_preference(),
            };
        }
        if self.clusters[cidx].members.len() == 1 {
            // A singleton is always at least as similar to itself as the
            // branch cut requires: stay put, the common relation IS the
            // user's new relations. (Deliberately no twin-join across
            // clusters here — callers rely on updates never dissolving a
            // cluster.)
            let state = ExactState::of_user(preference, &self.universes);
            self.detach_from_entry(user, old_eid);
            self.attach_in_cluster(user, preference, Some(state.clone()), cidx);
            self.clusters[cidx].state = state;
            return Update::Stayed {
                cluster: cidx,
                common: self.clusters[cidx].state.to_preference(),
            };
        }
        // The AND-fold of the cluster *without* this user: its old entry
        // still participates iff a twin remains in it.
        let rest_entries: Vec<u32> = self.clusters[cidx]
            .entries
            .iter()
            .copied()
            .filter(|&eid| eid != old_eid || self.entry(old_eid).members.len() > 1)
            .collect();
        let state = ExactState::of_user(preference, &self.universes);
        let rest = self.fold_entries(&rest_entries);
        let sim = state.similarity(&rest, self.measure);
        if sim >= self.branch_cut {
            self.detach_from_entry(user, old_eid);
            self.attach_in_cluster(user, preference, Some(state.clone()), cidx);
            self.clusters[cidx].state = rest.merge(&state);
            return Update::Stayed {
                cluster: cidx,
                common: self.clusters[cidx].state.to_preference(),
            };
        }
        // The changed preference no longer fits: local repair + re-insertion.
        // The cluster has other members, so it always shrinks (never
        // dissolves) and no cluster index shifts before the insertion. The
        // AND-fold of the remaining entries was already computed for the
        // branch-cut test, so the repair reuses it instead of re-folding.
        self.detach_from_entry(user, old_eid);
        self.clusters[cidx].members.retain(|&member| member != user);
        self.clusters[cidx].state = rest;
        let from_common = self.clusters[cidx].state.to_preference();
        self.users.remove(&user);
        let to = self.insert_user(user, preference);
        Update::Moved {
            from_cluster: cidx,
            from_common,
            to,
        }
    }

    /// Renames `old` to `new` without touching any cluster state. Used by
    /// callers that renumber users on swap-remove.
    ///
    /// # Panics
    /// Panics if `old` is not clustered or `new` already is.
    pub fn rename_user(&mut self, old: UserId, new: UserId) {
        if old == new {
            return;
        }
        assert!(
            !self.users.contains_key(&new),
            "user {new} is already clustered"
        );
        let eid = self
            .users
            .remove(&old)
            .unwrap_or_else(|| panic!("user {old} is not clustered"));
        self.users.insert(new, eid);
        let cidx = self.entry(eid).cluster;
        for member in &mut self.entry_mut(eid).members {
            if *member == old {
                *member = new;
            }
        }
        for member in &mut self.clusters[cidx].members {
            if *member == old {
                *member = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;
    use pm_porder::Relation;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn pref(pairs: &[(u32, u32)]) -> Preference {
        let rel = Relation::from_pairs(pairs.iter().map(|&(x, y)| (v(x), v(y)))).unwrap();
        Preference::from_relations(vec![rel])
    }

    /// The six users of Table 3 (brand attribute only).
    fn table3_users() -> Vec<Preference> {
        vec![
            pref(&[(0, 1), (1, 2), (3, 1)]),
            pref(&[(0, 1), (1, 2), (3, 2)]),
            pref(&[(2, 1), (1, 0), (1, 3)]),
            pref(&[(2, 1), (1, 0), (1, 3), (0, 3)]),
            pref(&[(1, 0), (1, 3), (0, 2), (3, 2)]),
            pref(&[(1, 0), (0, 3), (0, 2)]),
        ]
    }

    fn assert_common_matches(clustering: &Clustering) {
        for k in 0..clustering.num_clusters() {
            let members = clustering.members(k).to_vec();
            assert!(!members.is_empty(), "cluster {k} is empty");
            let expected = Preference::common_of(
                members
                    .iter()
                    .map(|&m| clustering.preference_of(m).expect("member has preference")),
            );
            let got = clustering.common_preference(k);
            let arity = expected.arity().max(got.arity());
            for attr in 0..arity {
                let attr = AttrId::from(attr);
                let want: std::collections::HashSet<_> = if attr.index() < expected.arity() {
                    expected.relation(attr).pairs().collect()
                } else {
                    Default::default()
                };
                let have: std::collections::HashSet<_> = if attr.index() < got.arity() {
                    got.relation(attr).pairs().collect()
                } else {
                    Default::default()
                };
                assert_eq!(have, want, "cluster {k} attribute {attr}");
            }
        }
    }

    /// Entry bookkeeping invariants: members partition across entries,
    /// entry member lists agree with cluster member lists, `users` points
    /// at the right slots.
    fn assert_entries_consistent(clustering: &Clustering) {
        let mut seen = 0usize;
        for k in 0..clustering.num_clusters() {
            let cluster_members: std::collections::HashSet<UserId> =
                clustering.members(k).iter().copied().collect();
            let mut entry_members: std::collections::HashSet<UserId> = Default::default();
            for entry in clustering.clusters[k]
                .entries
                .iter()
                .map(|&eid| clustering.entry(eid))
            {
                assert_eq!(entry.cluster, k, "entry points at its cluster");
                assert!(!entry.members.is_empty(), "no dead entries in clusters");
                assert_eq!(entry.fingerprint, entry.preference.fingerprint());
                for &m in &entry.members {
                    assert!(entry_members.insert(m), "user {m} in two entries");
                    assert_eq!(
                        clustering.users.get(&m),
                        clustering.clusters[k]
                            .entries
                            .iter()
                            .find(|&&eid| clustering.entry(eid).members.contains(&m)),
                        "users map points at the member's entry"
                    );
                }
            }
            assert_eq!(entry_members, cluster_members, "cluster {k} partition");
            seen += cluster_members.len();
        }
        assert_eq!(seen, clustering.num_users());
    }

    #[test]
    fn build_matches_agglomerative_outcome() {
        let users = table3_users();
        let clustering = Clustering::new(&users, ExactMeasure::WeightedJaccard, 0.2);
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.2,
            },
        );
        assert_eq!(clustering.num_clusters(), outcome.len());
        assert_eq!(clustering.num_users(), users.len());
        assert_eq!(clustering.distinct_preferences(), users.len());
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn insert_joins_similar_cluster_and_intersects_common() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users[..4], ExactMeasure::WeightedJaccard, 0.2);
        // c5 is similar to the {c1, c2} side of Table 3; with the paper's
        // branch cut it joins an existing cluster rather than staying alone.
        let placement = clustering.insert_user(UserId::new(4), &users[4]);
        assert!(
            matches!(placement, Placement::Joined { .. }),
            "{placement:?}"
        );
        assert_common_matches(&clustering);
        assert_eq!(clustering.num_users(), 5);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn insert_far_user_becomes_singleton() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        // An impossible branch cut keeps everything singleton.
        assert_eq!(clustering.num_clusters(), users.len());
        let extra = pref(&[(5, 6)]);
        let placement = clustering.insert_user(UserId::new(99), &extra);
        assert!(
            matches!(placement, Placement::Singleton { .. }),
            "{placement:?}"
        );
        assert_eq!(placement.cluster(), clustering.num_clusters() - 1);
        assert_eq!(clustering.cluster_of(UserId::new(99)), Some(users.len()));
        assert_common_matches(&clustering);
    }

    #[test]
    fn twin_insert_joins_its_twins_cluster_without_a_scan() {
        let users = table3_users();
        // Even under an impossible branch cut, an *identical* preference
        // joins its twin: identical preferences are maximally similar by
        // construction, and sharing the entry is what makes churn scale
        // with distinct preferences.
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let clusters_before = clustering.num_clusters();
        let placement = clustering.insert_user(UserId::new(10), &users[2]);
        match placement {
            Placement::Joined {
                cluster,
                ref common,
            } => {
                assert_eq!(Some(cluster), clustering.cluster_of(UserId::new(2)));
                // Common relation unchanged: AND with itself.
                assert_eq!(common, &clustering.common_preference(cluster));
            }
            ref other => panic!("twin must join, got {other:?}"),
        }
        assert_eq!(clustering.num_clusters(), clusters_before);
        assert_eq!(clustering.distinct_preferences(), users.len());
        assert_eq!(clustering.num_users(), users.len() + 1);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);

        // Removing one twin keeps the entry (and the common) intact …
        let removal = clustering.remove_user(UserId::new(2));
        assert!(matches!(removal, Removal::Shrunk { .. }), "{removal:?}");
        assert_eq!(clustering.distinct_preferences(), users.len());
        // … removing the last twin dissolves the now-empty cluster.
        let removal = clustering.remove_user(UserId::new(10));
        assert!(matches!(removal, Removal::Dissolved { .. }), "{removal:?}");
        assert_eq!(clustering.distinct_preferences(), users.len() - 1);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn update_coalesces_and_splits_distinct_entries() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::IntersectionSize, 0.0);
        assert_eq!(clustering.num_clusters(), 1);
        assert_eq!(clustering.distinct_preferences(), 6);
        // User 1 adopts user 0's preference: their entries coalesce.
        let update = clustering.update_user(UserId::new(1), &users[0]);
        assert!(matches!(update, Update::Stayed { .. }), "{update:?}");
        assert_eq!(clustering.distinct_preferences(), 5);
        assert_eq!(clustering.num_users(), 6);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
        // A later update diverges again: the shared entry splits.
        let update = clustering.update_user(UserId::new(1), &users[1]);
        assert!(matches!(update, Update::Stayed { .. }), "{update:?}");
        assert_eq!(clustering.distinct_preferences(), 6);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn insert_with_unseen_values_extends_universes() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Values 7..9 never occur in Table 3: the shared universes must grow.
        let extra = pref(&[(7, 8), (8, 9)]);
        clustering.insert_user(UserId::new(42), &extra);
        assert_common_matches(&clustering);
        // A second arity: attribute 1 never existed before.
        let mut wide = Preference::new(2);
        wide.prefer(AttrId::new(1), v(0), v(1));
        clustering.insert_user(UserId::new(43), &wide);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn remove_repairs_only_the_users_cluster() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::IntersectionSize, 0.0);
        assert_eq!(clustering.num_clusters(), 1);
        let removal = clustering.remove_user(UserId::new(2));
        assert!(matches!(removal, Removal::Shrunk { .. }), "{removal:?}");
        assert_eq!(clustering.num_users(), 5);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn removing_last_member_dissolves_the_cluster() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let k = clustering.num_clusters();
        let removal = clustering.remove_user(UserId::new(3));
        assert!(matches!(removal, Removal::Dissolved { .. }), "{removal:?}");
        assert_eq!(clustering.num_clusters(), k - 1);
        assert!(!clustering.contains(UserId::new(3)));
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn rename_preserves_membership() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        let before = clustering.cluster_of(UserId::new(5)).unwrap();
        clustering.rename_user(UserId::new(5), UserId::new(50));
        assert_eq!(clustering.cluster_of(UserId::new(50)), Some(before));
        assert!(!clustering.contains(UserId::new(5)));
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn empty_clustering_accepts_first_insert() {
        let mut clustering = Clustering::new(&[], ExactMeasure::Jaccard, 0.5);
        assert!(clustering.is_empty());
        assert_eq!(clustering.num_clusters(), 0);
        let placement = clustering.insert_user(UserId::new(0), &pref(&[(0, 1)]));
        assert!(matches!(placement, Placement::Singleton { cluster: 0 }));
        assert_eq!(clustering.num_users(), 1);
        assert_common_matches(&clustering);
    }

    #[test]
    #[should_panic(expected = "already clustered")]
    fn double_insert_panics() {
        let mut clustering = Clustering::new(&table3_users(), ExactMeasure::Jaccard, 0.2);
        clustering.insert_user(UserId::new(0), &pref(&[(0, 1)]));
    }

    #[test]
    fn update_of_singleton_stays_put_and_refreshes_common() {
        let users = table3_users();
        // An impossible branch cut keeps every user a singleton.
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let clusters_before = clustering.num_clusters();
        let cluster_before = clustering.cluster_of(UserId::new(2)).unwrap();
        let new_pref = pref(&[(3, 0), (0, 2)]);
        let update = clustering.update_user(UserId::new(2), &new_pref);
        match update {
            Update::Stayed { cluster, common } => {
                assert_eq!(cluster, cluster_before);
                let want: std::collections::HashSet<_> =
                    new_pref.relation(AttrId::new(0)).pairs().collect();
                let have: std::collections::HashSet<_> =
                    common.relation(AttrId::new(0)).pairs().collect();
                assert_eq!(have, want);
            }
            other => panic!("singleton must stay put, got {other:?}"),
        }
        assert_eq!(clustering.num_clusters(), clusters_before);
        assert_eq!(clustering.num_users(), users.len());
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn singleton_update_to_an_existing_preference_stays_put() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let cluster_before = clustering.cluster_of(UserId::new(2)).unwrap();
        // User 2 (alone in its cluster) adopts user 3's preference. The
        // stay-put rule pins it in place: a second entry with the same
        // fingerprint now exists in a different cluster.
        let update = clustering.update_user(UserId::new(2), &users[3]);
        assert!(
            matches!(update, Update::Stayed { cluster, .. } if cluster == cluster_before),
            "{update:?}"
        );
        assert_eq!(clustering.num_users(), users.len());
        assert_eq!(clustering.distinct_preferences(), users.len());
        assert_ne!(
            clustering.cluster_of(UserId::new(2)),
            clustering.cluster_of(UserId::new(3))
        );
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn update_keeping_similarity_stays_and_refolds_common() {
        let users = table3_users();
        // IntersectionSize with cut 0.0 puts everyone in one cluster and
        // keeps any update in it.
        let mut clustering = Clustering::new(&users, ExactMeasure::IntersectionSize, 0.0);
        assert_eq!(clustering.num_clusters(), 1);
        let new_pref = pref(&[(0, 1), (1, 2)]);
        let update = clustering.update_user(UserId::new(1), &new_pref);
        assert!(
            matches!(update, Update::Stayed { cluster: 0, .. }),
            "{update:?}"
        );
        assert_eq!(clustering.num_clusters(), 1);
        assert_eq!(
            clustering
                .preference_of(UserId::new(1))
                .unwrap()
                .total_pairs(),
            new_pref.total_pairs()
        );
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn update_that_no_longer_fits_moves_the_user() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Find a user sharing a cluster with someone else, then hand it a
        // preference over values nobody else mentions: similarity drops to
        // zero, the user must leave via local repair + re-insertion.
        let victim = (0..users.len())
            .map(UserId::from)
            .find(|&u| clustering.members(clustering.cluster_of(u).unwrap()).len() > 1)
            .expect("the paper's clustering has a non-singleton cluster");
        let old_cluster = clustering.cluster_of(victim).unwrap();
        let alien = pref(&[(17, 18), (18, 19)]);
        let update = clustering.update_user(victim, &alien);
        match update {
            Update::Moved {
                from_cluster, to, ..
            } => {
                assert_eq!(from_cluster, old_cluster);
                assert!(matches!(to, Placement::Singleton { .. }), "{to:?}");
            }
            other => panic!("expected a move, got {other:?}"),
        }
        assert_ne!(clustering.cluster_of(victim), Some(old_cluster));
        assert_eq!(clustering.num_users(), users.len());
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    fn update_with_unseen_values_extends_universes() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Values 40..42 and a second attribute never occurred before: the
        // shared universes must grow and every stored state recompile.
        let mut wide = Preference::new(2);
        wide.prefer(AttrId::new(0), v(40), v(41));
        wide.prefer(AttrId::new(1), v(41), v(42));
        clustering.update_user(UserId::new(0), &wide);
        assert_common_matches(&clustering);
        assert_eq!(clustering.num_users(), users.len());
        // A later plain insert still works on the extended universes.
        clustering.insert_user(UserId::new(99), &pref(&[(40, 0)]));
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }

    #[test]
    #[should_panic(expected = "not clustered")]
    fn update_of_unknown_user_panics() {
        let mut clustering = Clustering::new(&table3_users(), ExactMeasure::Jaccard, 0.2);
        clustering.update_user(UserId::new(77), &pref(&[(0, 1)]));
    }

    #[test]
    fn heavy_twin_churn_keeps_entry_count_small() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::WeightedJaccard, 0.2);
        // 60 twins of the six distinct preferences arrive …
        for i in 0..60u32 {
            clustering.insert_user(UserId::new(100 + i), &users[(i % 6) as usize]);
        }
        assert_eq!(clustering.num_users(), 66);
        assert_eq!(clustering.distinct_preferences(), 6);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
        // … and half leave again; distinct state never grew.
        for i in (0..60u32).step_by(2) {
            clustering.remove_user(UserId::new(100 + i));
        }
        assert_eq!(clustering.num_users(), 36);
        assert_eq!(clustering.distinct_preferences(), 6);
        assert_common_matches(&clustering);
        assert_entries_consistent(&clustering);
    }
}
