//! Incrementally maintained clustering for dynamic user populations.
//!
//! The agglomerative pass of [`crate::cluster_users`] is a build-time
//! operation: it assumes the whole population is known before the stream
//! starts. Online REGISTER/UNREGISTER traffic instead needs
//! *dendrogram-local repair*:
//!
//! * [`Clustering::insert_user`] either joins the most similar existing
//!   cluster — when that similarity clears the branch cut `h`, exactly the
//!   agglomerative merge criterion — or spins up a new singleton cluster.
//!   Joining recomputes the cluster's common preference relation as a
//!   word-wise AND ([`pm_porder::CompiledRelation::intersect`]) of the old
//!   common relation and the new member's relations.
//! * [`Clustering::remove_user`] shrinks the user's cluster, recomputing
//!   its common relation as the AND-fold of the remaining members'
//!   compiled relations, or dissolves the cluster entirely when the last
//!   member leaves.
//! * [`Clustering::update_user`] changes a user's preference *in place* by
//!   diffing the old and new compiled relations against the user's current
//!   cluster: when the new relations still clear the branch cut against the
//!   remaining members' common relation the user stays put and only that
//!   cluster's common relation is re-AND-folded; otherwise the cluster is
//!   locally repaired and the user re-inserted as if newly registered.
//!
//! No other cluster is touched, so churn costs O(k) compiled similarity
//! passes plus one AND-fold instead of a full O(n³) agglomerative rebuild.
//! All states live on shared per-attribute value universes; a registered
//! user mentioning a never-seen value triggers the one slow path: the
//! universes grow and every stored state is recompiled.

use std::collections::HashMap;

use pm_model::{UserId, ValueId};
use pm_porder::Preference;

use crate::agglomerative::{attribute_universes, cluster_users, Cluster, ExactState};
use crate::{ClusteringConfig, ExactMeasure};

/// Where [`Clustering::insert_user`] placed a user.
#[derive(Debug, Clone)]
pub enum Placement {
    /// The user joined existing cluster `cluster`, whose common preference
    /// relation shrank to `common` (the old common relation intersected
    /// with the user's relations).
    Joined {
        /// Index of the joined cluster.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// No cluster was similar enough (or none existed): the user became a
    /// new singleton cluster, appended at index `cluster`.
    Singleton {
        /// Index of the new singleton cluster (`num_clusters() - 1`).
        cluster: usize,
    },
}

impl Placement {
    /// The index of the cluster the user ended up in.
    pub fn cluster(&self) -> usize {
        match *self {
            Placement::Joined { cluster, .. } | Placement::Singleton { cluster } => cluster,
        }
    }
}

/// What [`Clustering::remove_user`] did to the user's cluster.
#[derive(Debug, Clone)]
pub enum Removal {
    /// Cluster `cluster` lost the user; its common preference relation was
    /// recomputed from the remaining members as `common`.
    Shrunk {
        /// Index of the shrunk cluster.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// The user was the cluster's last member: the cluster at `cluster`
    /// was removed by swap-remove (the previously-last cluster now holds
    /// this index).
    Dissolved {
        /// Index the dissolved cluster occupied.
        cluster: usize,
    },
}

/// What [`Clustering::update_user`] did with the user's new preference.
#[derive(Debug, Clone)]
pub enum Update {
    /// The new relations still clear the branch cut against the rest of the
    /// user's cluster (trivially so for a singleton): the user stayed in
    /// `cluster` and its common preference relation was re-AND-folded to
    /// `common`.
    Stayed {
        /// Index of the cluster the user stayed in.
        cluster: usize,
        /// The cluster's recomputed common preference relation.
        common: Preference,
    },
    /// The new relations no longer fit: the user left its old cluster and
    /// was re-inserted under the ordinary placement rule (`to`). The old
    /// cluster always *shrinks* — a singleton would have stayed put — so
    /// no cluster index shifts before `to` is applied; the variant carries
    /// the shrunk cluster's index and recomputed common relation directly
    /// to make dissolution unrepresentable.
    Moved {
        /// Index of the cluster the user left.
        from_cluster: usize,
        /// That cluster's recomputed common preference relation.
        from_common: Preference,
        /// Where the user landed.
        to: Placement,
    },
}

#[derive(Debug, Clone)]
struct UserEntry {
    preference: Preference,
    state: ExactState,
    /// Index of the cluster this user belongs to, kept in sync with
    /// `clusters` so removal never scans the member lists.
    cluster: usize,
}

#[derive(Debug, Clone)]
struct MaintainedCluster {
    members: Vec<UserId>,
    state: ExactState,
}

/// A clustering of users that tracks membership changes incrementally.
///
/// Built once with the agglomerative algorithm over the initial population,
/// then maintained under churn with dendrogram-local repair (see the module
/// docs). The caller chooses the user-id space: ids only need to be unique,
/// not dense.
#[derive(Debug, Clone)]
pub struct Clustering {
    measure: ExactMeasure,
    branch_cut: f64,
    universes: Vec<Vec<ValueId>>,
    users: HashMap<UserId, UserEntry>,
    clusters: Vec<MaintainedCluster>,
}

impl Clustering {
    /// Clusters `preferences` (indexed by user id) with the agglomerative
    /// algorithm under `measure` and `branch_cut`, keeping the compiled
    /// state needed for later incremental maintenance.
    pub fn new(preferences: &[Preference], measure: ExactMeasure, branch_cut: f64) -> Self {
        let outcome = cluster_users(
            preferences,
            ClusteringConfig::Exact {
                measure,
                branch_cut,
            },
        );
        let arity = preferences.iter().map(Preference::arity).max().unwrap_or(0);
        let universes = attribute_universes(preferences, arity);
        let mut cluster_of = vec![0usize; preferences.len()];
        for (idx, cluster) in outcome.clusters.iter().enumerate() {
            for member in &cluster.members {
                cluster_of[member.index()] = idx;
            }
        }
        let users = preferences
            .iter()
            .enumerate()
            .map(|(idx, pref)| {
                (
                    UserId::from(idx),
                    UserEntry {
                        preference: pref.clone(),
                        state: ExactState::of_user(pref, &universes),
                        cluster: cluster_of[idx],
                    },
                )
            })
            .collect();
        let clusters = outcome
            .clusters
            .iter()
            .map(|cluster| MaintainedCluster {
                members: cluster.members.clone(),
                state: ExactState::of_user(&cluster.common, &universes),
            })
            .collect();
        Self {
            measure,
            branch_cut,
            universes,
            users,
            clusters,
        }
    }

    /// The similarity measure merges are judged by.
    pub fn measure(&self) -> ExactMeasure {
        self.measure
    }

    /// The branch cut `h` a join must clear.
    pub fn branch_cut(&self) -> f64 {
        self.branch_cut
    }

    /// Number of clustered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Whether no users are clustered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Whether `user` is currently clustered.
    pub fn contains(&self, user: UserId) -> bool {
        self.users.contains_key(&user)
    }

    /// The stored preference of `user`, if clustered.
    pub fn preference_of(&self, user: UserId) -> Option<&Preference> {
        self.users.get(&user).map(|entry| &entry.preference)
    }

    /// The index of the cluster containing `user`, if any. O(1): the
    /// per-user entry tracks its cluster index.
    pub fn cluster_of(&self, user: UserId) -> Option<usize> {
        self.users.get(&user).map(|entry| entry.cluster)
    }

    /// The members of cluster `cluster`, in insertion order.
    pub fn members(&self, cluster: usize) -> &[UserId] {
        &self.clusters[cluster].members
    }

    /// The common preference relation of cluster `cluster` (Def. 4.1),
    /// decompiled from the maintained bit matrices.
    pub fn common_preference(&self, cluster: usize) -> Preference {
        self.clusters[cluster].state.to_preference()
    }

    /// All clusters as [`Cluster`] values (members + exact common
    /// preference), e.g. for constructing a FilterThenVerify monitor.
    pub fn clusters(&self) -> Vec<Cluster> {
        self.clusters
            .iter()
            .map(|cluster| Cluster {
                members: cluster.members.clone(),
                common: cluster.state.to_preference(),
            })
            .collect()
    }

    /// Extends the shared universes to cover `pref`, recompiling every
    /// stored state when they grow — the rare slow path taken when a
    /// registered user mentions a value (or attribute) never seen before.
    fn ensure_covered(&mut self, pref: &Preference) {
        let covered = pref.arity() <= self.universes.len()
            && pref.relations().all(|(attr, rel)| {
                let universe = &self.universes[attr.index()];
                rel.values()
                    .into_iter()
                    .all(|v| universe.binary_search(&v).is_ok())
            });
        if covered {
            return;
        }
        let all: Vec<Preference> = self
            .users
            .values()
            .map(|entry| entry.preference.clone())
            .chain([pref.clone()])
            .collect();
        let arity = all.iter().map(Preference::arity).max().unwrap_or(0);
        self.universes = attribute_universes(&all, arity);
        for entry in self.users.values_mut() {
            entry.state = ExactState::of_user(&entry.preference, &self.universes);
        }
        for idx in 0..self.clusters.len() {
            let members = self.clusters[idx].members.clone();
            self.clusters[idx].state = self.common_state(&members);
        }
    }

    /// The AND-fold of the members' compiled relations: the cluster's
    /// common preference relation per Def. 4.1 / Theorem 4.2.
    fn common_state(&self, members: &[UserId]) -> ExactState {
        let mut iter = members.iter();
        let first = iter.next().expect("a cluster has at least one member");
        let mut state = self.users[first].state.clone();
        for member in iter {
            state = state.merge(&self.users[member].state);
        }
        state
    }

    /// Inserts `user` with `preference`: joins the most similar cluster if
    /// that similarity reaches the branch cut, otherwise creates a new
    /// singleton cluster.
    ///
    /// # Panics
    /// Panics if `user` is already clustered.
    pub fn insert_user(&mut self, user: UserId, preference: &Preference) -> Placement {
        assert!(
            !self.users.contains_key(&user),
            "user {user} is already clustered"
        );
        self.ensure_covered(preference);
        let state = ExactState::of_user(preference, &self.universes);
        let mut best: Option<(usize, f64)> = None;
        for (idx, cluster) in self.clusters.iter().enumerate() {
            let sim = state.similarity(&cluster.state, self.measure);
            if best.map(|(_, b)| sim > b).unwrap_or(true) {
                best = Some((idx, sim));
            }
        }
        let placement = match best {
            Some((idx, sim)) if sim >= self.branch_cut => {
                let cluster = &mut self.clusters[idx];
                cluster.members.push(user);
                cluster.state = cluster.state.merge(&state);
                Placement::Joined {
                    cluster: idx,
                    common: cluster.state.to_preference(),
                }
            }
            _ => {
                self.clusters.push(MaintainedCluster {
                    members: vec![user],
                    state: state.clone(),
                });
                Placement::Singleton {
                    cluster: self.clusters.len() - 1,
                }
            }
        };
        self.users.insert(
            user,
            UserEntry {
                preference: preference.clone(),
                state,
                cluster: placement.cluster(),
            },
        );
        placement
    }

    /// Removes `user`, repairing only its own cluster.
    ///
    /// # Panics
    /// Panics if `user` is not clustered.
    pub fn remove_user(&mut self, user: UserId) -> Removal {
        let entry = self
            .users
            .remove(&user)
            .unwrap_or_else(|| panic!("user {user} is not clustered"));
        let idx = entry.cluster;
        self.clusters[idx].members.retain(|&member| member != user);
        if self.clusters[idx].members.is_empty() {
            self.clusters.swap_remove(idx);
            // The previously-last cluster moved into slot `idx`: repoint
            // its members' entries.
            if idx < self.clusters.len() {
                for member in self.clusters[idx].members.clone() {
                    self.users
                        .get_mut(&member)
                        .expect("member has an entry")
                        .cluster = idx;
                }
            }
            return Removal::Dissolved { cluster: idx };
        }
        let members = self.clusters[idx].members.clone();
        self.clusters[idx].state = self.common_state(&members);
        Removal::Shrunk {
            cluster: idx,
            common: self.clusters[idx].state.to_preference(),
        }
    }

    /// Replaces the preference of `user` in place, diffing the old and new
    /// compiled relations against the user's current cluster.
    ///
    /// When the new relations still clear the branch cut against the
    /// AND-fold of the *other* members' relations, the user stays in its
    /// cluster and only that cluster's common relation is recomputed (one
    /// AND-fold — no membership change anywhere). A singleton trivially
    /// stays put: its common relation just becomes the new preference.
    /// Otherwise the old cluster is repaired exactly as by
    /// [`Self::remove_user`] and the user re-inserted exactly as by
    /// [`Self::insert_user`] — but the user id never changes, so callers
    /// need no renumbering.
    ///
    /// # Panics
    /// Panics if `user` is not clustered.
    pub fn update_user(&mut self, user: UserId, preference: &Preference) -> Update {
        assert!(
            self.users.contains_key(&user),
            "user {user} is not clustered"
        );
        self.ensure_covered(preference);
        let state = ExactState::of_user(preference, &self.universes);
        let idx = self.users[&user].cluster;
        let others: Vec<UserId> = self.clusters[idx]
            .members
            .iter()
            .copied()
            .filter(|&m| m != user)
            .collect();
        if others.is_empty() {
            // A singleton is always at least as similar to itself as the
            // branch cut requires: stay put, the common relation IS the
            // user's new relations.
            self.clusters[idx].state = state.clone();
            let entry = self.users.get_mut(&user).expect("user is clustered");
            entry.preference = preference.clone();
            entry.state = state;
            return Update::Stayed {
                cluster: idx,
                common: self.clusters[idx].state.to_preference(),
            };
        }
        let rest = self.common_state(&others);
        let sim = state.similarity(&rest, self.measure);
        if sim >= self.branch_cut {
            self.clusters[idx].state = rest.merge(&state);
            let entry = self.users.get_mut(&user).expect("user is clustered");
            entry.preference = preference.clone();
            entry.state = state;
            return Update::Stayed {
                cluster: idx,
                common: self.clusters[idx].state.to_preference(),
            };
        }
        // The changed preference no longer fits: local repair + re-insertion.
        // `others` is non-empty, so the old cluster always shrinks (never
        // dissolves) and no cluster index shifts before the insertion. The
        // AND-fold of the remaining members was already computed for the
        // branch-cut test, so the repair reuses it instead of re-folding.
        self.clusters[idx].members.retain(|&member| member != user);
        self.clusters[idx].state = rest;
        let from_common = self.clusters[idx].state.to_preference();
        self.users.remove(&user);
        let to = self.insert_user(user, preference);
        Update::Moved {
            from_cluster: idx,
            from_common,
            to,
        }
    }

    /// Renames `old` to `new` without touching any cluster state. Used by
    /// callers that renumber users on swap-remove.
    ///
    /// # Panics
    /// Panics if `old` is not clustered or `new` already is.
    pub fn rename_user(&mut self, old: UserId, new: UserId) {
        if old == new {
            return;
        }
        assert!(
            !self.users.contains_key(&new),
            "user {new} is already clustered"
        );
        let entry = self
            .users
            .remove(&old)
            .unwrap_or_else(|| panic!("user {old} is not clustered"));
        self.users.insert(new, entry);
        for cluster in &mut self.clusters {
            for member in &mut cluster.members {
                if *member == old {
                    *member = new;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;
    use pm_porder::Relation;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn pref(pairs: &[(u32, u32)]) -> Preference {
        let rel = Relation::from_pairs(pairs.iter().map(|&(x, y)| (v(x), v(y)))).unwrap();
        Preference::from_relations(vec![rel])
    }

    /// The six users of Table 3 (brand attribute only).
    fn table3_users() -> Vec<Preference> {
        vec![
            pref(&[(0, 1), (1, 2), (3, 1)]),
            pref(&[(0, 1), (1, 2), (3, 2)]),
            pref(&[(2, 1), (1, 0), (1, 3)]),
            pref(&[(2, 1), (1, 0), (1, 3), (0, 3)]),
            pref(&[(1, 0), (1, 3), (0, 2), (3, 2)]),
            pref(&[(1, 0), (0, 3), (0, 2)]),
        ]
    }

    fn assert_common_matches(clustering: &Clustering) {
        for k in 0..clustering.num_clusters() {
            let members = clustering.members(k).to_vec();
            assert!(!members.is_empty(), "cluster {k} is empty");
            let expected = Preference::common_of(
                members
                    .iter()
                    .map(|&m| clustering.preference_of(m).expect("member has preference")),
            );
            let got = clustering.common_preference(k);
            let arity = expected.arity().max(got.arity());
            for attr in 0..arity {
                let attr = AttrId::from(attr);
                let want: std::collections::HashSet<_> = if attr.index() < expected.arity() {
                    expected.relation(attr).pairs().collect()
                } else {
                    Default::default()
                };
                let have: std::collections::HashSet<_> = if attr.index() < got.arity() {
                    got.relation(attr).pairs().collect()
                } else {
                    Default::default()
                };
                assert_eq!(have, want, "cluster {k} attribute {attr}");
            }
        }
    }

    #[test]
    fn build_matches_agglomerative_outcome() {
        let users = table3_users();
        let clustering = Clustering::new(&users, ExactMeasure::WeightedJaccard, 0.2);
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.2,
            },
        );
        assert_eq!(clustering.num_clusters(), outcome.len());
        assert_eq!(clustering.num_users(), users.len());
        assert_common_matches(&clustering);
    }

    #[test]
    fn insert_joins_similar_cluster_and_intersects_common() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users[..4], ExactMeasure::WeightedJaccard, 0.2);
        // c5 is similar to the {c1, c2} side of Table 3; with the paper's
        // branch cut it joins an existing cluster rather than staying alone.
        let placement = clustering.insert_user(UserId::new(4), &users[4]);
        assert!(
            matches!(placement, Placement::Joined { .. }),
            "{placement:?}"
        );
        assert_common_matches(&clustering);
        assert_eq!(clustering.num_users(), 5);
    }

    #[test]
    fn insert_far_user_becomes_singleton() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        // An impossible branch cut keeps everything singleton.
        assert_eq!(clustering.num_clusters(), users.len());
        let extra = pref(&[(5, 6)]);
        let placement = clustering.insert_user(UserId::new(99), &extra);
        assert!(
            matches!(placement, Placement::Singleton { .. }),
            "{placement:?}"
        );
        assert_eq!(placement.cluster(), clustering.num_clusters() - 1);
        assert_eq!(clustering.cluster_of(UserId::new(99)), Some(users.len()));
        assert_common_matches(&clustering);
    }

    #[test]
    fn insert_with_unseen_values_extends_universes() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Values 7..9 never occur in Table 3: the shared universes must grow.
        let extra = pref(&[(7, 8), (8, 9)]);
        clustering.insert_user(UserId::new(42), &extra);
        assert_common_matches(&clustering);
        // A second arity: attribute 1 never existed before.
        let mut wide = Preference::new(2);
        wide.prefer(AttrId::new(1), v(0), v(1));
        clustering.insert_user(UserId::new(43), &wide);
        assert_common_matches(&clustering);
    }

    #[test]
    fn remove_repairs_only_the_users_cluster() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::IntersectionSize, 0.0);
        assert_eq!(clustering.num_clusters(), 1);
        let removal = clustering.remove_user(UserId::new(2));
        assert!(matches!(removal, Removal::Shrunk { .. }), "{removal:?}");
        assert_eq!(clustering.num_users(), 5);
        assert_common_matches(&clustering);
    }

    #[test]
    fn removing_last_member_dissolves_the_cluster() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let k = clustering.num_clusters();
        let removal = clustering.remove_user(UserId::new(3));
        assert!(matches!(removal, Removal::Dissolved { .. }), "{removal:?}");
        assert_eq!(clustering.num_clusters(), k - 1);
        assert!(!clustering.contains(UserId::new(3)));
        assert_common_matches(&clustering);
    }

    #[test]
    fn rename_preserves_membership() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        let before = clustering.cluster_of(UserId::new(5)).unwrap();
        clustering.rename_user(UserId::new(5), UserId::new(50));
        assert_eq!(clustering.cluster_of(UserId::new(50)), Some(before));
        assert!(!clustering.contains(UserId::new(5)));
        assert_common_matches(&clustering);
    }

    #[test]
    fn empty_clustering_accepts_first_insert() {
        let mut clustering = Clustering::new(&[], ExactMeasure::Jaccard, 0.5);
        assert!(clustering.is_empty());
        assert_eq!(clustering.num_clusters(), 0);
        let placement = clustering.insert_user(UserId::new(0), &pref(&[(0, 1)]));
        assert!(matches!(placement, Placement::Singleton { cluster: 0 }));
        assert_eq!(clustering.num_users(), 1);
        assert_common_matches(&clustering);
    }

    #[test]
    #[should_panic(expected = "already clustered")]
    fn double_insert_panics() {
        let mut clustering = Clustering::new(&table3_users(), ExactMeasure::Jaccard, 0.2);
        clustering.insert_user(UserId::new(0), &pref(&[(0, 1)]));
    }

    #[test]
    fn update_of_singleton_stays_put_and_refreshes_common() {
        let users = table3_users();
        // An impossible branch cut keeps every user a singleton.
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let clusters_before = clustering.num_clusters();
        let cluster_before = clustering.cluster_of(UserId::new(2)).unwrap();
        let new_pref = pref(&[(3, 0), (0, 2)]);
        let update = clustering.update_user(UserId::new(2), &new_pref);
        match update {
            Update::Stayed { cluster, common } => {
                assert_eq!(cluster, cluster_before);
                let want: std::collections::HashSet<_> =
                    new_pref.relation(AttrId::new(0)).pairs().collect();
                let have: std::collections::HashSet<_> =
                    common.relation(AttrId::new(0)).pairs().collect();
                assert_eq!(have, want);
            }
            other => panic!("singleton must stay put, got {other:?}"),
        }
        assert_eq!(clustering.num_clusters(), clusters_before);
        assert_eq!(clustering.num_users(), users.len());
        assert_common_matches(&clustering);
    }

    #[test]
    fn update_keeping_similarity_stays_and_refolds_common() {
        let users = table3_users();
        // IntersectionSize with cut 0.0 puts everyone in one cluster and
        // keeps any update in it.
        let mut clustering = Clustering::new(&users, ExactMeasure::IntersectionSize, 0.0);
        assert_eq!(clustering.num_clusters(), 1);
        let new_pref = pref(&[(0, 1), (1, 2)]);
        let update = clustering.update_user(UserId::new(1), &new_pref);
        assert!(
            matches!(update, Update::Stayed { cluster: 0, .. }),
            "{update:?}"
        );
        assert_eq!(clustering.num_clusters(), 1);
        assert_eq!(
            clustering
                .preference_of(UserId::new(1))
                .unwrap()
                .total_pairs(),
            new_pref.total_pairs()
        );
        assert_common_matches(&clustering);
    }

    #[test]
    fn update_that_no_longer_fits_moves_the_user() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Find a user sharing a cluster with someone else, then hand it a
        // preference over values nobody else mentions: similarity drops to
        // zero, the user must leave via local repair + re-insertion.
        let victim = (0..users.len())
            .map(UserId::from)
            .find(|&u| clustering.members(clustering.cluster_of(u).unwrap()).len() > 1)
            .expect("the paper's clustering has a non-singleton cluster");
        let old_cluster = clustering.cluster_of(victim).unwrap();
        let alien = pref(&[(17, 18), (18, 19)]);
        let update = clustering.update_user(victim, &alien);
        match update {
            Update::Moved {
                from_cluster, to, ..
            } => {
                assert_eq!(from_cluster, old_cluster);
                assert!(matches!(to, Placement::Singleton { .. }), "{to:?}");
            }
            other => panic!("expected a move, got {other:?}"),
        }
        assert_ne!(clustering.cluster_of(victim), Some(old_cluster));
        assert_eq!(clustering.num_users(), users.len());
        assert_common_matches(&clustering);
    }

    #[test]
    fn update_with_unseen_values_extends_universes() {
        let users = table3_users();
        let mut clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        // Values 40..42 and a second attribute never occurred before: the
        // shared universes must grow and every stored state recompile.
        let mut wide = Preference::new(2);
        wide.prefer(AttrId::new(0), v(40), v(41));
        wide.prefer(AttrId::new(1), v(41), v(42));
        clustering.update_user(UserId::new(0), &wide);
        assert_common_matches(&clustering);
        assert_eq!(clustering.num_users(), users.len());
        // A later plain insert still works on the extended universes.
        clustering.insert_user(UserId::new(99), &pref(&[(40, 0)]));
        assert_common_matches(&clustering);
    }

    #[test]
    #[should_panic(expected = "not clustered")]
    fn update_of_unknown_user_panics() {
        let mut clustering = Clustering::new(&table3_users(), ExactMeasure::Jaccard, 0.2);
        clustering.update_user(UserId::new(77), &pref(&[(0, 1)]));
    }
}
