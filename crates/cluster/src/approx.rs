//! Approximate common preference relations — `GetApproxPreferenceTuples`
//! (Alg. 3, Sec. 6.1 of the paper).
//!
//! Given a cluster of users, a preference tuple shared by *all* members is a
//! common preference tuple and is always included. Further tuples are
//! considered in descending order of their frequency among the members and
//! greedily added — together with their transitive closure — as long as the
//! growing relation stays a strict partial order, its size stays below θ1,
//! and the tuple's frequency stays above θ2.

use std::collections::HashMap;

use pm_model::{AttrId, ValueId};
use pm_porder::{Preference, Relation};

/// Thresholds governing the size of approximate common preference relations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// θ1: the approximate relation stops growing once it holds at least
    /// this many tuples (common tuples are exempt).
    pub theta1: usize,
    /// θ2: tuples whose frequency among cluster members is ≤ θ2 are never
    /// added (common tuples, frequency 1, are exempt).
    pub theta2: f64,
}

impl ApproxConfig {
    /// A generous default: up to 256 tuples per attribute, majority support.
    pub const fn new(theta1: usize, theta2: f64) -> Self {
        Self { theta1, theta2 }
    }
}

impl Default for ApproxConfig {
    fn default() -> Self {
        Self {
            theta1: 256,
            theta2: 0.5,
        }
    }
}

/// Builds the approximate common preference relation `≻̂ᵈ_U` of one
/// attribute from the member users' relations on that attribute (Alg. 3).
pub fn approx_common_relation<'a, I>(relations: I, config: ApproxConfig) -> Relation
where
    I: IntoIterator<Item = &'a Relation>,
{
    let members: Vec<&Relation> = relations.into_iter().collect();
    if members.is_empty() {
        return Relation::new();
    }
    let n = members.len() as f64;

    // Frequency of every candidate tuple among the members. Tuples absent
    // from every member have frequency 0 and can never pass θ2 (and are not
    // common), so only tuples present in at least one member are enumerated.
    let mut freq: HashMap<(ValueId, ValueId), usize> = HashMap::new();
    for rel in &members {
        for pair in rel.pairs() {
            *freq.entry(pair).or_insert(0) += 1;
        }
    }
    // Descending frequency; ties broken by the pair ids for determinism.
    let mut ordered: Vec<((ValueId, ValueId), usize)> = freq.into_iter().collect();
    ordered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut approx = Relation::new();
    for ((x, y), count) in ordered {
        let frequency = count as f64 / n;
        if count == members.len() {
            // Common preference tuple: always included (Lines 2–3 of Alg. 3).
            // Common tuples of strict partial orders can never conflict.
            let _ = approx.insert(x, y);
            continue;
        }
        if approx.len() >= config.theta1 || frequency <= config.theta2 {
            break;
        }
        if approx.can_insert(x, y) {
            // Line 7: include the tuple together with its transitive closure.
            approx
                .insert(x, y)
                .expect("can_insert guarantees the relation stays a strict partial order");
        }
    }
    approx
}

/// Builds the full approximate common preference of a cluster: Alg. 3
/// applied to every attribute of the members' preferences.
pub fn approx_common_preference<'a, I>(preferences: I, config: ApproxConfig) -> Preference
where
    I: IntoIterator<Item = &'a Preference>,
    I::IntoIter: Clone,
{
    let iter = preferences.into_iter();
    let arity = iter.clone().map(Preference::arity).max().unwrap_or(0);
    let relations = (0..arity)
        .map(|idx| {
            let attr = AttrId::from(idx);
            approx_common_relation(iter.clone().map(|p| p.relation(attr)), config)
        })
        .collect();
    Preference::from_relations(relations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn rel(pairs: &[(u32, u32)]) -> Relation {
        Relation::from_pairs(pairs.iter().map(|&(x, y)| (v(x), v(y)))).unwrap()
    }

    /// The three users of Figure 1a / Example 6.2.
    /// Encoding chosen so the deterministic tie-break reproduces the
    /// paper's enumeration order: Apple=0, Lenovo=1, Toshiba=2, Samsung=3.
    ///
    /// Frequencies (Table 5): (A,T)=3/3, (A,S)=(L,T)=(T,S)=(S,L)=2/3,
    /// (A,L)=(L,S)=(T,L)=(S,T)=1/3.
    fn figure1_users() -> Vec<Relation> {
        vec![
            // user 1: A ≻ T ≻ S, L ≻ T (closure adds A ≻ S, L ≻ S).
            rel(&[(0, 2), (2, 3), (1, 2)]),
            // user 2: A ≻ T, L ≻ T, S ≻ L (closure adds S ≻ T).
            rel(&[(0, 2), (1, 2), (3, 1)]),
            // user 3: A ≻ T ≻ S ≻ L (closure adds A ≻ S, A ≻ L, T ≻ L).
            rel(&[(0, 2), (2, 3), (3, 1)]),
        ]
    }

    #[test]
    fn figure1_frequencies_match_table5() {
        let users = figure1_users();
        let count = |x: u32, y: u32| users.iter().filter(|r| r.prefers(v(x), v(y))).count();
        assert_eq!(count(0, 2), 3); // (A,T)
        assert_eq!(count(0, 3), 2); // (A,S)
        assert_eq!(count(1, 2), 2); // (L,T)
        assert_eq!(count(2, 3), 2); // (T,S)
        assert_eq!(count(3, 1), 2); // (S,L)
        assert_eq!(count(0, 1), 1); // (A,L)
        assert_eq!(count(1, 3), 1); // (L,S)
        assert_eq!(count(2, 1), 1); // (T,L)
        assert_eq!(count(3, 2), 1); // (S,T)
        assert_eq!(count(1, 0), 0);
        assert_eq!(count(2, 0), 0);
        assert_eq!(count(3, 0), 0);
    }

    #[test]
    fn example_6_2_greedy_construction() {
        // θ1 = 7, θ2 = 60%: the output of Example 6.2 is
        // {(A,T), (A,S), (L,T), (T,S)} plus the transitively induced (L,S);
        // (S,L) is rejected (reverse already present), (A,L) is below θ2.
        let users = figure1_users();
        let approx = approx_common_relation(users.iter(), ApproxConfig::new(7, 0.6));
        let expected: std::collections::HashSet<(ValueId, ValueId)> = [
            (v(0), v(2)), // (A,T)
            (v(0), v(3)), // (A,S)
            (v(1), v(2)), // (L,T)
            (v(2), v(3)), // (T,S)
            (v(1), v(3)), // (L,S), induced transitively
        ]
        .into_iter()
        .collect();
        assert_eq!(
            approx.pairs().collect::<std::collections::HashSet<_>>(),
            expected
        );
        approx.validate().unwrap();
    }

    #[test]
    fn approx_relation_is_superset_of_common_relation() {
        let users = figure1_users();
        let common = Relation::intersection_of(users.iter());
        for theta1 in [0, 1, 4, 100] {
            for theta2 in [0.0, 0.4, 0.7, 1.0] {
                let approx =
                    approx_common_relation(users.iter(), ApproxConfig::new(theta1, theta2));
                for pair in common.pairs() {
                    assert!(
                        approx.prefers(pair.0, pair.1),
                        "common tuple {pair:?} missing for θ1={theta1}, θ2={theta2}"
                    );
                }
                approx.validate().unwrap();
            }
        }
    }

    #[test]
    fn tight_thresholds_reduce_to_common_relation() {
        let users = figure1_users();
        let common = Relation::intersection_of(users.iter());
        // θ2 = 1.0 excludes every non-common tuple.
        let approx = approx_common_relation(users.iter(), ApproxConfig::new(100, 1.0));
        assert_eq!(
            approx.pairs().collect::<std::collections::HashSet<_>>(),
            common.pairs().collect::<std::collections::HashSet<_>>()
        );
        // θ1 = 0 stops before any non-common tuple is added.
        let approx0 = approx_common_relation(users.iter(), ApproxConfig::new(0, 0.0));
        assert_eq!(approx0.len(), common.len());
    }

    #[test]
    fn loose_thresholds_grow_but_stay_partial_order() {
        let users = figure1_users();
        let approx = approx_common_relation(users.iter(), ApproxConfig::new(usize::MAX, 0.0));
        assert!(approx.len() >= Relation::intersection_of(users.iter()).len());
        approx.validate().unwrap();
        // Asymmetry: (S,L) and (L,S) cannot both be present.
        assert!(!(approx.prefers(v(3), v(1)) && approx.prefers(v(1), v(3))));
    }

    #[test]
    fn empty_member_list_yields_empty_relation() {
        let approx = approx_common_relation(std::iter::empty(), ApproxConfig::default());
        assert!(approx.is_empty());
    }

    #[test]
    fn single_member_cluster_reproduces_its_relation() {
        let user = rel(&[(0, 1), (1, 2)]);
        let approx = approx_common_relation([&user], ApproxConfig::default());
        assert_eq!(
            approx.pairs().collect::<std::collections::HashSet<_>>(),
            user.pairs().collect::<std::collections::HashSet<_>>()
        );
    }

    #[test]
    fn approx_common_preference_covers_all_attributes() {
        let p1 = Preference::from_relations(vec![rel(&[(0, 1)]), rel(&[(2, 3)])]);
        let p2 = Preference::from_relations(vec![rel(&[(0, 1)]), rel(&[(3, 2)])]);
        let approx = approx_common_preference([&p1, &p2], ApproxConfig::new(10, 0.4));
        assert_eq!(approx.arity(), 2);
        assert!(approx.relation(AttrId::new(0)).prefers(v(0), v(1)));
        // On attribute 1 the two users conflict; whichever tuple is added
        // first wins, the other is rejected, so exactly one survives.
        assert_eq!(approx.relation(AttrId::new(1)).len(), 1);
    }

    #[test]
    fn default_config_is_majority_vote() {
        let cfg = ApproxConfig::default();
        assert_eq!(cfg.theta1, 256);
        assert_eq!(cfg.theta2, 0.5);
    }
}
