//! The readiness reactor: one event-loop thread drives every connection.
//!
//! The pre-subscription serving layer spent a blocking thread per
//! connection — fine for a handful of request/response clients, fatal for
//! the subscription workload, where 100k mostly-idle subscribers would pin
//! 100k stacks to do nothing. This module replaces it with a classic
//! single-threaded readiness loop over nonblocking sockets (epoll via
//! [`pm_reactor::Poller`]; `poll(2)` off Linux):
//!
//! * **Reads** accumulate into a per-connection buffer until a complete
//!   message is available — a newline-delimited line in text mode, a
//!   `[u32 BE length][UTF-8 request line]` frame in frame mode (see
//!   `HELLO` in [`crate::protocol`]). Requests are parsed and handled
//!   inline; shard-side parallelism is unchanged (the reactor blocks on a
//!   batch fan-in exactly like a connection thread did).
//! * **Writes** go through a per-connection outbox flushed opportunistically
//!   after every enqueue and on writability events, so a slow peer never
//!   blocks the loop. The outbox is bounded ([`ReactorConfig::max_outbox`]):
//!   a subscriber that cannot keep up with its event stream is evicted with
//!   a terminal `ERR lagged` rather than holding unbounded memory — deltas
//!   are never silently dropped from a live subscription.
//! * **Subscriptions** ([`crate::protocol::Request::Subscribe`]) are plain
//!   reactor state: a user → connection index. Because the loop is single
//!   threaded, the `OK SUBSCRIBED` snapshot and the subsequent `EVENT`
//!   stream are atomic — every delta after the snapshot is delivered
//!   exactly once, in order. `INGEST` responses carry their canonical
//!   per-user deltas ([`pm_core::FrontierDelta`]) and fan out to
//!   subscribers of the affected users; `REGISTER`/`UPDATE`/`UNREGISTER`
//!   on a watched user synthesize events by diffing the user's frontier
//!   around the change.
//! * **Half-close** is honored: a subscriber may `shutdown(Write)` its
//!   request side and keep receiving events; the connection is torn down
//!   once it has neither subscriptions nor unsent output.
//!
//! Failure policy (audited): parse failures answer `ERR` and keep the
//! connection; unframeable input (an overlong line or frame, which has no
//! resync point) answers a terminal `ERR` and closes; read/write failures
//! end that connection only; accept failures are logged and skipped, and
//! only a persistently failing listener (16 consecutive errors) ends the
//! loop.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use pm_core::FrontierDelta;
use pm_model::{ObjectId, UserId};
use pm_reactor::{Event, Interest, Poller};

use crate::protocol::Request;
use crate::response::{render_frame, render_text, Response, WireMode};
use crate::server::EngineService;

/// Tuning knobs of the reactor loop (see [`serve_with`]).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Per-connection outbox bound in bytes. A connection whose unsent
    /// output exceeds this — typically a subscriber not reading its event
    /// stream — is evicted with a terminal `ERR lagged`.
    pub max_outbox: usize,
    /// Largest accepted request message (text line or frame payload) in
    /// bytes. Longer input has no resync point and closes the connection
    /// with a terminal `ERR`.
    pub max_line: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            max_outbox: 1 << 20,
            max_line: 16 << 20,
        }
    }
}

/// The listener's token; connections get tokens from 1.
const LISTENER: u64 = 0;
/// The shutdown signal's token (see [`shutdown_pair`]); never collides
/// with connection tokens, which count up from 1.
const SHUTDOWN: u64 = u64::MAX;
/// Consecutive accept failures that end the loop.
const MAX_ACCEPT_FAILURES: u32 = 16;

/// The caller-held half of a [`shutdown_pair`]: signals the reactor loop
/// to stop from any thread.
#[derive(Debug)]
pub struct Shutdown {
    tx: UnixStream,
}

impl Shutdown {
    /// Asks the paired reactor loop to stop. Idempotent; an error (the
    /// loop is already gone) is ignored.
    pub fn shutdown(&self) {
        let _ = (&self.tx).write(&[1]);
        let _ = self.tx.shutdown(std::net::Shutdown::Write);
    }
}

/// The reactor-held half of a [`shutdown_pair`], passed to
/// [`serve_with_signal`].
#[derive(Debug)]
pub struct ShutdownSignal {
    rx: UnixStream,
}

impl std::os::fd::AsRawFd for ShutdownSignal {
    /// Exposes the signal fd so other readiness loops (the `pm-coord`
    /// reactor) can register it alongside their own sockets.
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.rx.as_raw_fd()
    }
}

/// A shutdown signal pair: hand the [`ShutdownSignal`] to
/// [`serve_with_signal`] and keep the [`Shutdown`] handle; calling
/// [`Shutdown::shutdown`] makes the serve loop return cleanly, closing
/// every connection and freeing the listener port — the in-process
/// equivalent of killing a node, used by cluster tests and the bench
/// harness to exercise degraded serving and rejoin.
pub fn shutdown_pair() -> std::io::Result<(Shutdown, ShutdownSignal)> {
    let (tx, rx) = UnixStream::pair()?;
    Ok((Shutdown { tx }, ShutdownSignal { rx }))
}

/// Per-connection state: negotiated mode, buffered input, unsent output,
/// and the users this connection subscribes to.
struct Conn {
    stream: TcpStream,
    mode: WireMode,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    out_head: usize,
    subscriptions: HashSet<UserId>,
    /// The interest currently registered with the poller; `None` when the
    /// fd is parked (an EOF'd subscriber with nothing to send waits here
    /// until an event arrives for it).
    registered: Option<Interest>,
    /// The peer closed its write half; no more requests will arrive.
    read_eof: bool,
    /// Tear down once the outbox drains (after `QUIT`, a terminal error,
    /// or a lagged eviction).
    closing: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_head
    }
}

/// One complete step of message extraction from a connection's input.
enum Extracted {
    /// A complete request line (text line or frame payload).
    Line(String),
    /// A malformed message with a resync point: answer `ERR`, keep going.
    Recoverable(String),
    /// Unframeable input: answer `ERR`, close the connection.
    Terminal(String),
    /// No complete message buffered.
    Incomplete,
}

struct Reactor {
    listener: TcpListener,
    service: Arc<EngineService>,
    config: ReactorConfig,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    /// user → tokens of the connections subscribed to that user.
    user_subs: HashMap<UserId, HashSet<u64>>,
    next_token: u64,
    accept_failures: u32,
    /// Total active subscriptions (mirrored into `pm_subscribers`).
    subscriber_count: usize,
    /// Total unsent outbox bytes (mirrored into
    /// `pm_subscriber_outbox_depth`).
    outbox_total: usize,
}

/// Serves `listener` with a single reactor thread using `config`; see the
/// module docs. [`crate::server::serve`] calls this with the default
/// configuration; tests shrink [`ReactorConfig::max_outbox`] to exercise
/// lagged-subscriber eviction.
pub fn serve_with(
    listener: TcpListener,
    service: Arc<EngineService>,
    config: ReactorConfig,
) -> std::io::Result<()> {
    serve_reactor(listener, service, config, None)
}

/// [`serve_with`] plus a shutdown signal: the loop additionally returns
/// `Ok(())` when the paired [`Shutdown`] handle fires, dropping every
/// connection and the listener.
pub fn serve_with_signal(
    listener: TcpListener,
    service: Arc<EngineService>,
    config: ReactorConfig,
    signal: ShutdownSignal,
) -> std::io::Result<()> {
    serve_reactor(listener, service, config, Some(signal))
}

fn serve_reactor(
    listener: TcpListener,
    service: Arc<EngineService>,
    config: ReactorConfig,
    shutdown: Option<ShutdownSignal>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::Read)?;
    if let Some(signal) = &shutdown {
        poller.register(signal.rx.as_raw_fd(), SHUTDOWN, Interest::Read)?;
    }
    let mut reactor = Reactor {
        listener,
        service,
        config,
        poller,
        conns: HashMap::new(),
        user_subs: HashMap::new(),
        next_token: LISTENER + 1,
        accept_failures: 0,
        subscriber_count: 0,
        outbox_total: 0,
    };
    let result = reactor.run();
    // `shutdown` must outlive the loop: its fd is registered with the
    // poller, and dropping it earlier would recycle the fd number while
    // the poller still watches it.
    drop(shutdown);
    result
}

impl Reactor {
    fn run(&mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.poller.wait(&mut events, None)?;
            for &event in &events {
                if event.token == SHUTDOWN {
                    return Ok(());
                }
                if event.token == LISTENER {
                    self.accept_ready()?;
                } else {
                    self.drive_conn(event);
                }
            }
            self.refresh_gauges();
        }
    }

    /// Accepts every pending connection (the listener is level-triggered,
    /// but draining per wake-up keeps accept latency flat under bursts).
    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.accept_failures = 0;
                    if let Err(e) = self.admit(stream) {
                        pm_obs::warn!(
                            "pm_engine::reactor",
                            "failed to admit connection",
                            error = e,
                        );
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.accept_failures += 1;
                    pm_obs::warn!(
                        "pm_engine::reactor",
                        "accept failed",
                        error = e,
                        consecutive = self.accept_failures,
                    );
                    if self.accept_failures >= MAX_ACCEPT_FAILURES {
                        return Err(e);
                    }
                    return Ok(());
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        // Responses and events are single short writes; coalescing them
        // behind Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        self.poller
            .register(stream.as_raw_fd(), token, Interest::Read)?;
        self.conns.insert(
            token,
            Conn {
                stream,
                mode: WireMode::Text,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                out_head: 0,
                subscriptions: HashSet::new(),
                registered: Some(Interest::Read),
                read_eof: false,
                closing: false,
            },
        );
        if let Some(metrics) = self.service.metrics_bundle() {
            metrics.connections.inc();
        }
        Ok(())
    }

    /// Drives one connection through a readiness event: fill the input
    /// buffer, dispatch every complete request, flush, then re-arm (or tear
    /// down) the registration. Tokens touched by fan-out along the way are
    /// finished too, so subscribers get their events flushed in the same
    /// loop iteration.
    fn drive_conn(&mut self, event: Event) {
        let token = event.token;
        if event.error {
            self.close_conn(token);
            return;
        }
        let mut touched = vec![token];
        if event.readable && !self.fill_inbuf(token) {
            return;
        }
        self.drain_messages(token, &mut touched);
        touched.sort_unstable();
        touched.dedup();
        for t in touched {
            self.finish(t);
        }
    }

    /// Reads until `WouldBlock` or EOF. Returns `false` when the
    /// connection died (and has been closed).
    fn fill_inbuf(&mut self, token: u64) -> bool {
        let dead = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_eof = true;
                        break false;
                    }
                    Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            }
        };
        if dead {
            self.close_conn(token);
        }
        !dead
    }

    /// Dispatches every complete buffered request on `token`.
    fn drain_messages(&mut self, token: u64, touched: &mut Vec<u64>) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.closing {
                    return;
                }
                extract_message(conn, &self.config)
            };
            match step {
                Extracted::Line(line) => self.dispatch(token, &line, touched),
                Extracted::Recoverable(message) => {
                    self.enqueue_response(token, &Response::Err(message));
                }
                Extracted::Terminal(message) => {
                    self.enqueue_response(token, &Response::Err(message));
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.closing = true;
                    }
                    return;
                }
                Extracted::Incomplete => return,
            }
        }
    }

    /// Parses and handles one request line, enqueues the response in the
    /// connection's current mode, and applies the reactor-side effects:
    /// subscription bookkeeping, the `HELLO` mode switch, `QUIT` teardown
    /// and event fan-out.
    fn dispatch(&mut self, token: u64, line: &str, touched: &mut Vec<u64>) {
        let request = match self.service.parse_line(line) {
            Ok(request) => request,
            Err(e) => {
                self.enqueue_response(token, &Response::Err(e));
                return;
            }
        };

        // Subscription validity is per-connection state only the reactor
        // knows; reject duplicates/absentees before the service runs.
        let precheck = match (&request, self.conns.get(&token)) {
            (Request::Subscribe(user), Some(conn)) if conn.subscriptions.contains(user) => {
                Some(format!("already subscribed to user {}", user.raw()))
            }
            (Request::Unsubscribe(user), Some(conn)) if !conn.subscriptions.contains(user) => {
                Some(format!("not subscribed to user {}", user.raw()))
            }
            _ => None,
        };
        if let Some(message) = precheck {
            self.enqueue_response(token, &Response::Err(message));
            return;
        }

        // A membership change on a watched user synthesizes an event from
        // the frontier diff around the change; capture the "before" now.
        let watched = match &request {
            Request::Register { user, .. }
            | Request::Update { user, .. }
            | Request::Unregister(user)
                if self.user_subs.contains_key(user) =>
            {
                Some((*user, self.frontier_of(*user)))
            }
            _ => None,
        };

        let response = self.service.handle(request);

        match &response {
            Response::Subscribed { user, .. } => {
                let user = *user;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.subscriptions.insert(user);
                    self.user_subs.entry(user).or_default().insert(token);
                    self.subscriber_count += 1;
                }
            }
            Response::Unsubscribed(user) => self.drop_subscription(token, *user),
            _ => {}
        }

        // HELLO answers in the old mode, then the connection switches;
        // QUIT's goodbye is enqueued before the teardown flag so it is the
        // connection's last delivered message.
        let switch_to = match &response {
            Response::Hello { proto, .. } | Response::NodeHello { proto, .. } => Some(*proto),
            _ => None,
        };
        self.enqueue_response(token, &response);
        if let Some(mode) = switch_to {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.mode = mode;
            }
        }
        if matches!(response, Response::Bye) {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
        }

        if let Response::Ingested(arrivals) = &response {
            for arrival in arrivals {
                self.fan_out(&arrival.deltas, touched);
            }
        }
        if let (Some((user, before)), false) = (watched, response.is_err()) {
            let after = self.frontier_of(user);
            let deltas = diff_frontiers(user, &before, &after);
            if !deltas.is_empty() {
                self.fan_out(&deltas, touched);
            }
        }
    }

    /// A user's current frontier; empty when not registered (around
    /// `REGISTER`/`UNREGISTER` one side of the diff is always empty).
    fn frontier_of(&self, user: UserId) -> Vec<ObjectId> {
        let engine = self.service.engine();
        if engine.is_registered(user) {
            engine.frontier(user)
        } else {
            Vec::new()
        }
    }

    /// Pushes one arrival's deltas (sorted by user, then object) to every
    /// subscriber of each affected user, rendering each user's event once
    /// per wire mode.
    fn fan_out(&mut self, deltas: &[FrontierDelta], touched: &mut Vec<u64>) {
        let mut at = 0;
        while at < deltas.len() {
            let user = deltas[at].user;
            let end = at + deltas[at..].iter().take_while(|d| d.user == user).count();
            if let Some(subs) = self.user_subs.get(&user) {
                let subs: Vec<u64> = subs.iter().copied().collect();
                let event = Response::Event {
                    user,
                    deltas: deltas[at..end].to_vec(),
                };
                let mut text: Option<Vec<u8>> = None;
                let mut frame: Option<Vec<u8>> = None;
                for sub in subs {
                    let Some(conn) = self.conns.get(&sub) else {
                        continue;
                    };
                    let bytes = match conn.mode {
                        WireMode::Text => text.get_or_insert_with(|| {
                            let mut b = render_text(&event).into_bytes();
                            b.push(b'\n');
                            b
                        }),
                        WireMode::Frame => frame.get_or_insert_with(|| render_frame(&event)),
                    }
                    .clone();
                    self.enqueue_bytes(sub, bytes);
                    touched.push(sub);
                }
            }
            at = end;
        }
    }

    /// Renders `response` in the connection's current mode and appends it
    /// to the outbox.
    fn enqueue_response(&mut self, token: u64, response: &Response) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let bytes = match conn.mode {
            WireMode::Text => {
                let mut b = render_text(response).into_bytes();
                b.push(b'\n');
                b
            }
            WireMode::Frame => render_frame(response),
        };
        self.enqueue_bytes(token, bytes);
    }

    /// Appends raw rendered bytes, enforcing the outbox bound: a
    /// connection over [`ReactorConfig::max_outbox`] is evicted — its
    /// subscriptions are dropped (no further events accrue), a terminal
    /// `ERR lagged` is appended, and the connection closes once its buffer
    /// drains.
    fn enqueue_bytes(&mut self, token: u64, bytes: Vec<u8>) {
        let len = bytes.len();
        let lagged = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing {
                // Already evicted or told to go away; don't grow the
                // buffer past the terminal message.
                return;
            }
            conn.outbuf.extend_from_slice(&bytes);
            conn.pending_out() > self.config.max_outbox
        };
        self.outbox_total += len;
        if lagged {
            let users: Vec<UserId> = self
                .conns
                .get(&token)
                .map(|c| c.subscriptions.iter().copied().collect())
                .unwrap_or_default();
            for user in users {
                self.drop_subscription(token, user);
            }
            self.enqueue_terminal(token, &Response::Err("lagged".to_owned()));
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
        }
    }

    /// Appends a terminal message, bypassing the outbox bound (the
    /// connection is already closing).
    fn enqueue_terminal(&mut self, token: u64, response: &Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let bytes = match conn.mode {
            WireMode::Text => {
                let mut b = render_text(response).into_bytes();
                b.push(b'\n');
                b
            }
            WireMode::Frame => render_frame(response),
        };
        conn.outbuf.extend_from_slice(&bytes);
        self.outbox_total += bytes.len();
    }

    /// Flushes what the socket will take, then re-arms the registration to
    /// the interest the connection actually needs — or tears it down when
    /// it needs nothing and has no reason to stay.
    fn finish(&mut self, token: u64) {
        if !self.flush(token) {
            return;
        }
        let (fd, registered, desired, should_close) = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            let want_read = !conn.read_eof && !conn.closing;
            let want_write = conn.pending_out() > 0;
            let desired = match (want_read, want_write) {
                (true, true) => Some(Interest::ReadWrite),
                (true, false) => Some(Interest::Read),
                (false, true) => Some(Interest::Write),
                (false, false) => None,
            };
            // With nothing to wait for, the connection either dies (it was
            // QUIT'd, evicted, or EOF'd without subscriptions) or parks
            // deregistered until an event for it arrives.
            let should_close = desired.is_none() && (conn.closing || conn.subscriptions.is_empty());
            (
                conn.stream.as_raw_fd(),
                conn.registered,
                desired,
                should_close,
            )
        };
        if should_close {
            self.close_conn(token);
            return;
        }
        let result = match (registered, desired) {
            (None, Some(interest)) => self.poller.register(fd, token, interest),
            (Some(current), Some(interest)) if current != interest => {
                self.poller.modify(fd, token, interest)
            }
            (Some(_), None) => self.poller.deregister(fd),
            _ => Ok(()),
        };
        match result {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.registered = desired;
                }
            }
            Err(_) => self.close_conn(token),
        }
    }

    /// Writes the outbox until the socket blocks. Returns `false` when the
    /// connection died (and has been closed).
    fn flush(&mut self, token: u64) -> bool {
        let (written, dead) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            let mut written = 0usize;
            let dead = loop {
                if conn.out_head >= conn.outbuf.len() {
                    break false;
                }
                match conn.stream.write(&conn.outbuf[conn.out_head..]) {
                    Ok(0) => break true,
                    Ok(n) => {
                        conn.out_head += n;
                        written += n;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            };
            if conn.out_head == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.out_head = 0;
            } else if conn.out_head > 64 * 1024 {
                conn.outbuf.drain(..conn.out_head);
                conn.out_head = 0;
            }
            (written, dead)
        };
        self.outbox_total -= written;
        if dead {
            self.close_conn(token);
            return false;
        }
        true
    }

    /// Removes one subscription, maintaining the reverse index and count.
    fn drop_subscription(&mut self, token: u64, user: UserId) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.subscriptions.remove(&user) {
            self.subscriber_count -= 1;
            if let Some(subs) = self.user_subs.get_mut(&user) {
                subs.remove(&token);
                if subs.is_empty() {
                    self.user_subs.remove(&user);
                }
            }
        }
    }

    /// Tears a connection down: poller registration, subscription index,
    /// gauge inputs, and the fd itself (dropped with the stream).
    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.registered.is_some() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.subscriber_count -= conn.subscriptions.len();
        for user in &conn.subscriptions {
            if let Some(subs) = self.user_subs.get_mut(user) {
                subs.remove(&token);
                if subs.is_empty() {
                    self.user_subs.remove(user);
                }
            }
        }
        self.outbox_total -= conn.pending_out();
    }

    /// Mirrors the reactor-owned counts into the metric gauges.
    fn refresh_gauges(&self) {
        if let Some(metrics) = self.service.metrics_bundle() {
            metrics.connections_open.set(self.conns.len() as f64);
            metrics.subscribers.set(self.subscriber_count as f64);
            metrics.subscriber_outbox.set(self.outbox_total as f64);
        }
    }
}

/// Extracts one complete request from the connection's input buffer
/// according to its wire mode. Consumes exactly the bytes of what it
/// returns (including any delimiter), so callers loop until
/// [`Extracted::Incomplete`].
fn extract_message(conn: &mut Conn, config: &ReactorConfig) -> Extracted {
    match conn.mode {
        WireMode::Text => {
            let Some(nl) = conn.inbuf.iter().position(|&b| b == b'\n') else {
                if conn.inbuf.len() > config.max_line {
                    conn.inbuf.clear();
                    return Extracted::Terminal(format!(
                        "request line exceeds {} bytes",
                        config.max_line
                    ));
                }
                return Extracted::Incomplete;
            };
            let raw: Vec<u8> = conn.inbuf.drain(..=nl).collect();
            let mut line = &raw[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            match std::str::from_utf8(line) {
                Ok(s) if s.trim().is_empty() => extract_message(conn, config),
                Ok(s) => Extracted::Line(s.to_owned()),
                Err(_) => Extracted::Recoverable("request line is not valid UTF-8".to_owned()),
            }
        }
        WireMode::Frame => {
            if conn.inbuf.len() < 4 {
                return Extracted::Incomplete;
            }
            let len = u32::from_be_bytes(conn.inbuf[..4].try_into().expect("4 bytes")) as usize;
            if len > config.max_line {
                conn.inbuf.clear();
                return Extracted::Terminal(format!(
                    "frame length {len} exceeds {} bytes",
                    config.max_line
                ));
            }
            if conn.inbuf.len() < 4 + len {
                return Extracted::Incomplete;
            }
            let raw: Vec<u8> = conn.inbuf.drain(..4 + len).collect();
            match std::str::from_utf8(&raw[4..]) {
                Ok(s) => Extracted::Line(s.to_owned()),
                Err(_) => Extracted::Recoverable("frame payload is not valid UTF-8".to_owned()),
            }
        }
    }
}

/// The enter/leave deltas turning the sorted frontier `before` into the
/// sorted frontier `after`, ascending by object id — the same canonical
/// encoding the monitors emit for arrivals.
fn diff_frontiers(user: UserId, before: &[ObjectId], after: &[ObjectId]) -> Vec<FrontierDelta> {
    let mut deltas = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < before.len() || j < after.len() {
        match (before.get(i), after.get(j)) {
            (Some(&b), Some(&a)) if b == a => {
                i += 1;
                j += 1;
            }
            (Some(&b), Some(&a)) if b < a => {
                deltas.push(FrontierDelta::leave(user, b));
                i += 1;
            }
            (Some(_), Some(&a)) => {
                deltas.push(FrontierDelta::enter(user, a));
                j += 1;
            }
            (Some(&b), None) => {
                deltas.push(FrontierDelta::leave(user, b));
                i += 1;
            }
            (None, Some(&a)) => {
                deltas.push(FrontierDelta::enter(user, a));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_diffs_are_canonical() {
        let u = UserId::new(1);
        let o = ObjectId::new;
        assert_eq!(diff_frontiers(u, &[], &[]), vec![]);
        assert_eq!(
            diff_frontiers(u, &[o(1), o(3)], &[o(2), o(3), o(5)]),
            vec![
                FrontierDelta::leave(u, o(1)),
                FrontierDelta::enter(u, o(2)),
                FrontierDelta::enter(u, o(5)),
            ]
        );
        assert_eq!(
            diff_frontiers(u, &[o(7)], &[]),
            vec![FrontierDelta::leave(u, o(7))]
        );
    }

    #[test]
    fn text_extraction_splits_lines_and_skips_blanks() {
        let mut conn = conn_with(WireMode::Text, b"HEALTH\r\n\nSTATS\npartial");
        let config = ReactorConfig::default();
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Line(l) if l == "HEALTH"
        ));
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Line(l) if l == "STATS"
        ));
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Incomplete
        ));
        assert_eq!(conn.inbuf, b"partial");
    }

    #[test]
    fn frame_extraction_honors_length_prefix_and_bounds() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&6u32.to_be_bytes());
        payload.extend_from_slice(b"HEALTH");
        payload.extend_from_slice(&3u32.to_be_bytes());
        payload.extend_from_slice(b"QU"); // incomplete
        let mut conn = conn_with(WireMode::Frame, &payload);
        let config = ReactorConfig::default();
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Line(l) if l == "HEALTH"
        ));
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Incomplete
        ));

        let mut conn = conn_with(WireMode::Frame, &u32::MAX.to_be_bytes());
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Terminal(_)
        ));
        assert!(conn.inbuf.is_empty(), "rejected frame must not linger");
    }

    #[test]
    fn overlong_inputs_are_rejected_before_buffering_unboundedly() {
        // A line that never terminates must not grow the input buffer past
        // `max_line`: the connection is closed with a terminal error the
        // moment the bound is exceeded, in both wire modes.
        let config = ReactorConfig {
            max_line: 8,
            ..ReactorConfig::default()
        };
        let mut conn = conn_with(WireMode::Text, b"NEWLINE-FREE GARBAGE");
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Terminal(e) if e.contains("exceeds 8 bytes")
        ));
        assert!(conn.inbuf.is_empty(), "rejected input must not linger");

        let mut framed = Vec::from(9u32.to_be_bytes());
        framed.extend_from_slice(b"123456789");
        let mut conn = conn_with(WireMode::Frame, &framed);
        assert!(matches!(
            extract_message(&mut conn, &config),
            Extracted::Terminal(e) if e.contains("frame length 9 exceeds 8 bytes")
        ));
        assert!(conn.inbuf.is_empty(), "rejected frame must not linger");
    }

    fn conn_with(mode: WireMode, input: &[u8]) -> Conn {
        // A socket pair is overkill for parser tests; any TcpStream works
        // because extraction never touches the stream.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn {
            stream,
            mode,
            inbuf: input.to_vec(),
            outbuf: Vec::new(),
            out_head: 0,
            subscriptions: HashSet::new(),
            registered: None,
            read_eof: false,
            closing: false,
        }
    }
}
