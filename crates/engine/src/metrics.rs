//! Engine-level observability: per-shard and rolled-up metrics.

use std::fmt;
use std::time::Duration;

use pm_core::MonitorStats;

/// A point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Number of users this shard owns.
    pub users: usize,
    /// Batches enqueued but not yet processed by this shard.
    pub queue_depth: usize,
    /// The shard monitor's work counters. Note that `arrivals` counts every
    /// object (objects are broadcast to all shards).
    pub stats: MonitorStats,
}

/// A point-in-time view of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Total number of users.
    pub users: usize,
    /// Objects ingested by the engine (each object counted once).
    pub ingested: u64,
    /// Lifetime count of applied REGISTER commands.
    pub registrations: u64,
    /// Lifetime count of applied UNREGISTER commands.
    pub unregistrations: u64,
    /// Lifetime count of applied in-place UPDATE commands.
    pub updates: u64,
    /// Number of distinct preferences across the registered users (exact,
    /// from the engine-level interner — per-shard sums would overcount
    /// preferences shared across shards).
    pub distinct_preferences: u64,
    /// Estimated heap bytes of the distinct preferences (build-time and
    /// compiled forms, counted once per distinct preference).
    pub preference_bytes: u64,
    /// Time since the engine was built.
    pub uptime: Duration,
    /// Arrivals per second over the last ~10 seconds (a ring of per-second
    /// buckets), as opposed to the lifetime average of
    /// [`EngineSnapshot::arrivals_per_sec`]: an idle engine decays to 0
    /// here while the lifetime average only dilutes.
    pub recent_arrivals_per_sec: f64,
    /// Median submit-to-fan-in latency of ingest batches, in microseconds
    /// (0 when the engine runs without metrics or nothing was ingested).
    pub ingest_p50_us: f64,
    /// 95th-percentile ingest batch latency, in microseconds.
    pub ingest_p95_us: f64,
    /// 99th-percentile ingest batch latency, in microseconds.
    pub ingest_p99_us: f64,
}

impl EngineSnapshot {
    /// Lifetime ingestion throughput since the engine was built, in
    /// arrivals per second. See
    /// [`EngineSnapshot::recent_arrivals_per_sec`] for the windowed rate.
    pub fn arrivals_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ingested as f64 / secs
        }
    }

    /// Estimated preference bytes per registered user: the interner's
    /// distinct-preference bytes spread over the whole population. This is
    /// the headline number of the shared-preference premise (Sec. 4) — it
    /// *falls* as the population grows while the distinct count saturates.
    pub fn bytes_per_user(&self) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.preference_bytes as f64 / self.users as f64
        }
    }

    /// Per-shard queue depths, indexed by shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue_depth).collect()
    }

    /// Live user count per shard, indexed by shard. With dynamic
    /// registration this is the observable effect of REGISTER/UNREGISTER:
    /// the owning shard's count moves immediately.
    pub fn users_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.users).collect()
    }

    /// User-partition skew: largest shard population divided by the ideal
    /// (uniform) population. 1.0 is a perfect split; 0.0 when there are no
    /// users.
    pub fn shard_skew(&self) -> f64 {
        if self.users == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let largest = self.shards.iter().map(|s| s.users).max().unwrap_or(0);
        let ideal = self.users as f64 / self.shards.len() as f64;
        largest as f64 / ideal
    }

    /// Total pairwise comparisons across all shards.
    pub fn total_comparisons(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.comparisons).sum()
    }

    /// Total (object, user) notifications across all shards.
    pub fn total_notifications(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.notifications).sum()
    }

    /// Window expirations (identical on every shard; the maximum is
    /// reported so partially drained shards cannot under-report).
    pub fn expirations(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats.expirations)
            .max()
            .unwrap_or(0)
    }

    /// Retained backfill-history objects per shard, indexed by shard.
    /// Objects and observed preferences are both broadcast to every shard,
    /// so for spec-built engines the per-shard values coincide; they are
    /// still reported per shard because memory is per-shard (no roll-up
    /// sum would be meaningful) and custom monitor factories may retain
    /// differently.
    pub fn history_objects_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats.history_objects)
            .collect()
    }

    /// History objects saved versus an unlimited history, per shard — the
    /// lifetime eviction counters of truncation/compaction.
    pub fn history_saved_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats.history_evicted)
            .collect()
    }
}

impl fmt::Display for EngineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |values: Vec<String>| values.join(",");
        let depths: Vec<String> = self
            .shards
            .iter()
            .map(|s| s.queue_depth.to_string())
            .collect();
        let users: Vec<String> = self.shards.iter().map(|s| s.users.to_string()).collect();
        let history: Vec<String> = self
            .history_objects_per_shard()
            .iter()
            .map(u64::to_string)
            .collect();
        let saved: Vec<String> = self
            .history_saved_per_shard()
            .iter()
            .map(u64::to_string)
            .collect();
        write!(
            f,
            "ingested={} arrivals_per_sec={:.1} recent_arrivals_per_sec={:.1} \
             ingest_p50_us={:.0} ingest_p95_us={:.0} ingest_p99_us={:.0} \
             users={} shards={} shard_users={} skew={:.2} \
             registrations={} unregistrations={} updates={} \
             distinct_preferences={} bytes_per_user={:.1} \
             comparisons={} notifications={} expirations={} \
             history_objects={} history_saved={} queue_depths={}",
            self.ingested,
            self.arrivals_per_sec(),
            self.recent_arrivals_per_sec,
            self.ingest_p50_us,
            self.ingest_p95_us,
            self.ingest_p99_us,
            self.users,
            self.shards.len(),
            join(users),
            self.shard_skew(),
            self.registrations,
            self.unregistrations,
            self.updates,
            self.distinct_preferences,
            self.bytes_per_user(),
            self.total_comparisons(),
            self.total_notifications(),
            self.expirations(),
            join(history),
            join(saved),
            join(depths)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(shard: usize, users: usize, comparisons: u64) -> ShardSnapshot {
        let mut stats = MonitorStats::new();
        stats.comparisons = comparisons;
        ShardSnapshot {
            shard,
            users,
            queue_depth: 0,
            stats,
        }
    }

    fn snapshot(shards: Vec<ShardSnapshot>, users: usize, ingested: u64) -> EngineSnapshot {
        EngineSnapshot {
            shards,
            users,
            ingested,
            registrations: 0,
            unregistrations: 0,
            updates: 0,
            distinct_preferences: 0,
            preference_bytes: 0,
            uptime: Duration::ZERO,
            recent_arrivals_per_sec: 0.0,
            ingest_p50_us: 0.0,
            ingest_p95_us: 0.0,
            ingest_p99_us: 0.0,
        }
    }

    #[test]
    fn skew_of_perfect_split_is_one() {
        let mut snap = snapshot(vec![shard(0, 5, 10), shard(1, 5, 20)], 10, 7);
        snap.uptime = Duration::from_secs(1);
        assert!((snap.shard_skew() - 1.0).abs() < 1e-9);
        assert_eq!(snap.total_comparisons(), 30);
        assert!((snap.arrivals_per_sec() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn skew_grows_with_imbalance() {
        let snap = snapshot(vec![shard(0, 9, 0), shard(1, 1, 0)], 10, 0);
        assert!((snap.shard_skew() - 1.8).abs() < 1e-9);
        assert_eq!(snap.arrivals_per_sec(), 0.0);
    }

    #[test]
    fn empty_engine_snapshot_is_well_defined() {
        let snap = snapshot(vec![], 0, 0);
        assert_eq!(snap.shard_skew(), 0.0);
        assert_eq!(snap.expirations(), 0);
        assert!(snap.to_string().contains("ingested=0"));
    }

    #[test]
    fn display_reports_latency_percentiles_and_recent_rate() {
        let mut snap = snapshot(vec![shard(0, 1, 0)], 1, 100);
        snap.recent_arrivals_per_sec = 12.34;
        snap.ingest_p50_us = 150.0;
        snap.ingest_p95_us = 900.0;
        snap.ingest_p99_us = 2048.4;
        let text = snap.to_string();
        assert!(text.contains("recent_arrivals_per_sec=12.3"), "{text}");
        assert!(text.contains("ingest_p50_us=150"), "{text}");
        assert!(text.contains("ingest_p95_us=900"), "{text}");
        assert!(text.contains("ingest_p99_us=2048"), "{text}");
    }
}
