//! The engine's metric bundle: every counter, gauge and histogram the
//! serving layers record into, registered once against a
//! [`pm_obs::Registry`] and exposed through the `METRICS` wire verb in
//! Prometheus text format 0.0.4.
//!
//! Metric names are part of the wire contract (dashboards key on them), so
//! they are pinned by a golden test and documented in the README's
//! observability table. Durations are recorded in nanoseconds (the native
//! resolution of [`pm_obs::LogHistogram`]) and rendered in seconds, as
//! Prometheus conventions require.

use std::sync::Arc;
use std::time::Duration;

use pm_core::MonitorTimers;
use pm_obs::{Counter, Gauge, LogHistogram, Registry};

use crate::metrics::EngineSnapshot;
use crate::protocol::Request;

/// The wire verbs that carry per-verb request metrics, in label order.
///
/// `QUIT` is excluded: it does no engine work and closes the connection, so
/// a latency series for it would only ever record channel teardown noise.
pub const VERBS: [Verb; 14] = [
    Verb::Expire,
    Verb::Frontier,
    Verb::Health,
    Verb::Hello,
    Verb::Ingest,
    Verb::Metrics,
    Verb::Query,
    Verb::Register,
    Verb::Snapshot,
    Verb::Stats,
    Verb::Subscribe,
    Verb::Unregister,
    Verb::Unsubscribe,
    Verb::Update,
];

/// A request verb, as used for the `verb` label of the per-request metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `EXPIRE`
    Expire,
    /// `FRONTIER`
    Frontier,
    /// `HEALTH`
    Health,
    /// `HELLO`
    Hello,
    /// `INGEST`
    Ingest,
    /// `METRICS`
    Metrics,
    /// `QUERY`
    Query,
    /// `REGISTER`
    Register,
    /// `SNAPSHOT`
    Snapshot,
    /// `STATS`
    Stats,
    /// `SUBSCRIBE`
    Subscribe,
    /// `UNREGISTER`
    Unregister,
    /// `UNSUBSCRIBE`
    Unsubscribe,
    /// `UPDATE`
    Update,
}

impl Verb {
    /// The `verb` label value (lowercase verb name).
    pub fn as_label(self) -> &'static str {
        match self {
            Verb::Expire => "expire",
            Verb::Frontier => "frontier",
            Verb::Health => "health",
            Verb::Hello => "hello",
            Verb::Ingest => "ingest",
            Verb::Metrics => "metrics",
            Verb::Query => "query",
            Verb::Register => "register",
            Verb::Snapshot => "snapshot",
            Verb::Stats => "stats",
            Verb::Subscribe => "subscribe",
            Verb::Unregister => "unregister",
            Verb::Unsubscribe => "unsubscribe",
            Verb::Update => "update",
        }
    }

    /// The verb of a parsed request; `None` for `QUIT` (see [`VERBS`]) and
    /// for the internal cluster verbs (`EXPORT` is coordinator-only
    /// plumbing, and a `SEQ`-wrapped request records as its inner verb),
    /// which are not part of the per-verb metric contract.
    pub fn of(request: &Request) -> Option<Verb> {
        match request {
            Request::Ingest(_) => Some(Verb::Ingest),
            Request::Expire => Some(Verb::Expire),
            Request::Query(_) => Some(Verb::Query),
            Request::Frontier(_) => Some(Verb::Frontier),
            Request::Register { .. } => Some(Verb::Register),
            Request::Update { .. } => Some(Verb::Update),
            Request::Unregister(_) => Some(Verb::Unregister),
            Request::Subscribe(_) => Some(Verb::Subscribe),
            Request::Unsubscribe(_) => Some(Verb::Unsubscribe),
            Request::Hello(_) => Some(Verb::Hello),
            Request::Snapshot => Some(Verb::Snapshot),
            Request::Stats => Some(Verb::Stats),
            Request::Metrics => Some(Verb::Metrics),
            Request::Health => Some(Verb::Health),
            Request::Quit => None,
            Request::Export(_) => None,
            Request::Sequenced { inner, .. } => Verb::of(inner),
        }
    }

    fn index(self) -> usize {
        VERBS
            .iter()
            .position(|&v| v == self)
            .expect("every verb is listed in VERBS")
    }
}

/// Every metric the engine and serving layer record into, created once per
/// engine (when [`crate::EngineConfig::metrics`] is on) and shared behind an
/// [`Arc`] by the shard workers, the batch fan-in path and the TCP service.
///
/// Recording is lock-free throughout (relaxed atomics); the only lock is
/// taken by [`EngineMetrics::render`], which also refreshes the gauges and
/// mirrored counters from an [`EngineSnapshot`] so a scrape always reports
/// a consistent point-in-time view.
pub struct EngineMetrics {
    registry: Registry,
    // Per-verb request metrics, indexed by `Verb::index`.
    requests: Vec<Arc<Counter>>,
    request_latency: Vec<Arc<LogHistogram>>,
    request_errors: Arc<Counter>,
    // Per-stage ingest split.
    pub(crate) stage_parse: Arc<LogHistogram>,
    pub(crate) stage_lock_hold: Arc<LogHistogram>,
    pub(crate) stage_queue_wait: Arc<LogHistogram>,
    pub(crate) stage_shard_apply: Arc<LogHistogram>,
    pub(crate) stage_fan_in: Arc<LogHistogram>,
    /// Submit-to-fan-in latency of whole ingest batches; the source of the
    /// p50/p95/p99 that STATS reports.
    pub(crate) ingest_batch: Arc<LogHistogram>,
    // Monitor-level timers, shared by every shard's monitor.
    monitor_arrival: Arc<LogHistogram>,
    monitor_backfill: Arc<LogHistogram>,
    monitor_sweep: Arc<LogHistogram>,
    pub(crate) slow_ops: Arc<Counter>,
    pub(crate) connections: Arc<Counter>,
    // Reactor-maintained gauges; the single-threaded reactor owns the true
    // counts and mirrors them here on every change.
    pub(crate) connections_open: Arc<Gauge>,
    pub(crate) subscribers: Arc<Gauge>,
    pub(crate) subscriber_outbox: Arc<Gauge>,
    // Gauges and mirrored lifetime counters, refreshed at scrape time from
    // an `EngineSnapshot`.
    users: Arc<Gauge>,
    uptime: Arc<Gauge>,
    recent_rate: Arc<Gauge>,
    queue_depth: Vec<Arc<Gauge>>,
    shard_users: Vec<Arc<Gauge>>,
    ingested: Arc<Counter>,
    registrations: Arc<Counter>,
    unregistrations: Arc<Counter>,
    updates: Arc<Counter>,
    comparisons: Arc<Counter>,
    notifications: Arc<Counter>,
    expirations: Arc<Counter>,
    history_objects: Arc<Gauge>,
    distinct_preferences: Arc<Gauge>,
    preference_bytes: Arc<Gauge>,
    // Durability: mirrored WAL counters (refreshed at scrape time from
    // `pm_wal::WalStats`) and snapshot bookkeeping (pushed by the service
    // after each snapshot). All stay 0 without `--wal-dir`.
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    wal_next_lsn: Arc<Gauge>,
    wal_snapshots: Arc<Counter>,
    wal_last_snapshot_lsn: Arc<Gauge>,
}

impl EngineMetrics {
    /// Registers the full metric set for an engine with `shards` shards
    /// running `backend`. The label sets are fixed here: per-verb series
    /// cover [`VERBS`], per-shard series cover `0..shards`.
    pub fn new(backend: &str, shards: usize) -> Self {
        let registry = Registry::new();
        registry
            .gauge(
                "pm_build_info",
                "Engine identity; the value is always 1.",
                &[("backend", backend), ("shards", &shards.to_string())],
            )
            .set(1.0);

        let mut requests = Vec::with_capacity(VERBS.len());
        let mut request_latency = Vec::with_capacity(VERBS.len());
        for verb in VERBS {
            let labels = [("verb", verb.as_label())];
            requests.push(registry.counter(
                "pm_requests_total",
                "Requests handled, by verb (QUIT excluded).",
                &labels,
            ));
            request_latency.push(registry.histogram(
                "pm_request_duration_seconds",
                "Request handling latency, by verb.",
                &labels,
            ));
        }
        let stage = |name: &str| {
            registry.histogram(
                "pm_ingest_stage_duration_seconds",
                "Per-stage split of the ingest path.",
                &[("stage", name)],
            )
        };

        let mut queue_depth = Vec::with_capacity(shards);
        let mut shard_users = Vec::with_capacity(shards);
        for shard in 0..shards {
            let shard_label = shard.to_string();
            let labels = [("shard", shard_label.as_str())];
            queue_depth.push(registry.gauge(
                "pm_shard_queue_depth",
                "Batches enqueued but not yet processed, by shard.",
                &labels,
            ));
            shard_users.push(registry.gauge(
                "pm_shard_users",
                "Registered users owned, by shard.",
                &labels,
            ));
        }

        Self {
            requests,
            request_latency,
            request_errors: registry.counter(
                "pm_request_errors_total",
                "Requests answered with ERR, including unparseable lines.",
                &[],
            ),
            stage_parse: stage("parse"),
            stage_lock_hold: stage("lock_hold"),
            stage_queue_wait: stage("queue_wait"),
            stage_shard_apply: stage("shard_apply"),
            stage_fan_in: stage("fan_in"),
            ingest_batch: registry.histogram(
                "pm_ingest_batch_duration_seconds",
                "Submit-to-fan-in latency of whole ingest batches.",
                &[],
            ),
            monitor_arrival: registry.histogram(
                "pm_monitor_arrival_duration_seconds",
                "Per-arrival monitor processing time, across shards.",
                &[],
            ),
            monitor_backfill: registry.histogram(
                "pm_monitor_backfill_duration_seconds",
                "REGISTER/UPDATE backfill-replay duration, across shards.",
                &[],
            ),
            monitor_sweep: registry.histogram(
                "pm_history_sweep_duration_seconds",
                "History-compaction sweep duration, across shards.",
                &[],
            ),
            slow_ops: registry.counter(
                "pm_slow_ops_total",
                "Ingest batches slower than the slow-op threshold.",
                &[],
            ),
            connections: registry.counter("pm_connections_total", "TCP connections accepted.", &[]),
            connections_open: registry.gauge(
                "pm_connections_open",
                "TCP connections currently open.",
                &[],
            ),
            subscribers: registry.gauge(
                "pm_subscribers",
                "Active frontier subscriptions across all connections.",
                &[],
            ),
            subscriber_outbox: registry.gauge(
                "pm_subscriber_outbox_depth",
                "Bytes buffered for subscribers, summed across connections.",
                &[],
            ),
            users: registry.gauge("pm_users", "Registered users.", &[]),
            uptime: registry.gauge("pm_uptime_seconds", "Time since the engine was built.", &[]),
            recent_rate: registry.gauge(
                "pm_ingest_recent_arrivals_per_sec",
                "Arrivals per second over the last 10 seconds.",
                &[],
            ),
            queue_depth,
            shard_users,
            ingested: registry.counter(
                "pm_objects_ingested_total",
                "Objects ingested (each object once, not once per shard).",
                &[],
            ),
            registrations: registry.counter(
                "pm_registrations_total",
                "Applied REGISTER commands.",
                &[],
            ),
            unregistrations: registry.counter(
                "pm_unregistrations_total",
                "Applied UNREGISTER commands.",
                &[],
            ),
            updates: registry.counter("pm_updates_total", "Applied in-place UPDATE commands.", &[]),
            comparisons: registry.counter(
                "pm_comparisons_total",
                "Pairwise dominance comparisons, summed across shards.",
                &[],
            ),
            notifications: registry.counter(
                "pm_notifications_total",
                "(object, user) notifications, summed across shards.",
                &[],
            ),
            expirations: registry.counter(
                "pm_expirations_total",
                "Sliding-window expirations (per-shard maximum).",
                &[],
            ),
            history_objects: registry.gauge(
                "pm_history_objects",
                "Retained backfill-history objects (per-shard maximum).",
                &[],
            ),
            distinct_preferences: registry.gauge(
                "pm_distinct_preferences",
                "Distinct preferences across the registered users.",
                &[],
            ),
            preference_bytes: registry.gauge(
                "pm_preference_bytes",
                "Heap bytes of the distinct preferences (counted once each).",
                &[],
            ),
            wal_records: registry.counter(
                "pm_wal_records_total",
                "WAL records appended since the log was opened.",
                &[],
            ),
            wal_bytes: registry.counter(
                "pm_wal_bytes_total",
                "WAL bytes appended since open (payload plus framing).",
                &[],
            ),
            wal_fsyncs: registry.counter(
                "pm_wal_fsyncs_total",
                "WAL fsync calls issued since open.",
                &[],
            ),
            wal_next_lsn: registry.gauge(
                "pm_wal_next_lsn",
                "The next WAL LSN to be assigned.",
                &[],
            ),
            wal_snapshots: registry.counter(
                "pm_wal_snapshots_total",
                "Durable snapshots written since startup.",
                &[],
            ),
            wal_last_snapshot_lsn: registry.gauge(
                "pm_wal_last_snapshot_lsn",
                "The WAL LSN covered by the most recent snapshot.",
                &[],
            ),
            registry,
        }
    }

    /// Mirrors the WAL's own counters into the exposition; called at
    /// scrape time by [`crate::ShardedEngine::render_metrics`] when a WAL
    /// is attached.
    pub fn record_wal(&self, stats: pm_wal::WalStats) {
        self.wal_records.store(stats.records);
        self.wal_bytes.store(stats.bytes);
        self.wal_fsyncs.store(stats.fsyncs);
        self.wal_next_lsn.set(stats.next_lsn as f64);
    }

    /// Records snapshot bookkeeping; pushed by the serving layer after
    /// every successful snapshot.
    pub fn record_snapshot(&self, snapshots: u64, last_lsn: u64) {
        self.wal_snapshots.store(snapshots);
        self.wal_last_snapshot_lsn.set(last_lsn as f64);
    }

    /// The monitor-level timer bundle handed to every shard's monitor via
    /// [`pm_core::ContinuousMonitor::set_timers`]. All shards share the
    /// same histograms — recording is lock-free, so no per-shard split or
    /// merge step is needed.
    pub fn timers(&self) -> MonitorTimers {
        MonitorTimers {
            arrival: Some(Arc::clone(&self.monitor_arrival)),
            backfill: Some(Arc::clone(&self.monitor_backfill)),
            sweep: Some(Arc::clone(&self.monitor_sweep)),
        }
    }

    /// Records one handled request: bumps the verb's counter and its
    /// latency histogram.
    pub fn record_request(&self, verb: Verb, duration: Duration) {
        self.requests[verb.index()].inc();
        self.request_latency[verb.index()].record_duration(duration);
    }

    /// Records one `ERR` response (including unparseable request lines).
    pub fn record_error(&self) {
        self.request_errors.inc();
    }

    /// Refreshes the gauges and mirrored counters from `snapshot` and
    /// renders the whole registry in Prometheus text format 0.0.4.
    pub fn render(&self, snapshot: &EngineSnapshot) -> String {
        self.users.set(snapshot.users as f64);
        self.uptime.set(snapshot.uptime.as_secs_f64());
        self.recent_rate.set(snapshot.recent_arrivals_per_sec);
        for (shard, depth) in snapshot.queue_depths().into_iter().enumerate() {
            if let Some(gauge) = self.queue_depth.get(shard) {
                gauge.set(depth as f64);
            }
        }
        for (shard, users) in snapshot.users_per_shard().into_iter().enumerate() {
            if let Some(gauge) = self.shard_users.get(shard) {
                gauge.set(users as f64);
            }
        }
        self.ingested.store(snapshot.ingested);
        self.registrations.store(snapshot.registrations);
        self.unregistrations.store(snapshot.unregistrations);
        self.updates.store(snapshot.updates);
        self.comparisons.store(snapshot.total_comparisons());
        self.notifications.store(snapshot.total_notifications());
        self.expirations.store(snapshot.expirations());
        let history = snapshot
            .history_objects_per_shard()
            .into_iter()
            .max()
            .unwrap_or(0);
        self.history_objects.set(history as f64);
        self.distinct_preferences
            .set(snapshot.distinct_preferences as f64);
        self.preference_bytes.set(snapshot.preference_bytes as f64);
        self.registry.render()
    }
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineMetrics").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_labeled_and_indexed_consistently() {
        for (i, verb) in VERBS.into_iter().enumerate() {
            assert_eq!(verb.index(), i);
            assert!(!verb.as_label().is_empty());
        }
        // Labels are unique and sorted (the registry renders label-sorted
        // series; a sorted VERBS list keeps registration order deterministic).
        let labels: Vec<&str> = VERBS.iter().map(|v| v.as_label()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn exposition_covers_the_documented_families() {
        let metrics = EngineMetrics::new("baseline", 2);
        metrics.record_request(Verb::Ingest, Duration::from_micros(120));
        metrics.record_error();
        let snapshot = EngineSnapshot {
            shards: Vec::new(),
            users: 3,
            ingested: 9,
            registrations: 1,
            unregistrations: 0,
            updates: 2,
            distinct_preferences: 2,
            preference_bytes: 640,
            uptime: Duration::from_secs(5),
            recent_arrivals_per_sec: 1.5,
            ingest_p50_us: 0.0,
            ingest_p95_us: 0.0,
            ingest_p99_us: 0.0,
        };
        let text = metrics.render(&snapshot);
        for family in [
            "pm_build_info",
            "pm_requests_total",
            "pm_request_errors_total",
            "pm_request_duration_seconds",
            "pm_ingest_stage_duration_seconds",
            "pm_ingest_batch_duration_seconds",
            "pm_monitor_arrival_duration_seconds",
            "pm_monitor_backfill_duration_seconds",
            "pm_history_sweep_duration_seconds",
            "pm_shard_queue_depth",
            "pm_shard_users",
            "pm_users",
            "pm_uptime_seconds",
            "pm_ingest_recent_arrivals_per_sec",
            "pm_objects_ingested_total",
            "pm_registrations_total",
            "pm_unregistrations_total",
            "pm_updates_total",
            "pm_comparisons_total",
            "pm_notifications_total",
            "pm_expirations_total",
            "pm_history_objects",
            "pm_distinct_preferences",
            "pm_preference_bytes",
            "pm_slow_ops_total",
            "pm_connections_total",
            "pm_connections_open",
            "pm_subscribers",
            "pm_subscriber_outbox_depth",
            "pm_wal_records_total",
            "pm_wal_bytes_total",
            "pm_wal_fsyncs_total",
            "pm_wal_next_lsn",
            "pm_wal_snapshots_total",
            "pm_wal_last_snapshot_lsn",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing family {family}:\n{text}"
            );
        }
        assert!(
            text.contains("pm_requests_total{verb=\"ingest\"} 1"),
            "{text}"
        );
        assert!(text.contains("pm_objects_ingested_total 9"), "{text}");
        assert!(text.contains("pm_distinct_preferences 2"), "{text}");
        assert!(text.contains("pm_preference_bytes 640"), "{text}");
        assert!(
            text.contains("pm_ingest_recent_arrivals_per_sec 1.5"),
            "{text}"
        );
        assert!(
            text.contains("pm_build_info{backend=\"baseline\",shards=\"2\"} 1"),
            "{text}"
        );
    }
}
