//! The sharded engine: user partitioning, worker lifecycle, batch
//! ingestion with backpressure, and fan-in of per-shard results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pm_core::{Arrival, FrontierDelta, MonitorState, MonitorStats};
use pm_model::{Object, ObjectId, UserId};
use pm_obs::WindowedRate;
use pm_porder::{Preference, PreferenceInterner};
use pm_wal::{encode_ingest_batch, encode_register, encode_unregister, encode_update, Wal};

use crate::backend::BackendSpec;
use crate::metrics::{EngineSnapshot, ShardSnapshot};
use crate::obs::EngineMetrics;
use crate::shard::{BoxedMonitor, ShardBatchReply, ShardCmd, ShardWorker};

/// Sizing knobs of a [`ShardedEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard worker threads (`N ≥ 1`).
    pub shards: usize,
    /// Capacity of each shard's inbox, in batches. Ingestion blocks once a
    /// shard is this many batches behind (backpressure).
    pub queue_capacity: usize,
    /// Whether the engine carries an [`EngineMetrics`] bundle: per-verb
    /// and per-stage latency histograms, per-shard gauges and the
    /// Prometheus `METRICS` exposition. Recording is lock-free atomics, so
    /// the default is on; switch it off to measure (or avoid) even that
    /// overhead — `METRICS` then answers `ERR` and STATS reports zero
    /// latency percentiles.
    pub metrics: bool,
}

impl EngineConfig {
    /// A config with `shards` workers, the default queue capacity and
    /// metrics on.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            queue_capacity: 16,
            metrics: true,
        }
    }

    /// Overrides the per-shard inbox capacity (in batches).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Switches the metrics bundle on or off (see [`EngineConfig::metrics`]).
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(shards)
    }
}

/// The shard that owns `user` when the population is split `shards` ways.
///
/// Delegates to [`pm_model::Partitioner`] — the same mapping a cluster
/// coordinator uses to assign users to nodes, so shard-level and
/// node-level ownership cannot drift. The hash spreads structured id
/// spaces — e.g. tenants allocated in contiguous ranges — evenly across
/// shards while staying fully deterministic: the same user lands on the
/// same shard for every engine with the same shard count.
pub fn shard_of(user: UserId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    pm_model::Partitioner::new(shards).owner_of(user)
}

/// Locks a mutex, recovering from poisoning. A panicking thread (e.g. a
/// connection thread that died mid-call) must not wedge every future
/// request with `PoisonError`s: the critical sections guarded here only
/// enqueue commands or copy membership data, so the state behind the lock
/// is consistent even if a holder panicked.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine-global interned view of the registered population: one
/// [`PreferenceInterner`] slot per distinct preference plus the slot id
/// each user holds. Kept at the engine level (not rolled up from the
/// shards) because a preference shared by users on different shards must
/// count once, not once per shard.
#[derive(Debug, Default)]
struct InternedPopulation {
    interner: PreferenceInterner,
    ids: HashMap<UserId, u32>,
}

impl InternedPopulation {
    /// Acquires a slot for `preference` without binding it to a user yet;
    /// pair with [`Self::commit`] on success or [`Self::abort`] on failure.
    fn acquire(&mut self, preference: &Preference) -> u32 {
        self.interner.intern(preference).id
    }

    /// Binds an acquired slot to `user`, releasing any slot the user held
    /// before (in-place update).
    fn commit(&mut self, user: UserId, slot: u32) {
        if let Some(old) = self.ids.insert(user, slot) {
            self.interner.release(old);
        }
    }

    /// Releases an acquired slot that never got bound (the shard worker
    /// rejected or died mid-command).
    fn abort(&mut self, slot: u32) {
        self.interner.release(slot);
    }

    /// Drops `user`'s binding and releases its slot (unregistration).
    fn remove(&mut self, user: UserId) {
        if let Some(slot) = self.ids.remove(&user) {
            self.interner.release(slot);
        }
    }
}

/// A concurrent monitoring engine that partitions users across shard
/// threads.
///
/// Every arriving object is broadcast to all shards; each shard updates the
/// frontiers of its own users and replies with the target users it owns; the
/// engine merges the disjoint per-shard sets into one [`Arrival`] identical
/// to what the backing single-threaded monitor would have produced.
///
/// That exactness guarantee is unconditional for the backends whose
/// per-user results do not depend on how users are grouped: `Baseline`,
/// `BaselineSw` and append-only `FilterThenVerify` (Lemma 4.6 makes the
/// cluster filter exact regardless of the clustering). The approximate and
/// sliding-window FilterThenVerify backends cluster each shard's users
/// independently, so their paper-sanctioned approximation error varies
/// with the shard count — results then match a single-threaded monitor
/// built over the same per-shard clusterings, not one global clustering.
///
/// All methods take `&self`: the engine can be shared behind an [`Arc`] by
/// any number of client threads. Commands are enqueued to every shard in one
/// consistent global order (a short critical section around the send), so
/// concurrent ingestion from several threads interleaves at batch
/// granularity and every shard observes the same object order.
///
/// The population is **dynamic**: [`ShardedEngine::register`] adds a user
/// mid-stream (routed to its owning shard, frontier backfilled from the
/// alive objects) and [`ShardedEngine::unregister`] drops one. Because
/// registrations are enqueued under the same ordering lock as batches, a
/// user registered before a batch sees exactly that batch onward — no
/// arrival is dropped or duplicated around a membership change.
pub struct ShardedEngine {
    /// Locked while *enqueueing* so all shards see commands in one order;
    /// replies are awaited without holding the lock, which lets the next
    /// batch be enqueued while shards still chew on the previous one.
    senders: Mutex<Vec<SyncSender<ShardCmd>>>,
    handles: Vec<JoinHandle<()>>,
    queue_depths: Vec<Arc<AtomicUsize>>,
    /// Engine-side view of which global users each shard owns. Mutated only
    /// while holding `senders` (after it, in lock order), so it never
    /// disagrees with the command stream the workers observe.
    membership: Mutex<Vec<Vec<UserId>>>,
    num_users: AtomicUsize,
    ingested: AtomicU64,
    /// Lifetime counts of applied membership commands, for observability:
    /// STATS exposes them so churn (and in-place updates in particular) is
    /// visible without diffing user lists.
    registrations: AtomicU64,
    unregistrations: AtomicU64,
    updates: AtomicU64,
    /// Engine-global preference interning for the `distinct_preferences=` /
    /// `bytes_per_user=` gauges. Locked after `membership` (and always
    /// innermost) when touched inside the ordering critical sections.
    population: Mutex<InternedPopulation>,
    /// Whether registered/updated preferences are broadcast to every shard
    /// to keep the history-compaction universe engine-global. `false` for
    /// backends whose monitors ignore `observe_preference` (everything but
    /// the compacting-history ones), which skips per-churn preference
    /// clones and channel sends that would be no-ops.
    broadcast_observes: bool,
    started: Instant,
    /// Arrivals over the last ~10 seconds, for the windowed recent rate in
    /// STATS and METRICS. Always maintained (one relaxed atomic add per
    /// awaited batch), independent of the `metrics` switch.
    recent: WindowedRate,
    /// The metric bundle, present when built with
    /// [`EngineConfig::metrics`] on.
    metrics: Option<Arc<EngineMetrics>>,
    /// The attached write-ahead log, if durability is on. Appends happen
    /// inside the `senders` critical sections (after validation, before the
    /// enqueue), so WAL order is exactly the order every shard applies
    /// mutations in. `None` until [`ShardedEngine::set_wal`] — recovery
    /// replay runs *before* attachment so replayed mutations are not
    /// re-appended — and reset to `None` if an append ever fails (log and
    /// degrade: a full disk must not take the serving path down).
    wal: Mutex<Option<Arc<Wal>>>,
}

impl ShardedEngine {
    /// Builds an engine whose shards run the backend described by `spec`.
    ///
    /// `preferences[i]` is the preference of global user `i`, exactly as for
    /// the single-threaded monitors.
    pub fn new(preferences: Vec<Preference>, config: &EngineConfig, spec: &BackendSpec) -> Self {
        Self::build_with_factory(
            preferences,
            config,
            |prefs| spec.build(prefs),
            spec.compacts_history(),
            &spec.to_string(),
        )
    }

    /// Builds an engine with a custom monitor factory.
    ///
    /// The factory is invoked once per shard with the shard's users'
    /// preferences (densely re-indexed: local user `j` is the `j`-th
    /// preference of the slice) and returns the monitor that shard owns.
    /// Preference observes are always broadcast (the factory may build
    /// monitors with compacting histories); [`Self::new`] skips the
    /// broadcast when the backend spec shows it would be a no-op.
    pub fn with_factory<F>(preferences: Vec<Preference>, config: &EngineConfig, factory: F) -> Self
    where
        F: FnMut(&[Preference]) -> BoxedMonitor,
    {
        Self::build_with_factory(preferences, config, factory, true, "custom")
    }

    fn build_with_factory<F>(
        preferences: Vec<Preference>,
        config: &EngineConfig,
        mut factory: F,
        broadcast_observes: bool,
        backend_label: &str,
    ) -> Self
    where
        F: FnMut(&[Preference]) -> BoxedMonitor,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        let metrics = config
            .metrics
            .then(|| Arc::new(EngineMetrics::new(backend_label, config.shards)));
        let num_users = preferences.len();
        let mut population = InternedPopulation::default();
        for (idx, preference) in preferences.iter().enumerate() {
            let slot = population.acquire(preference);
            population.commit(UserId::from(idx), slot);
        }
        // Only compacting backends read the full preference list (to seed
        // every shard's universe); skip the deep clone otherwise.
        let all_preferences = broadcast_observes.then(|| preferences.clone());
        let mut shard_users: Vec<Vec<UserId>> = vec![Vec::new(); config.shards];
        let mut shard_prefs: Vec<Vec<Preference>> = vec![Vec::new(); config.shards];
        for (idx, pref) in preferences.into_iter().enumerate() {
            let user = UserId::from(idx);
            let shard = shard_of(user, config.shards);
            shard_users[shard].push(user);
            shard_prefs[shard].push(pref);
        }

        let mut senders = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        let mut queue_depths = Vec::with_capacity(config.shards);
        for (shard, prefs) in shard_prefs.into_iter().enumerate() {
            let mut monitor = factory(&prefs);
            assert_eq!(
                monitor.num_users(),
                prefs.len(),
                "factory must build a monitor over exactly the shard's users"
            );
            // The history-compaction universe is engine-global: every shard
            // observes every user's preference (its own included, which is
            // idempotent), so a preference living on another shard today
            // can register here tomorrow and still be backfilled exactly.
            if let Some(all_preferences) = &all_preferences {
                for preference in all_preferences {
                    monitor.observe_preference(preference);
                }
            }
            // Every shard's monitor records into the same engine-wide timer
            // histograms (recording is lock-free, so sharing beats merging).
            if let Some(metrics) = &metrics {
                monitor.set_timers(metrics.timers());
            }
            let depth = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
            let worker = ShardWorker {
                shard,
                monitor,
                global_users: shard_users[shard].clone(),
                queue_depth: Arc::clone(&depth),
                queue_wait: metrics.as_ref().map(|m| Arc::clone(&m.stage_queue_wait)),
                apply: metrics.as_ref().map(|m| Arc::clone(&m.stage_shard_apply)),
            };
            let handle = std::thread::Builder::new()
                .name(format!("pm-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("failed to spawn shard worker");
            senders.push(tx);
            handles.push(handle);
            queue_depths.push(depth);
        }

        Self {
            senders: Mutex::new(senders),
            handles,
            queue_depths,
            membership: Mutex::new(shard_users),
            num_users: AtomicUsize::new(num_users),
            ingested: AtomicU64::new(0),
            registrations: AtomicU64::new(0),
            unregistrations: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            population: Mutex::new(population),
            broadcast_observes,
            started: Instant::now(),
            recent: WindowedRate::new(),
            metrics,
            wal: Mutex::new(None),
        }
    }

    /// Attaches a write-ahead log: every later mutation (ingest batches and
    /// user churn) is appended before it is enqueued to the shards, under
    /// the same ordering lock, so the log replays in exactly the engine's
    /// apply order. Call this *after* any recovery replay — mutations
    /// applied before attachment are not logged.
    pub fn set_wal(&self, wal: Arc<Wal>) {
        *lock_recovering(&self.wal) = Some(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        lock_recovering(&self.wal).clone()
    }

    /// Appends one encoded mutation payload to the attached WAL, if any.
    /// Must be called while holding the `senders` ordering lock. An append
    /// failure detaches the log (serving continues undurable) instead of
    /// panicking the request path.
    fn log_mutation(&self, encode: impl FnOnce() -> Vec<u8>) {
        let mut wal = lock_recovering(&self.wal);
        if let Some(attached) = wal.as_ref() {
            if let Err(e) = attached.append_payload(&encode()) {
                eprintln!("pm-engine: WAL append failed, durability disabled: {e}");
                *wal = None;
            }
        }
    }

    /// The engine's metric bundle, when built with
    /// [`EngineConfig::metrics`] on. The serving layer records its per-verb
    /// request metrics into the same bundle so one `METRICS` scrape covers
    /// both layers.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// Renders the Prometheus text-format exposition, refreshing the
    /// gauges from a fresh [`Self::snapshot`] first. `None` when the
    /// engine was built without metrics.
    pub fn render_metrics(&self) -> Option<String> {
        let metrics = self.metrics.as_ref()?;
        if let Some(wal) = self.wal() {
            metrics.record_wal(wal.stats());
        }
        Some(metrics.render(&self.snapshot()))
    }

    /// Builds an engine with no initial users; populate it with
    /// [`Self::register`]. The population is not a build-time constraint:
    /// an empty engine serves batches (with empty target sets) and grows as
    /// users register.
    pub fn empty(config: &EngineConfig, spec: &BackendSpec) -> Self {
        Self::new(Vec::new(), config, spec)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.queue_depths.len()
    }

    /// Number of currently registered users across all shards.
    pub fn num_users(&self) -> usize {
        self.num_users.load(Ordering::Acquire)
    }

    /// The global user ids currently owned by `shard` (in registration
    /// order, except that unregistration swap-removes).
    pub fn shard_users(&self, shard: usize) -> Vec<UserId> {
        lock_recovering(&self.membership)[shard].clone()
    }

    /// Whether `user` is currently registered.
    pub fn is_registered(&self, user: UserId) -> bool {
        let shard = shard_of(user, self.num_shards());
        lock_recovering(&self.membership)[shard].contains(&user)
    }

    /// Sends `preference` to every shard except `owner` as a
    /// [`ShardCmd::Observe`], widening the engine-global history-compaction
    /// universe. No-op for backends whose monitors ignore observes. Must be
    /// called while holding the `senders` ordering lock so the observe is
    /// FIFO-ordered before any later command on each shard.
    fn broadcast_observe(
        &self,
        senders: &[SyncSender<ShardCmd>],
        owner: usize,
        preference: &Preference,
    ) {
        if !self.broadcast_observes {
            return;
        }
        for (shard, sender) in senders.iter().enumerate() {
            if shard != owner {
                let _ = sender.send(ShardCmd::Observe {
                    preference: preference.clone(),
                });
            }
        }
    }

    /// Registers `user` with `preference`, routing it to its owning shard.
    ///
    /// The shard compiles the preference, inserts the user into the
    /// best-fitting cluster (FilterThenVerify backends) or its own slot,
    /// and backfills the user's frontier from the alive objects; the call
    /// returns once the registration is fully applied. Batches enqueued
    /// before this call never notify the user; batches enqueued after it
    /// always consider the user.
    ///
    /// Errors if `user` is already registered, or if the owning shard's
    /// worker has terminated (the membership map is then left unchanged) —
    /// membership commands never panic the calling thread.
    pub fn register(&self, user: UserId, preference: Preference) -> Result<(), String> {
        let shard = shard_of(user, self.num_shards());
        let (reply_tx, reply_rx) = mpsc::channel();
        let slot;
        {
            let senders = lock_recovering(&self.senders);
            let mut membership = lock_recovering(&self.membership);
            if membership[shard].contains(&user) {
                return Err(format!("user {} is already registered", user.raw()));
            }
            self.log_mutation(|| encode_register(user, &preference));
            // Non-owning shards only widen their compaction universe
            // (fire-and-forget; FIFO per shard keeps it ordered before any
            // later registration that might land there). Skipped entirely
            // when the monitors ignore observes.
            self.broadcast_observe(&senders, shard, &preference);
            slot = lock_recovering(&self.population).acquire(&preference);
            if senders[shard]
                .send(ShardCmd::AddUser {
                    user,
                    preference,
                    reply: reply_tx,
                })
                .is_err()
            {
                lock_recovering(&self.population).abort(slot);
                return Err(format!("shard {shard} worker terminated"));
            }
            membership[shard].push(user);
            self.num_users.fetch_add(1, Ordering::AcqRel);
        }
        if reply_rx.recv().is_err() {
            // The worker died mid-registration: roll the engine-side view
            // back so `is_registered` does not report a user no shard holds
            // (a concurrent unregister may have raced us; tolerate that).
            let mut membership = lock_recovering(&self.membership);
            if let Some(pos) = membership[shard].iter().position(|&u| u == user) {
                membership[shard].swap_remove(pos);
                self.num_users.fetch_sub(1, Ordering::AcqRel);
            }
            lock_recovering(&self.population).abort(slot);
            return Err(format!("shard {shard} worker dropped its reply"));
        }
        lock_recovering(&self.population).commit(user, slot);
        self.registrations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Unregisters `user`, dropping its frontier and repairing its cluster
    /// on the owning shard. Returns once the removal is fully applied.
    ///
    /// Errors if `user` is not registered or the owning shard's worker has
    /// terminated.
    pub fn unregister(&self, user: UserId) -> Result<(), String> {
        let shard = shard_of(user, self.num_shards());
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let senders = lock_recovering(&self.senders);
            let mut membership = lock_recovering(&self.membership);
            let Some(pos) = membership[shard].iter().position(|&u| u == user) else {
                return Err(format!("user {} is not registered", user.raw()));
            };
            self.log_mutation(|| encode_unregister(user));
            senders[shard]
                .send(ShardCmd::RemoveUser {
                    user,
                    reply: reply_tx,
                })
                .map_err(|_| format!("shard {shard} worker terminated"))?;
            membership[shard].swap_remove(pos);
            self.num_users.fetch_sub(1, Ordering::AcqRel);
        }
        let Ok(removed) = reply_rx.recv() else {
            // The worker died mid-removal: restore the engine-side view so
            // the maps do not claim the user is gone while a (dead) shard
            // still held it (tolerate a racing re-register of the same id).
            let mut membership = lock_recovering(&self.membership);
            if !membership[shard].contains(&user) {
                membership[shard].push(user);
                self.num_users.fetch_add(1, Ordering::AcqRel);
            }
            return Err(format!("shard {shard} worker dropped its reply"));
        };
        debug_assert!(removed, "shard membership diverged from engine view");
        lock_recovering(&self.population).remove(user);
        self.unregistrations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replaces the preference of registered `user` **in place**, routing
    /// the change to the owning shard under the same ordering lock as
    /// batches: arrivals enqueued before this call are judged under the old
    /// preference, arrivals after it under the new one.
    ///
    /// Unlike `unregister` + `register`, the user keeps its global *and*
    /// shard-local ids (no swap-remove renumbering of any user), pays one
    /// cluster repair instead of two — the shard's clustering diffs the old
    /// and new relations and re-AND-folds in place when the user's cluster
    /// still fits — and one frontier replay.
    ///
    /// Errors if `user` is not registered or the owning shard's worker has
    /// terminated.
    pub fn update(&self, user: UserId, preference: Preference) -> Result<(), String> {
        let shard = shard_of(user, self.num_shards());
        let (reply_tx, reply_rx) = mpsc::channel();
        let slot;
        {
            let senders = lock_recovering(&self.senders);
            let membership = lock_recovering(&self.membership);
            if !membership[shard].contains(&user) {
                return Err(format!("user {} is not registered", user.raw()));
            }
            self.log_mutation(|| encode_update(user, &preference));
            // Every other shard's compaction universe learns the new
            // preference too (see `register`).
            self.broadcast_observe(&senders, shard, &preference);
            slot = lock_recovering(&self.population).acquire(&preference);
            if senders[shard]
                .send(ShardCmd::UpdateUser {
                    user,
                    preference,
                    reply: reply_tx,
                })
                .is_err()
            {
                lock_recovering(&self.population).abort(slot);
                return Err(format!("shard {shard} worker terminated"));
            }
        }
        let updated = match reply_rx.recv() {
            Ok(updated) => updated,
            Err(_) => {
                lock_recovering(&self.population).abort(slot);
                return Err(format!("shard {shard} worker dropped its reply"));
            }
        };
        if !updated {
            // Only reachable if a past membership command failed half-way
            // (worker died between engine-side bookkeeping and the shard
            // applying it): surface the divergence instead of counting a
            // no-op as a successful update.
            lock_recovering(&self.population).abort(slot);
            return Err(format!(
                "user {} is not present on shard {shard}",
                user.raw()
            ));
        }
        lock_recovering(&self.population).commit(user, slot);
        self.updates.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueues one batch on every shard and returns a [`BatchTicket`] to
    /// await the fanned-in results.
    ///
    /// The enqueue is the ordering point: batches submitted later (by this
    /// or any other thread) are processed after this one on every shard.
    /// If a shard's inbox is full, this call blocks until it drains
    /// (backpressure). Splitting submission from [`BatchTicket::wait`]
    /// lets a caller release its own locks — or prepare the next batch —
    /// while the shards chew on this one.
    pub fn submit_batch(&self, objects: Vec<Object>) -> BatchTicket<'_> {
        let batch = Arc::new(objects);
        let (reply_tx, reply_rx) = mpsc::channel();
        let submitted = Instant::now();
        let mut lock_hold = Duration::ZERO;
        if !batch.is_empty() {
            let enqueued = Instant::now();
            {
                let senders = lock_recovering(&self.senders);
                self.log_mutation(|| encode_ingest_batch(&batch));
                for (shard, sender) in senders.iter().enumerate() {
                    self.queue_depths[shard].fetch_add(1, Ordering::AcqRel);
                    sender
                        .send(ShardCmd::Batch {
                            objects: Arc::clone(&batch),
                            enqueued,
                            reply: reply_tx.clone(),
                        })
                        .expect("shard worker terminated");
                }
            }
            // The hold time includes any backpressure blocking inside
            // `send` — that is precisely the time other submitters were
            // barred from the ordering lock.
            lock_hold = enqueued.elapsed();
            if let Some(metrics) = &self.metrics {
                metrics.stage_lock_hold.record_duration(lock_hold);
            }
        }
        BatchTicket {
            engine: self,
            batch,
            reply_rx,
            submitted,
            lock_hold,
        }
    }

    /// Processes one batch of objects and returns one [`Arrival`] per
    /// object — [`Self::submit_batch`] + [`BatchTicket::wait`] in one
    /// call. For the exact backends the arrivals are byte-identical to
    /// what the backing single-threaded monitor would produce for the
    /// same stream (see the type-level docs for the approximate backends).
    pub fn process_batch(&self, objects: Vec<Object>) -> Vec<Arrival> {
        self.submit_batch(objects).wait()
    }

    /// Processes a single object (a batch of one).
    pub fn process(&self, object: Object) -> Arrival {
        self.process_batch(vec![object])
            .pop()
            .expect("batch of one yields one arrival")
    }

    /// The current Pareto frontier of `user`, ascending — routed to the
    /// owning shard and consistent with every batch ingested before this
    /// call.
    pub fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let shard = shard_of(user, self.num_shards());
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let senders = lock_recovering(&self.senders);
            senders[shard]
                .send(ShardCmd::Frontier {
                    user,
                    reply: reply_tx,
                })
                .expect("shard worker terminated");
        }
        reply_rx.recv().expect("shard worker dropped its reply")
    }

    /// The frontiers of all registered users as `(user, frontier)` pairs,
    /// ascending by user id. With a dynamic population the id space may be
    /// sparse, so frontiers are keyed rather than positional.
    pub fn all_frontiers(&self) -> Vec<(UserId, Vec<ObjectId>)> {
        let mut users: Vec<UserId> = {
            let membership = lock_recovering(&self.membership);
            membership.iter().flatten().copied().collect()
        };
        users.sort_unstable();
        users
            .into_iter()
            .map(|user| (user, self.frontier(user)))
            .collect()
    }

    /// Raw per-shard work counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<MonitorStats> {
        // One reply channel per shard keeps the result indexed by shard no
        // matter which worker answers first.
        let mut receivers = Vec::with_capacity(self.num_shards());
        {
            let senders = lock_recovering(&self.senders);
            for sender in senders.iter() {
                let (reply_tx, reply_rx) = mpsc::channel();
                sender
                    .send(ShardCmd::Stats { reply: reply_tx })
                    .expect("shard worker terminated");
                receivers.push(reply_rx);
            }
        }
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker dropped its reply"))
            .collect()
    }

    /// Engine-level work counters.
    ///
    /// `arrivals` counts objects ingested by the engine (each object once,
    /// not once per shard) and `expirations` window expiries (identical on
    /// every shard, so the maximum is reported); `comparisons` and
    /// `notifications` are summed across shards. The backfill-history
    /// gauges report the per-shard maximum — the engine's worst-case
    /// per-shard memory. For engines built from a [`BackendSpec`] the
    /// per-shard values are in fact identical (objects *and* observed
    /// preferences are broadcast to every shard, so universes, sweep
    /// points and retained sets coincide); the maximum stays a safe
    /// roll-up for custom factories building heterogeneous monitors. See
    /// [`EngineSnapshot`] for the per-shard breakdown.
    pub fn stats(&self) -> MonitorStats {
        let per_shard = self.shard_stats();
        let mut stats = MonitorStats::new();
        stats.arrivals = self.ingested.load(Ordering::Relaxed);
        stats.expirations = per_shard.iter().map(|s| s.expirations).max().unwrap_or(0);
        stats.comparisons = per_shard.iter().map(|s| s.comparisons).sum();
        stats.notifications = per_shard.iter().map(|s| s.notifications).sum();
        stats.history_objects = per_shard
            .iter()
            .map(|s| s.history_objects)
            .max()
            .unwrap_or(0);
        stats.history_evicted = per_shard
            .iter()
            .map(|s| s.history_evicted)
            .max()
            .unwrap_or(0);
        stats.history_bytes = per_shard.iter().map(|s| s.history_bytes).max().unwrap_or(0);
        let (distinct, bytes) = self.preference_footprint();
        stats.distinct_preferences = distinct;
        stats.preference_bytes = bytes;
        stats
    }

    /// The preference a registered user currently holds, shared from the
    /// engine-level interner; `None` for unknown users. Backs the internal
    /// `EXPORT` verb a cluster coordinator uses to migrate users between
    /// nodes.
    pub fn preference_of(&self, user: UserId) -> Option<std::sync::Arc<Preference>> {
        let population = lock_recovering(&self.population);
        let slot = *population.ids.get(&user)?;
        population.interner.get(slot).cloned()
    }

    /// `(distinct preferences, estimated preference bytes)` across the
    /// registered population — exact, from the engine-level interner (a
    /// per-shard roll-up would overcount preferences shared across shards).
    pub fn preference_footprint(&self) -> (u64, u64) {
        let population = lock_recovering(&self.population);
        (
            population.interner.distinct() as u64,
            population.interner.approx_bytes() as u64,
        )
    }

    /// A point-in-time snapshot of engine metrics: per-shard stats, queue
    /// depths, user counts, throughput.
    pub fn snapshot(&self) -> EngineSnapshot {
        let per_shard = self.shard_stats();
        let users_per_shard: Vec<usize> = {
            let membership = lock_recovering(&self.membership);
            membership.iter().map(Vec::len).collect()
        };
        let shards = per_shard
            .into_iter()
            .enumerate()
            .map(|(shard, stats)| ShardSnapshot {
                shard,
                users: users_per_shard[shard],
                queue_depth: self.queue_depths[shard].load(Ordering::Acquire),
                stats,
            })
            .collect();
        let uptime = self.started.elapsed();
        let ingested = self.ingested.load(Ordering::Relaxed);
        let to_us = |ns: u64| ns as f64 / 1_000.0;
        let (p50, p95, p99) = match &self.metrics {
            Some(metrics) => {
                let hist = metrics.ingest_batch.snapshot();
                (
                    to_us(hist.quantile(0.50)),
                    to_us(hist.quantile(0.95)),
                    to_us(hist.quantile(0.99)),
                )
            }
            None => (0.0, 0.0, 0.0),
        };
        let (distinct_preferences, preference_bytes) = self.preference_footprint();
        EngineSnapshot {
            shards,
            users: users_per_shard.iter().sum(),
            ingested,
            registrations: self.registrations.load(Ordering::Relaxed),
            unregistrations: self.unregistrations.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            distinct_preferences,
            preference_bytes,
            uptime,
            recent_arrivals_per_sec: self.recent.rate(),
            ingest_p50_us: p50,
            ingest_p95_us: p95,
            ingest_p99_us: p99,
        }
    }

    /// Captures the engine's durable state at one consistent cut of the
    /// command stream: the `Export` command is enqueued to every shard
    /// while holding the ordering lock, so the exported histories reflect
    /// exactly the mutations logged before `last_lsn` and none after.
    pub fn export_durable(&self) -> DurableEngineState {
        let mut receivers = Vec::with_capacity(self.num_shards());
        let last_lsn = {
            let senders = lock_recovering(&self.senders);
            let lsn = lock_recovering(&self.wal)
                .as_ref()
                .map(|wal| wal.next_lsn())
                .unwrap_or(0);
            for sender in senders.iter() {
                let (reply_tx, reply_rx) = mpsc::channel();
                sender
                    .send(ShardCmd::Export { reply: reply_tx })
                    .expect("shard worker terminated");
                receivers.push(reply_rx);
            }
            lsn
        };
        let mut members = Vec::with_capacity(receivers.len());
        let mut monitors = Vec::with_capacity(receivers.len());
        for rx in receivers {
            let export = rx.recv().expect("shard worker dropped its reply");
            members.push(export.users.into_iter().zip(export.preferences).collect());
            monitors.push(export.state);
        }
        DurableEngineState {
            last_lsn,
            members,
            monitors,
            ingested: self.ingested.load(Ordering::Relaxed),
            registrations: self.registrations.load(Ordering::Relaxed),
            unregistrations: self.unregistrations.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
        }
    }

    /// Installs per-shard monitor state (histories or windows, verbatim)
    /// into a freshly built **empty** engine, one [`MonitorState`] per
    /// shard. Members must be re-registered afterwards (in shard-local
    /// order) so their frontiers backfill from the installed state; see
    /// [`ShardedEngine::restore_shard_stats`] for the counters.
    pub fn import_shard_states(&self, states: Vec<MonitorState>) {
        assert_eq!(states.len(), self.num_shards(), "one state per shard");
        assert_eq!(self.num_users(), 0, "import requires an empty engine");
        let mut receivers = Vec::with_capacity(states.len());
        {
            let senders = lock_recovering(&self.senders);
            for (sender, state) in senders.iter().zip(states) {
                let (reply_tx, reply_rx) = mpsc::channel();
                sender
                    .send(ShardCmd::Import {
                        state,
                        reply: reply_tx,
                    })
                    .expect("shard worker terminated");
                receivers.push(reply_rx);
            }
        }
        for rx in receivers {
            rx.recv().expect("shard worker dropped its reply");
        }
    }

    /// Overwrites every shard's stream work counters with snapshot-time
    /// values. Call *after* recovery re-registration: backfill replay
    /// records comparisons that the snapshot already accounts for.
    pub fn restore_shard_stats(&self, stats: Vec<MonitorStats>) {
        assert_eq!(stats.len(), self.num_shards(), "one stats set per shard");
        let mut receivers = Vec::with_capacity(stats.len());
        {
            let senders = lock_recovering(&self.senders);
            for (sender, stats) in senders.iter().zip(stats) {
                let (reply_tx, reply_rx) = mpsc::channel();
                sender
                    .send(ShardCmd::RestoreStats {
                        stats,
                        reply: reply_tx,
                    })
                    .expect("shard worker terminated");
                receivers.push(reply_rx);
            }
        }
        for rx in receivers {
            rx.recv().expect("shard worker dropped its reply");
        }
    }

    /// Overwrites the engine's lifetime counters with snapshot-time values
    /// (recovery re-registration incremented `registrations` once per
    /// restored member; this puts the true lifetime counts back). The
    /// engine-level ingest counter also feeds `STATS` arrivals.
    pub fn restore_counters(
        &self,
        ingested: u64,
        registrations: u64,
        unregistrations: u64,
        updates: u64,
    ) {
        self.ingested.store(ingested, Ordering::Relaxed);
        self.registrations.store(registrations, Ordering::Relaxed);
        self.unregistrations
            .store(unregistrations, Ordering::Relaxed);
        self.updates.store(updates, Ordering::Relaxed);
    }
}

/// The engine's share of a snapshot, as captured by
/// [`ShardedEngine::export_durable`]: everything except the serving
/// layer's ingest bookkeeping (which the service adds before encoding an
/// [`pm_wal::EngineState`]).
#[derive(Debug)]
pub struct DurableEngineState {
    /// WAL records `< last_lsn` are reflected in this export; replay
    /// resumes here. Zero when no WAL is attached.
    pub last_lsn: u64,
    /// Per-shard members as `(global id, preference)` in shard-local
    /// registration order (swap-remove churned) — re-registering in this
    /// order reproduces every shard's local ids.
    pub members: Vec<Vec<(UserId, Preference)>>,
    /// Per-shard monitor state (history or window, plus work counters).
    pub monitors: Vec<MonitorState>,
    /// Lifetime objects ingested.
    pub ingested: u64,
    /// Lifetime successful registrations.
    pub registrations: u64,
    /// Lifetime successful unregistrations.
    pub unregistrations: u64,
    /// Lifetime successful in-place updates.
    pub updates: u64,
}

/// A batch that has been enqueued on every shard but whose results have
/// not been collected yet. Obtained from [`ShardedEngine::submit_batch`];
/// consumed by [`BatchTicket::wait`].
#[must_use = "a submitted batch's results must be awaited"]
pub struct BatchTicket<'a> {
    engine: &'a ShardedEngine,
    batch: Arc<Vec<Object>>,
    reply_rx: mpsc::Receiver<ShardBatchReply>,
    submitted: Instant,
    lock_hold: Duration,
}

/// Stage timings of one awaited ingest batch, as returned by
/// [`BatchTicket::wait_timed`]. The serving layer uses them for the
/// slow-op log; the per-stage histograms are recorded engine-side
/// regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestTiming {
    /// Time the ordering lock was held while enqueueing (includes any
    /// backpressure blocking).
    pub lock_hold: Duration,
    /// Time spent collecting and merging the per-shard replies.
    pub fan_in: Duration,
    /// Submit-to-merged-arrivals latency of the whole batch.
    pub total: Duration,
}

impl BatchTicket<'_> {
    /// Blocks until every shard has processed the batch and fans the
    /// disjoint per-shard target-user sets into one [`Arrival`] per object.
    pub fn wait(self) -> Vec<Arrival> {
        self.wait_timed().0
    }

    /// Like [`BatchTicket::wait`], but also reports the batch's stage
    /// timings.
    pub fn wait_timed(self) -> (Vec<Arrival>, IngestTiming) {
        let timing = IngestTiming {
            lock_hold: self.lock_hold,
            fan_in: Duration::ZERO,
            total: Duration::ZERO,
        };
        if self.batch.is_empty() {
            return (Vec::new(), timing);
        }
        let fan_in_start = Instant::now();
        let shards = self.engine.num_shards();
        // Per-object target-user and frontier-delta columns, one per shard.
        type ShardColumns = (Vec<Vec<UserId>>, Vec<Vec<FrontierDelta>>);
        let mut per_shard: Vec<Option<ShardColumns>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let reply = self
                .reply_rx
                .recv()
                .expect("shard worker dropped its reply");
            per_shard[reply.shard] = Some((reply.targets, reply.deltas));
        }

        let arrivals = self
            .batch
            .iter()
            .enumerate()
            .map(|(i, object)| {
                let mut target_users: Vec<UserId> = Vec::new();
                let mut deltas: Vec<FrontierDelta> = Vec::new();
                for (targets, shard_deltas) in per_shard.iter().flatten() {
                    target_users.extend_from_slice(&targets[i]);
                    deltas.extend_from_slice(&shard_deltas[i]);
                }
                // Per-shard sets are sorted and pairwise disjoint; one sort
                // merges them into the monitors' canonical ascending order.
                target_users.sort_unstable();
                deltas.sort_unstable();
                Arrival {
                    object: object.id(),
                    target_users,
                    deltas,
                }
            })
            .collect();
        self.engine
            .ingested
            .fetch_add(self.batch.len() as u64, Ordering::Relaxed);
        self.engine.recent.record(self.batch.len() as u64);
        let timing = IngestTiming {
            lock_hold: self.lock_hold,
            fan_in: fan_in_start.elapsed(),
            total: self.submitted.elapsed(),
        };
        if let Some(metrics) = &self.engine.metrics {
            metrics.stage_fan_in.record_duration(timing.fan_in);
            metrics.ingest_batch.record_duration(timing.total);
        }
        (arrivals, timing)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        if let Ok(senders) = self.senders.lock() {
            for sender in senders.iter() {
                let _ = sender.send(ShardCmd::Shutdown);
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::{BaselineMonitor, ContinuousMonitor};
    use pm_model::ValueId;

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(
            ObjectId::new(id),
            vals.iter().map(|&x| ValueId::new(x)).collect(),
        )
    }

    /// A small deterministic preference population over 3 attributes.
    fn population(n: usize) -> Vec<Preference> {
        (0..n)
            .map(|u| {
                let mut p = Preference::new(3);
                let u = u as u32;
                for attr in 0..3u32 {
                    let better = (u + attr) % 5;
                    let worse = (u + attr + 1) % 5;
                    if better != worse {
                        p.prefer(
                            pm_model::AttrId::new(attr),
                            ValueId::new(better),
                            ValueId::new(worse),
                        );
                    }
                }
                p
            })
            .collect()
    }

    fn stream(n: u64) -> Vec<Object> {
        (0..n)
            .map(|i| {
                obj(
                    i,
                    &[(i % 5) as u32, ((i / 5) % 5) as u32, ((i / 7) % 5) as u32],
                )
            })
            .collect()
    }

    #[test]
    fn shard_of_is_deterministic_and_total() {
        for shards in 1..=8 {
            for user in 0..100u32 {
                let s = shard_of(UserId::new(user), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(UserId::new(user), shards));
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_users() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for user in 0..800u32 {
            counts[shard_of(UserId::new(user), shards)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min < 60, "partition too skewed: {counts:?}");
    }

    #[test]
    fn engine_matches_single_threaded_baseline_at_every_shard_count() {
        let prefs = population(17);
        let objects = stream(120);
        let mut oracle = BaselineMonitor::new(prefs.clone());
        let expected: Vec<Arrival> = objects.iter().cloned().map(|o| oracle.process(o)).collect();
        for shards in 1..=8 {
            let engine = ShardedEngine::new(
                prefs.clone(),
                &EngineConfig::new(shards),
                &BackendSpec::baseline(),
            );
            let got = engine.process_batch(objects.clone());
            assert_eq!(got, expected, "shards={shards}");
            for u in 0..prefs.len() {
                assert_eq!(
                    engine.frontier(UserId::from(u)),
                    oracle.frontier(UserId::from(u)),
                    "shards={shards} user={u}"
                );
            }
        }
    }

    #[test]
    fn batched_and_unbatched_ingestion_agree() {
        let prefs = population(9);
        let objects = stream(60);
        let engine_batched = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(3).with_queue_capacity(2),
            &BackendSpec::baseline(),
        );
        let engine_single =
            ShardedEngine::new(prefs, &EngineConfig::new(3), &BackendSpec::baseline());
        let mut batched = Vec::new();
        for chunk in objects.chunks(7) {
            batched.extend(engine_batched.process_batch(chunk.to_vec()));
        }
        let singles: Vec<Arrival> = objects
            .into_iter()
            .map(|o| engine_single.process(o))
            .collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn overlapping_submitted_batches_keep_global_order() {
        let prefs = population(9);
        let engine = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(3),
            &BackendSpec::baseline(),
        );
        let objects = stream(40);
        // Both batches are in flight before either is awaited; the enqueue
        // order fixes the processing order.
        let first = engine.submit_batch(objects[..20].to_vec());
        let second = engine.submit_batch(objects[20..].to_vec());
        let mut got = first.wait();
        got.extend(second.wait());
        let mut oracle = BaselineMonitor::new(prefs);
        let expected: Vec<Arrival> = objects.into_iter().map(|o| oracle.process(o)).collect();
        assert_eq!(got, expected);
        assert_eq!(engine.stats().arrivals, 40);
    }

    #[test]
    fn engine_stats_roll_up() {
        let prefs = population(10);
        let engine = ShardedEngine::new(prefs, &EngineConfig::new(4), &BackendSpec::baseline());
        let n = 50;
        engine.process_batch(stream(n));
        let stats = engine.stats();
        assert_eq!(stats.arrivals, n);
        assert!(stats.comparisons > 0);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.users, 10);
        assert_eq!(snapshot.ingested, n);
        assert_eq!(snapshot.shards.len(), 4);
        let shard_arrivals: Vec<u64> = snapshot.shards.iter().map(|s| s.stats.arrivals).collect();
        // Every shard sees every object.
        assert!(shard_arrivals.iter().all(|&a| a == n));
        assert_eq!(snapshot.shards.iter().map(|s| s.users).sum::<usize>(), 10);
    }

    #[test]
    fn sliding_window_backend_expires_on_every_shard() {
        let prefs = population(8);
        let engine = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(4),
            &BackendSpec::BaselineSw { window: 10 },
        );
        engine.process_batch(stream(35));
        let stats = engine.stats();
        assert_eq!(stats.arrivals, 35);
        assert_eq!(stats.expirations, 25);
        let mut oracle = pm_core::BaselineSwMonitor::new(prefs.clone(), 10);
        for o in stream(35) {
            oracle.process(o);
        }
        for u in 0..prefs.len() {
            assert_eq!(
                engine.frontier(UserId::from(u)),
                oracle.frontier(UserId::from(u))
            );
        }
    }

    #[test]
    fn empty_population_and_empty_batches_are_fine() {
        let engine =
            ShardedEngine::new(Vec::new(), &EngineConfig::new(2), &BackendSpec::baseline());
        assert!(engine.process_batch(Vec::new()).is_empty());
        let arrival = engine.process(obj(0, &[1, 2, 3]));
        assert!(arrival.target_users.is_empty());
        assert_eq!(engine.num_users(), 0);
        assert_eq!(engine.num_shards(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedEngine::new(Vec::new(), &EngineConfig::new(0), &BackendSpec::baseline());
    }

    #[test]
    fn register_mid_stream_matches_fresh_engine() {
        let prefs = population(12);
        let late = population(14).pop().unwrap();
        let objects = stream(80);
        for shards in [1usize, 3] {
            let dynamic = ShardedEngine::new(
                prefs.clone(),
                &EngineConfig::new(shards),
                &BackendSpec::baseline(),
            );
            dynamic.process_batch(objects[..40].to_vec());
            // Register a sparse global id mid-stream.
            let user = UserId::new(500);
            dynamic.register(user, late.clone()).unwrap();
            assert!(dynamic.is_registered(user));
            assert_eq!(dynamic.num_users(), 13);
            let got = dynamic.process_batch(objects[40..].to_vec());
            // The fresh engine has the user from the start: frontiers and
            // the post-registration arrivals must coincide.
            let fresh = ShardedEngine::empty(&EngineConfig::new(shards), &BackendSpec::baseline());
            for (idx, pref) in prefs.iter().enumerate() {
                fresh.register(UserId::from(idx), pref.clone()).unwrap();
            }
            fresh.register(user, late.clone()).unwrap();
            fresh.process_batch(objects[..40].to_vec());
            let expected = fresh.process_batch(objects[40..].to_vec());
            assert_eq!(got, expected, "shards={shards}");
            assert_eq!(dynamic.frontier(user), fresh.frontier(user));
            for (idx, _) in prefs.iter().enumerate() {
                assert_eq!(
                    dynamic.frontier(UserId::from(idx)),
                    fresh.frontier(UserId::from(idx)),
                    "shards={shards} user={idx}"
                );
            }
        }
    }

    #[test]
    fn unregister_removes_the_user_observably() {
        let prefs = population(10);
        let engine = ShardedEngine::new(
            prefs.clone(),
            &EngineConfig::new(4),
            &BackendSpec::baseline(),
        );
        engine.process_batch(stream(30));
        let victim = UserId::new(3);
        assert!(engine.is_registered(victim));
        engine.unregister(victim).unwrap();
        assert!(!engine.is_registered(victim));
        assert_eq!(engine.num_users(), 9);
        assert!(engine.frontier(victim).is_empty());
        // The per-shard user counts in the snapshot reflect the removal.
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.users, 9);
        assert_eq!(snapshot.shards.iter().map(|s| s.users).sum::<usize>(), 9);
        assert!(snapshot.to_string().contains("shard_users="));
        // Arrivals no longer mention the unregistered user.
        for arrival in engine.process_batch(stream(30)) {
            assert!(!arrival.target_users.contains(&victim));
        }
        // Errors: double unregister and duplicate register.
        assert!(engine.unregister(victim).is_err());
        assert!(engine.register(UserId::new(0), prefs[0].clone()).is_err());
        // Re-registering a previously removed id is allowed.
        engine.register(victim, prefs[3].clone()).unwrap();
        assert!(engine.is_registered(victim));
        assert_eq!(engine.num_users(), 10);
    }

    #[test]
    fn update_in_place_matches_fresh_engine_and_keeps_ids() {
        let prefs = population(12);
        let new_pref = population(14).pop().unwrap();
        let objects = stream(80);
        for shards in [1usize, 3] {
            let engine = ShardedEngine::new(
                prefs.clone(),
                &EngineConfig::new(shards),
                &BackendSpec::baseline(),
            );
            engine.process_batch(objects[..40].to_vec());
            // Capture the exact per-shard membership before the update.
            let before: Vec<Vec<UserId>> = (0..shards).map(|s| engine.shard_users(s)).collect();
            let victim = UserId::new(5);
            engine.update(victim, new_pref.clone()).unwrap();
            // In-place: nobody was renumbered, no count moved.
            let after: Vec<Vec<UserId>> = (0..shards).map(|s| engine.shard_users(s)).collect();
            assert_eq!(before, after, "shards={shards}: membership changed");
            assert_eq!(engine.num_users(), 12);
            let got = engine.process_batch(objects[40..].to_vec());
            // A fresh engine with the final preferences agrees on arrivals
            // and frontiers.
            let mut final_prefs = prefs.clone();
            final_prefs[5] = new_pref.clone();
            let fresh = ShardedEngine::new(
                final_prefs,
                &EngineConfig::new(shards),
                &BackendSpec::baseline(),
            );
            fresh.process_batch(objects[..40].to_vec());
            let expected = fresh.process_batch(objects[40..].to_vec());
            assert_eq!(got, expected, "shards={shards}");
            for u in 0..12usize {
                assert_eq!(
                    engine.frontier(UserId::from(u)),
                    fresh.frontier(UserId::from(u)),
                    "shards={shards} user={u}"
                );
            }
            // The update is counted in the snapshot.
            let snapshot = engine.snapshot();
            assert_eq!(snapshot.updates, 1);
            assert!(snapshot.to_string().contains("updates=1"));
        }
    }

    #[test]
    fn update_of_unknown_user_is_an_error() {
        let engine = ShardedEngine::new(
            population(4),
            &EngineConfig::new(2),
            &BackendSpec::baseline(),
        );
        let err = engine.update(UserId::new(99), Preference::new(3));
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("not registered"));
        assert_eq!(engine.snapshot().updates, 0);
    }

    #[test]
    fn distinct_preferences_track_churn_exactly() {
        // 12 users drawn from only 3 distinct preferences, spread across
        // shards: the engine-level count must be 3, not a per-shard sum.
        let base = population(3);
        let prefs: Vec<Preference> = (0..12).map(|i| base[i % 3].clone()).collect();
        let engine = ShardedEngine::new(prefs, &EngineConfig::new(4), &BackendSpec::baseline());
        assert_eq!(engine.preference_footprint().0, 3);
        let snap = engine.snapshot();
        assert_eq!(snap.distinct_preferences, 3);
        assert!(snap.preference_bytes > 0);
        assert!(snap.bytes_per_user() > 0.0);
        assert!(
            snap.to_string().contains("distinct_preferences=3"),
            "{snap}"
        );
        // An update within the shared set keeps the count; a novel
        // preference raises it; dropping its last holder lowers it again.
        engine.update(UserId::new(0), base[1].clone()).unwrap();
        assert_eq!(engine.preference_footprint().0, 3);
        let novel = population(5).pop().unwrap();
        engine.update(UserId::new(1), novel).unwrap();
        assert_eq!(engine.preference_footprint().0, 4);
        engine.unregister(UserId::new(1)).unwrap();
        assert_eq!(engine.preference_footprint().0, 3);
        // A twin registering mid-stream shares its slot.
        engine.register(UserId::new(100), base[0].clone()).unwrap();
        assert_eq!(engine.preference_footprint().0, 3);
        assert_eq!(engine.stats().distinct_preferences, 3);
    }

    #[test]
    fn all_frontiers_reports_sparse_ids_in_order() {
        let engine = ShardedEngine::empty(&EngineConfig::new(2), &BackendSpec::baseline());
        let prefs = population(3);
        for (user, pref) in [(9u32, 0usize), (2, 1), (700, 2)] {
            engine
                .register(UserId::new(user), prefs[pref].clone())
                .unwrap();
        }
        engine.process_batch(stream(20));
        let frontiers = engine.all_frontiers();
        let ids: Vec<u32> = frontiers.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![2, 9, 700]);
    }
}
