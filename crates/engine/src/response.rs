//! Typed responses and the two wire renderings.
//!
//! Every verb handler returns a [`Response`]; nothing above the renderers
//! builds wire strings. The same value renders as either of two negotiated
//! wire formats (see `HELLO` in [`crate::protocol`]):
//!
//! - **text** ([`render_text`]): the classic newline-delimited `OK`/`ERR`
//!   lines, byte-identical to the pre-typed protocol.
//! - **frame** ([`render_frame`]): a length-prefixed binary frame
//!   `[u32 BE length][u8 kind][payload]` where `length` counts the kind
//!   byte plus the payload. Integers are big-endian and fixed-width: user
//!   ids are `u32`, object ids `u64`, counts `u32`, strings are UTF-8
//!   (`u16 BE` length-prefixed when embedded mid-payload, trailing
//!   otherwise). The kind byte is the variant's wire tag listed below.
//!
//! | kind | variant |
//! |------|---------|
//! | 0 | `Err` |
//! | 1 | `Ingested` |
//! | 2 | `Expired` |
//! | 3 | `Query` |
//! | 4 | `Frontier` |
//! | 5 | `Registered` |
//! | 6 | `Updated` |
//! | 7 | `Unregistered` |
//! | 8 | `Stats` |
//! | 9 | `Metrics` |
//! | 10 | `Health` |
//! | 11 | `Hello` |
//! | 12 | `Subscribed` |
//! | 13 | `Unsubscribed` |
//! | 14 | `Bye` |
//! | 15 | `Event` |

use pm_core::{Arrival, FrontierDelta};
use pm_model::{ObjectId, UserId};

use crate::protocol::{format_objects, format_users};

/// The negotiated wire format of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Newline-delimited text lines (the default).
    #[default]
    Text,
    /// Length-prefixed binary frames.
    Frame,
}

impl WireMode {
    /// The capability token naming this mode (`text` / `frame`).
    pub fn token(self) -> &'static str {
        match self {
            WireMode::Text => "text",
            WireMode::Frame => "frame",
        }
    }
}

/// A typed server response — one per request, plus the asynchronous
/// [`Response::Event`] pushes a subscription produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `INGEST` succeeded: the processed arrivals, in id order. Carries the
    /// full [`Arrival`]s (deltas included) so the serving layer can fan
    /// frontier events out to subscribers from the same value it renders.
    Ingested(Vec<Arrival>),
    /// `EXPIRE`: cumulative window expirations.
    Expired {
        /// Lifetime expiration count.
        expirations: u64,
        /// Whether the backend is sliding-window (append-only backends
        /// answer with a clarifying suffix).
        sliding: bool,
    },
    /// `QUERY`: the recorded target users of a recent arrival.
    Query {
        /// The queried object.
        object: ObjectId,
        /// Its recorded target users, ascending.
        users: Vec<UserId>,
    },
    /// `FRONTIER`: a user's current Pareto frontier.
    Frontier {
        /// The queried user.
        user: UserId,
        /// Frontier object ids, ascending.
        objects: Vec<ObjectId>,
    },
    /// `REGISTER` succeeded.
    Registered {
        /// The registered user.
        user: UserId,
        /// The shard that owns it.
        shard: usize,
    },
    /// `UPDATE` succeeded.
    Updated {
        /// The updated user.
        user: UserId,
        /// The shard that owns it.
        shard: usize,
    },
    /// `UNREGISTER` succeeded.
    Unregistered(UserId),
    /// `STATS`: the rendered engine snapshot.
    Stats(String),
    /// `METRICS`: the Prometheus text-format exposition body.
    Metrics(String),
    /// `HEALTH`: liveness and engine identity.
    Health {
        /// Backend spec string.
        backend: String,
        /// Shard count.
        shards: usize,
        /// Registered user count.
        users: usize,
        /// Engine uptime in milliseconds.
        uptime_ms: u128,
    },
    /// `HELLO` succeeded: the negotiated capabilities. The connection
    /// renders this response in its *old* mode, then switches to `proto`.
    Hello {
        /// The negotiated wire mode.
        proto: WireMode,
        /// Server version (crate version).
        version: String,
        /// Backend spec string.
        backend: String,
        /// Shard count.
        shards: usize,
        /// Attributes per object.
        arity: usize,
    },
    /// `SUBSCRIBE` succeeded: the frontier snapshot subsequent
    /// [`Response::Event`] deltas apply to (snapshot and subscription are
    /// atomic — no delta between them can be missed).
    Subscribed {
        /// The subscribed user.
        user: UserId,
        /// The user's frontier at subscription time, ascending.
        snapshot: Vec<ObjectId>,
    },
    /// `UNSUBSCRIBE` succeeded.
    Unsubscribed(UserId),
    /// Asynchronous push: one user's frontier deltas from one arrival (or
    /// membership change), in ascending object order.
    Event {
        /// The subscribed user whose frontier changed.
        user: UserId,
        /// The net membership changes, ascending by object id.
        deltas: Vec<FrontierDelta>,
    },
    /// `QUIT`: goodbye, the connection closes after this response.
    Bye,
    /// Any failed request; the message is relayed verbatim after `ERR `.
    Err(String),
}

impl Response {
    /// Whether this response reports a failure.
    pub fn is_err(&self) -> bool {
        matches!(self, Response::Err(_))
    }
}

/// Renders a response as its single text-protocol line (without the
/// trailing newline), byte-identical to the historical `format!` strings.
/// `METRICS` embeds interior newlines (header line + exposition body).
pub fn render_text(response: &Response) -> String {
    match response {
        Response::Ingested(arrivals) => {
            let body = arrivals
                .iter()
                .map(|a| format!("{}:{}", a.object.raw(), format_users(&a.target_users)))
                .collect::<Vec<_>>()
                .join(";");
            format!("OK INGESTED {} {body}", arrivals.len())
        }
        Response::Expired {
            expirations,
            sliding,
        } => {
            if *sliding {
                format!("OK EXPIRED {expirations}")
            } else {
                format!("OK EXPIRED {expirations} (append-only backend, nothing expires)")
            }
        }
        Response::Query { object, users } => {
            format!("OK QUERY {} {}", object.raw(), format_users(users))
        }
        Response::Frontier { user, objects } => {
            format!("OK FRONTIER {} {}", user.raw(), format_objects(objects))
        }
        Response::Registered { user, shard } => {
            format!("OK REGISTERED {} shard={shard}", user.raw())
        }
        Response::Updated { user, shard } => format!("OK UPDATED {} shard={shard}", user.raw()),
        Response::Unregistered(user) => format!("OK UNREGISTERED {}", user.raw()),
        Response::Stats(snapshot) => format!("OK STATS {snapshot}"),
        // The header names the body's byte length so clients can read the
        // multi-line exposition exactly; the connection's trailing newline
        // yields the blank-line terminator.
        Response::Metrics(body) => format!("OK METRICS {}\n{body}", body.len()),
        Response::Health {
            backend,
            shards,
            users,
            uptime_ms,
        } => format!(
            "OK HEALTH pm-server backend={backend} shards={shards} users={users} \
             uptime_ms={uptime_ms}"
        ),
        Response::Hello {
            proto,
            version,
            backend,
            shards,
            arity,
        } => format!(
            "OK HELLO pm-server proto={} version={version} backend={backend} \
             shards={shards} arity={arity}",
            proto.token()
        ),
        Response::Subscribed { user, snapshot } => {
            format!("OK SUBSCRIBED {} {}", user.raw(), format_objects(snapshot))
        }
        Response::Unsubscribed(user) => format!("OK UNSUBSCRIBED {}", user.raw()),
        Response::Event { user, deltas } => {
            let body = deltas
                .iter()
                .map(|d| format!("{}{}", if d.entered { '+' } else { '-' }, d.object.raw()))
                .collect::<Vec<_>>()
                .join(",");
            format!("EVENT {} {body}", user.raw())
        }
        Response::Bye => "OK BYE".to_owned(),
        Response::Err(e) => format!("ERR {e}"),
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_users(buf: &mut Vec<u8>, users: &[UserId]) {
    buf.extend_from_slice(&(users.len() as u32).to_be_bytes());
    for user in users {
        buf.extend_from_slice(&user.raw().to_be_bytes());
    }
}

fn put_objects(buf: &mut Vec<u8>, objects: &[ObjectId]) {
    buf.extend_from_slice(&(objects.len() as u32).to_be_bytes());
    for object in objects {
        buf.extend_from_slice(&object.raw().to_be_bytes());
    }
}

/// Renders a response as one binary frame (see the module docs for the
/// layout): `[u32 BE length][u8 kind][payload]`.
pub fn render_frame(response: &Response) -> Vec<u8> {
    let mut body: Vec<u8> = vec![0];
    body[0] = match response {
        Response::Err(e) => {
            body.extend_from_slice(e.as_bytes());
            0
        }
        Response::Ingested(arrivals) => {
            body.extend_from_slice(&(arrivals.len() as u32).to_be_bytes());
            for arrival in arrivals {
                body.extend_from_slice(&arrival.object.raw().to_be_bytes());
                put_users(&mut body, &arrival.target_users);
            }
            1
        }
        Response::Expired {
            expirations,
            sliding,
        } => {
            body.extend_from_slice(&expirations.to_be_bytes());
            body.push(u8::from(*sliding));
            2
        }
        Response::Query { object, users } => {
            body.extend_from_slice(&object.raw().to_be_bytes());
            put_users(&mut body, users);
            3
        }
        Response::Frontier { user, objects } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            put_objects(&mut body, objects);
            4
        }
        Response::Registered { user, shard } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(&(*shard as u32).to_be_bytes());
            5
        }
        Response::Updated { user, shard } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(&(*shard as u32).to_be_bytes());
            6
        }
        Response::Unregistered(user) => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            7
        }
        Response::Stats(snapshot) => {
            body.extend_from_slice(snapshot.as_bytes());
            8
        }
        Response::Metrics(exposition) => {
            body.extend_from_slice(exposition.as_bytes());
            9
        }
        Response::Health {
            backend,
            shards,
            users,
            uptime_ms,
        } => {
            put_str(&mut body, backend);
            body.extend_from_slice(&(*shards as u32).to_be_bytes());
            body.extend_from_slice(&(*users as u32).to_be_bytes());
            body.extend_from_slice(&(*uptime_ms as u64).to_be_bytes());
            10
        }
        Response::Hello {
            proto,
            version,
            backend,
            shards,
            arity,
        } => {
            body.push(match proto {
                WireMode::Text => 0,
                WireMode::Frame => 1,
            });
            put_str(&mut body, version);
            put_str(&mut body, backend);
            body.extend_from_slice(&(*shards as u32).to_be_bytes());
            body.extend_from_slice(&(*arity as u32).to_be_bytes());
            11
        }
        Response::Subscribed { user, snapshot } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            put_objects(&mut body, snapshot);
            12
        }
        Response::Unsubscribed(user) => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            13
        }
        Response::Bye => 14,
        Response::Event { user, deltas } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(&(deltas.len() as u32).to_be_bytes());
            for delta in deltas {
                body.push(u8::from(delta.entered));
                body.extend_from_slice(&delta.object.raw().to_be_bytes());
            }
            15
        }
    };
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_matches_the_historical_strings() {
        assert_eq!(
            render_text(&Response::Ingested(vec![Arrival {
                object: ObjectId::new(0),
                target_users: vec![UserId::new(1), UserId::new(2)],
                deltas: vec![],
            }])),
            "OK INGESTED 1 0:1,2"
        );
        assert_eq!(
            render_text(&Response::Expired {
                expirations: 6,
                sliding: true
            }),
            "OK EXPIRED 6"
        );
        assert_eq!(
            render_text(&Response::Expired {
                expirations: 0,
                sliding: false
            }),
            "OK EXPIRED 0 (append-only backend, nothing expires)"
        );
        assert_eq!(
            render_text(&Response::Registered {
                user: UserId::new(9),
                shard: 1
            }),
            "OK REGISTERED 9 shard=1"
        );
        assert_eq!(render_text(&Response::Bye), "OK BYE");
        assert_eq!(render_text(&Response::Err("nope".to_owned())), "ERR nope");
    }

    #[test]
    fn event_lines_render_signed_object_lists() {
        let user = UserId::new(3);
        assert_eq!(
            render_text(&Response::Event {
                user,
                deltas: vec![
                    FrontierDelta::enter(user, ObjectId::new(7)),
                    FrontierDelta::leave(user, ObjectId::new(9)),
                ],
            }),
            "EVENT 3 +7,-9"
        );
    }

    #[test]
    fn frames_are_length_prefixed_and_tagged() {
        let frame = render_frame(&Response::Bye);
        assert_eq!(frame, vec![0, 0, 0, 1, 14]);

        let frame = render_frame(&Response::Event {
            user: UserId::new(3),
            deltas: vec![FrontierDelta::enter(UserId::new(3), ObjectId::new(7))],
        });
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        assert_eq!(frame[4], 15);
        assert_eq!(&frame[5..9], &3u32.to_be_bytes());
        assert_eq!(&frame[9..13], &1u32.to_be_bytes());
        assert_eq!(frame[13], 1);
        assert_eq!(&frame[14..22], &7u64.to_be_bytes());
    }

    #[test]
    fn err_frames_carry_the_message() {
        let frame = render_frame(&Response::Err("lagged".to_owned()));
        assert_eq!(frame[4], 0);
        assert_eq!(&frame[5..], b"lagged");
    }
}
