//! Typed responses and the two wire renderings.
//!
//! Every verb handler returns a [`Response`]; nothing above the renderers
//! builds wire strings. The same value renders as either of two negotiated
//! wire formats (see `HELLO` in [`crate::protocol`]):
//!
//! - **text** ([`render_text`]): the classic newline-delimited `OK`/`ERR`
//!   lines, byte-identical to the pre-typed protocol.
//! - **frame** ([`render_frame`]): a length-prefixed binary frame
//!   `[u32 BE length][u8 kind][payload]` where `length` counts the kind
//!   byte plus the payload. Integers are big-endian and fixed-width: user
//!   ids are `u32`, object ids `u64`, counts `u32`, strings are UTF-8
//!   (`u16 BE` length-prefixed when embedded mid-payload, trailing
//!   otherwise). The kind byte is the variant's wire tag listed below.
//!
//! | kind | variant |
//! |------|---------|
//! | 0 | `Err` |
//! | 1 | `Ingested` |
//! | 2 | `Expired` |
//! | 3 | `Query` |
//! | 4 | `Frontier` |
//! | 5 | `Registered` |
//! | 6 | `Updated` |
//! | 7 | `Unregistered` |
//! | 8 | `Stats` |
//! | 9 | `Metrics` |
//! | 10 | `Health` |
//! | 11 | `Hello` |
//! | 12 | `Subscribed` |
//! | 13 | `Unsubscribed` |
//! | 14 | `Bye` |
//! | 15 | `Event` |
//! | 16 | `Snapshot` |
//! | 17 | `Exported` |
//! | 18 | `NodeHello` |
//!
//! Wire limits are enforced by saturation, never by wrapping: embedded
//! strings are truncated to the longest UTF-8 prefix that fits their
//! `u16 BE` length prefix, and id-list counts saturate at `u32::MAX` with
//! the encoded elements capped to the encoded count — a frame always
//! parses to exactly what its prefixes announce.

use pm_core::{Arrival, FrontierDelta};
use pm_model::{ObjectId, UserId};

use crate::protocol::{format_objects, format_users};

/// The negotiated wire format of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Newline-delimited text lines (the default).
    #[default]
    Text,
    /// Length-prefixed binary frames.
    Frame,
}

impl WireMode {
    /// The capability token naming this mode (`text` / `frame`).
    pub fn token(self) -> &'static str {
        match self {
            WireMode::Text => "text",
            WireMode::Frame => "frame",
        }
    }
}

/// A typed server response — one per request, plus the asynchronous
/// [`Response::Event`] pushes a subscription produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `INGEST` succeeded: the processed arrivals, in id order. Carries the
    /// full [`Arrival`]s (deltas included) so the serving layer can fan
    /// frontier events out to subscribers from the same value it renders.
    Ingested(Vec<Arrival>),
    /// `EXPIRE`: cumulative window expirations.
    Expired {
        /// Lifetime expiration count.
        expirations: u64,
        /// Whether the backend is sliding-window (append-only backends
        /// answer with a clarifying suffix).
        sliding: bool,
    },
    /// `QUERY`: the recorded target users of a recent arrival.
    Query {
        /// The queried object.
        object: ObjectId,
        /// Its recorded target users, ascending.
        users: Vec<UserId>,
    },
    /// `FRONTIER`: a user's current Pareto frontier.
    Frontier {
        /// The queried user.
        user: UserId,
        /// Frontier object ids, ascending.
        objects: Vec<ObjectId>,
    },
    /// `REGISTER` succeeded.
    Registered {
        /// The registered user.
        user: UserId,
        /// The shard that owns it.
        shard: usize,
    },
    /// `UPDATE` succeeded.
    Updated {
        /// The updated user.
        user: UserId,
        /// The shard that owns it.
        shard: usize,
    },
    /// `UNREGISTER` succeeded.
    Unregistered(UserId),
    /// `SNAPSHOT` succeeded: a durable snapshot was written.
    Snapshot {
        /// The WAL LSN the snapshot covers (records `< lsn` need no replay).
        lsn: u64,
    },
    /// `STATS`: the rendered engine snapshot.
    Stats(String),
    /// `METRICS`: the Prometheus text-format exposition body.
    Metrics(String),
    /// `HEALTH`: liveness and engine identity.
    Health {
        /// Backend spec string.
        backend: String,
        /// Shard count.
        shards: usize,
        /// Registered user count.
        users: usize,
        /// Engine uptime in milliseconds.
        uptime_ms: u128,
    },
    /// `HELLO` succeeded: the negotiated capabilities. The connection
    /// renders this response in its *old* mode, then switches to `proto`.
    Hello {
        /// The negotiated wire mode.
        proto: WireMode,
        /// Server version (crate version).
        version: String,
        /// Backend spec string.
        backend: String,
        /// Shard count.
        shards: usize,
        /// Attributes per object.
        arity: usize,
    },
    /// `SUBSCRIBE` succeeded: the frontier snapshot subsequent
    /// [`Response::Event`] deltas apply to (snapshot and subscription are
    /// atomic — no delta between them can be missed).
    Subscribed {
        /// The subscribed user.
        user: UserId,
        /// The user's frontier at subscription time, ascending.
        snapshot: Vec<ObjectId>,
    },
    /// `UNSUBSCRIBE` succeeded.
    Unsubscribed(UserId),
    /// `EXPORT` succeeded: a registered user's preference rows, rendered
    /// in REGISTER syntax so a coordinator can replay them verbatim on
    /// another node.
    Exported {
        /// The exported user.
        user: UserId,
        /// The preference rows (`;`-separated attributes, `x>y` comma
        /// lists, `-` for an empty attribute), deterministic order.
        rows: String,
    },
    /// `HELLO node` succeeded: the node-mode handshake, extending the
    /// client handshake with the node's applied position so a coordinator
    /// can fence backlog replay. The connection renders this response in
    /// its *old* mode, then switches to `proto`.
    NodeHello {
        /// The negotiated wire mode.
        proto: WireMode,
        /// Server version (crate version).
        version: String,
        /// Backend spec string.
        backend: String,
        /// Shard count.
        shards: usize,
        /// Attributes per object.
        arity: usize,
        /// The node's applied position: the id the next ingested object
        /// will be assigned (equals the count of objects ever applied).
        next_id: u64,
    },
    /// Asynchronous push: one user's frontier deltas from one arrival (or
    /// membership change), in ascending object order.
    Event {
        /// The subscribed user whose frontier changed.
        user: UserId,
        /// The net membership changes, ascending by object id.
        deltas: Vec<FrontierDelta>,
    },
    /// `QUIT`: goodbye, the connection closes after this response.
    Bye,
    /// Any failed request; the message is relayed verbatim after `ERR `.
    Err(String),
}

impl Response {
    /// Whether this response reports a failure.
    pub fn is_err(&self) -> bool {
        matches!(self, Response::Err(_))
    }
}

/// Renders a response as its single text-protocol line (without the
/// trailing newline), byte-identical to the historical `format!` strings.
/// `METRICS` embeds interior newlines (header line + exposition body).
pub fn render_text(response: &Response) -> String {
    match response {
        Response::Ingested(arrivals) => {
            let body = arrivals
                .iter()
                .map(|a| format!("{}:{}", a.object.raw(), format_users(&a.target_users)))
                .collect::<Vec<_>>()
                .join(";");
            format!("OK INGESTED {} {body}", arrivals.len())
        }
        Response::Expired {
            expirations,
            sliding,
        } => {
            if *sliding {
                format!("OK EXPIRED {expirations}")
            } else {
                format!("OK EXPIRED {expirations} (append-only backend, nothing expires)")
            }
        }
        Response::Query { object, users } => {
            format!("OK QUERY {} {}", object.raw(), format_users(users))
        }
        Response::Frontier { user, objects } => {
            format!("OK FRONTIER {} {}", user.raw(), format_objects(objects))
        }
        Response::Registered { user, shard } => {
            format!("OK REGISTERED {} shard={shard}", user.raw())
        }
        Response::Updated { user, shard } => format!("OK UPDATED {} shard={shard}", user.raw()),
        Response::Unregistered(user) => format!("OK UNREGISTERED {}", user.raw()),
        Response::Snapshot { lsn } => format!("OK SNAPSHOT lsn={lsn}"),
        Response::Stats(snapshot) => format!("OK STATS {snapshot}"),
        // The header names the body's byte length so clients can read the
        // multi-line exposition exactly; the connection's trailing newline
        // yields the blank-line terminator.
        Response::Metrics(body) => format!("OK METRICS {}\n{body}", body.len()),
        Response::Health {
            backend,
            shards,
            users,
            uptime_ms,
        } => format!(
            "OK HEALTH pm-server backend={backend} shards={shards} users={users} \
             uptime_ms={uptime_ms}"
        ),
        Response::Hello {
            proto,
            version,
            backend,
            shards,
            arity,
        } => format!(
            "OK HELLO pm-server proto={} version={version} backend={backend} \
             shards={shards} arity={arity}",
            proto.token()
        ),
        Response::Subscribed { user, snapshot } => {
            format!("OK SUBSCRIBED {} {}", user.raw(), format_objects(snapshot))
        }
        Response::Unsubscribed(user) => format!("OK UNSUBSCRIBED {}", user.raw()),
        Response::Exported { user, rows } => format!("OK EXPORTED {} {rows}", user.raw()),
        Response::NodeHello {
            proto,
            version,
            backend,
            shards,
            arity,
            next_id,
        } => format!(
            "OK HELLO pm-node proto={} version={version} backend={backend} \
             shards={shards} arity={arity} next_id={next_id}",
            proto.token()
        ),
        Response::Event { user, deltas } => {
            let body = deltas
                .iter()
                .map(|d| format!("{}{}", if d.entered { '+' } else { '-' }, d.object.raw()))
                .collect::<Vec<_>>()
                .join(",");
            format!("EVENT {} {body}", user.raw())
        }
        Response::Bye => "OK BYE".to_owned(),
        Response::Err(e) => format!("ERR {e}"),
    }
}

/// Narrows a `usize` scalar (shard index, shard count, user count, arity)
/// to its `u32` wire field, saturating instead of wrapping.
fn saturating_u32(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Writes a `u16 BE` length-prefixed string, truncating an oversized value
/// to the longest prefix that both fits the prefix and ends on a UTF-8
/// character boundary — a raw byte cut could split a multi-byte character
/// and hand frame clients invalid UTF-8.
fn put_str(buf: &mut Vec<u8>, s: &str) {
    let mut len = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    buf.extend_from_slice(&(len as u16).to_be_bytes());
    buf.extend_from_slice(&s.as_bytes()[..len]);
}

/// Writes a `u32 BE` element count, saturating at `u32::MAX`, and returns
/// how many elements the caller may encode — a plain `as u32` cast would
/// wrap for oversized collections and desynchronize count and payload.
fn put_count(buf: &mut Vec<u8>, len: usize) -> usize {
    let count = u32::try_from(len).unwrap_or(u32::MAX);
    buf.extend_from_slice(&count.to_be_bytes());
    count as usize
}

fn put_users(buf: &mut Vec<u8>, users: &[UserId]) {
    let count = put_count(buf, users.len());
    for user in &users[..count] {
        buf.extend_from_slice(&user.raw().to_be_bytes());
    }
}

fn put_objects(buf: &mut Vec<u8>, objects: &[ObjectId]) {
    let count = put_count(buf, objects.len());
    for object in &objects[..count] {
        buf.extend_from_slice(&object.raw().to_be_bytes());
    }
}

/// Renders a response as one binary frame (see the module docs for the
/// layout): `[u32 BE length][u8 kind][payload]`.
pub fn render_frame(response: &Response) -> Vec<u8> {
    let mut body: Vec<u8> = vec![0];
    body[0] = match response {
        Response::Err(e) => {
            body.extend_from_slice(e.as_bytes());
            0
        }
        Response::Ingested(arrivals) => {
            let count = put_count(&mut body, arrivals.len());
            for arrival in &arrivals[..count] {
                body.extend_from_slice(&arrival.object.raw().to_be_bytes());
                put_users(&mut body, &arrival.target_users);
            }
            1
        }
        Response::Expired {
            expirations,
            sliding,
        } => {
            body.extend_from_slice(&expirations.to_be_bytes());
            body.push(u8::from(*sliding));
            2
        }
        Response::Query { object, users } => {
            body.extend_from_slice(&object.raw().to_be_bytes());
            put_users(&mut body, users);
            3
        }
        Response::Frontier { user, objects } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            put_objects(&mut body, objects);
            4
        }
        Response::Registered { user, shard } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(&saturating_u32(*shard).to_be_bytes());
            5
        }
        Response::Updated { user, shard } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(&saturating_u32(*shard).to_be_bytes());
            6
        }
        Response::Unregistered(user) => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            7
        }
        Response::Snapshot { lsn } => {
            body.extend_from_slice(&lsn.to_be_bytes());
            16
        }
        Response::Stats(snapshot) => {
            body.extend_from_slice(snapshot.as_bytes());
            8
        }
        Response::Metrics(exposition) => {
            body.extend_from_slice(exposition.as_bytes());
            9
        }
        Response::Health {
            backend,
            shards,
            users,
            uptime_ms,
        } => {
            put_str(&mut body, backend);
            body.extend_from_slice(&saturating_u32(*shards).to_be_bytes());
            body.extend_from_slice(&saturating_u32(*users).to_be_bytes());
            let uptime = u64::try_from(*uptime_ms).unwrap_or(u64::MAX);
            body.extend_from_slice(&uptime.to_be_bytes());
            10
        }
        Response::Hello {
            proto,
            version,
            backend,
            shards,
            arity,
        } => {
            body.push(match proto {
                WireMode::Text => 0,
                WireMode::Frame => 1,
            });
            put_str(&mut body, version);
            put_str(&mut body, backend);
            body.extend_from_slice(&saturating_u32(*shards).to_be_bytes());
            body.extend_from_slice(&saturating_u32(*arity).to_be_bytes());
            11
        }
        Response::Subscribed { user, snapshot } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            put_objects(&mut body, snapshot);
            12
        }
        Response::Unsubscribed(user) => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            13
        }
        Response::Exported { user, rows } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            body.extend_from_slice(rows.as_bytes());
            17
        }
        Response::NodeHello {
            proto,
            version,
            backend,
            shards,
            arity,
            next_id,
        } => {
            body.push(match proto {
                WireMode::Text => 0,
                WireMode::Frame => 1,
            });
            put_str(&mut body, version);
            put_str(&mut body, backend);
            body.extend_from_slice(&saturating_u32(*shards).to_be_bytes());
            body.extend_from_slice(&saturating_u32(*arity).to_be_bytes());
            body.extend_from_slice(&next_id.to_be_bytes());
            18
        }
        Response::Bye => 14,
        Response::Event { user, deltas } => {
            body.extend_from_slice(&user.raw().to_be_bytes());
            let count = put_count(&mut body, deltas.len());
            for delta in &deltas[..count] {
                body.push(u8::from(delta.entered));
                body.extend_from_slice(&delta.object.raw().to_be_bytes());
            }
            15
        }
    };
    // The outer length prefix is a u32 too: a body that cannot be framed
    // (>4 GiB, practically unreachable) becomes a protocol error instead of
    // a wrapped length that would desynchronize the stream.
    if u32::try_from(body.len()).is_err() {
        body.clear();
        body.push(0);
        body.extend_from_slice(b"response too large for one frame");
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_matches_the_historical_strings() {
        assert_eq!(
            render_text(&Response::Ingested(vec![Arrival {
                object: ObjectId::new(0),
                target_users: vec![UserId::new(1), UserId::new(2)],
                deltas: vec![],
            }])),
            "OK INGESTED 1 0:1,2"
        );
        assert_eq!(
            render_text(&Response::Expired {
                expirations: 6,
                sliding: true
            }),
            "OK EXPIRED 6"
        );
        assert_eq!(
            render_text(&Response::Expired {
                expirations: 0,
                sliding: false
            }),
            "OK EXPIRED 0 (append-only backend, nothing expires)"
        );
        assert_eq!(
            render_text(&Response::Registered {
                user: UserId::new(9),
                shard: 1
            }),
            "OK REGISTERED 9 shard=1"
        );
        assert_eq!(render_text(&Response::Bye), "OK BYE");
        assert_eq!(render_text(&Response::Err("nope".to_owned())), "ERR nope");
    }

    #[test]
    fn event_lines_render_signed_object_lists() {
        let user = UserId::new(3);
        assert_eq!(
            render_text(&Response::Event {
                user,
                deltas: vec![
                    FrontierDelta::enter(user, ObjectId::new(7)),
                    FrontierDelta::leave(user, ObjectId::new(9)),
                ],
            }),
            "EVENT 3 +7,-9"
        );
    }

    #[test]
    fn frames_are_length_prefixed_and_tagged() {
        let frame = render_frame(&Response::Bye);
        assert_eq!(frame, vec![0, 0, 0, 1, 14]);

        let frame = render_frame(&Response::Event {
            user: UserId::new(3),
            deltas: vec![FrontierDelta::enter(UserId::new(3), ObjectId::new(7))],
        });
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        assert_eq!(frame[4], 15);
        assert_eq!(&frame[5..9], &3u32.to_be_bytes());
        assert_eq!(&frame[9..13], &1u32.to_be_bytes());
        assert_eq!(frame[13], 1);
        assert_eq!(&frame[14..22], &7u64.to_be_bytes());
    }

    #[test]
    fn err_frames_carry_the_message() {
        let frame = render_frame(&Response::Err("lagged".to_owned()));
        assert_eq!(frame[4], 0);
        assert_eq!(&frame[5..], b"lagged");
    }

    #[test]
    fn snapshot_renders_in_both_wire_modes() {
        assert_eq!(
            render_text(&Response::Snapshot { lsn: 42 }),
            "OK SNAPSHOT lsn=42"
        );
        let frame = render_frame(&Response::Snapshot { lsn: 42 });
        assert_eq!(frame[4], 16);
        assert_eq!(&frame[5..], &42u64.to_be_bytes());
    }

    #[test]
    fn cluster_responses_render_in_both_wire_modes() {
        assert_eq!(
            render_text(&Response::Exported {
                user: UserId::new(7),
                rows: "0>1,1>2;-;3>0".to_owned(),
            }),
            "OK EXPORTED 7 0>1,1>2;-;3>0"
        );
        let frame = render_frame(&Response::Exported {
            user: UserId::new(7),
            rows: "-;-".to_owned(),
        });
        assert_eq!(frame[4], 17);
        assert_eq!(&frame[5..9], &7u32.to_be_bytes());
        assert_eq!(&frame[9..], b"-;-");

        let node_hello = Response::NodeHello {
            proto: WireMode::Text,
            version: "0.1.0".to_owned(),
            backend: "baseline".to_owned(),
            shards: 2,
            arity: 3,
            next_id: 40,
        };
        assert_eq!(
            render_text(&node_hello),
            "OK HELLO pm-node proto=text version=0.1.0 backend=baseline \
             shards=2 arity=3 next_id=40"
        );
        let frame = render_frame(&node_hello);
        assert_eq!(frame[4], 18);
        assert_eq!(&frame[frame.len() - 8..], &40u64.to_be_bytes());
    }

    #[test]
    fn put_str_truncates_on_a_char_boundary() {
        // 65,534 ASCII bytes followed by a 3-byte character: the u16::MAX
        // byte cap falls mid-character, so the encoder must back up to the
        // boundary instead of emitting invalid UTF-8.
        let mut s = "a".repeat(u16::MAX as usize - 1);
        s.push('€');
        let mut buf = Vec::new();
        put_str(&mut buf, &s);
        let len = u16::from_be_bytes(buf[..2].try_into().unwrap()) as usize;
        assert_eq!(len, u16::MAX as usize - 1);
        assert_eq!(buf.len(), 2 + len);
        assert!(std::str::from_utf8(&buf[2..]).is_ok());

        // A short string is untouched.
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo");
        assert_eq!(&buf[..2], &(6u16).to_be_bytes());
        assert_eq!(&buf[2..], "héllo".as_bytes());
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        // A count one past u32::MAX would wrap to 0 under `as u32`; the
        // saturating encoder pins it to u32::MAX and tells the caller to
        // encode exactly that many elements.
        let mut buf = Vec::new();
        let count = put_count(&mut buf, u32::MAX as usize + 1);
        assert_eq!(&buf, &u32::MAX.to_be_bytes());
        assert_eq!(count, u32::MAX as usize);

        let mut buf = Vec::new();
        assert_eq!(put_count(&mut buf, 3), 3);
        assert_eq!(&buf, &3u32.to_be_bytes());

        assert_eq!(saturating_u32(7), 7);
        assert_eq!(saturating_u32(u32::MAX as usize + 1), u32::MAX);
    }
}
