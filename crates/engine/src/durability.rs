//! Crash recovery: rebuilding an [`EngineService`] from a WAL directory.
//!
//! The durable state lives in two layers (see `pm-wal`): a point-in-time
//! snapshot of exactly the PR-5 minimal state — per-shard compact history
//! groups (or sliding windows) with their observed-preference universes,
//! the flattened memberships in registration order, the monotonic counters
//! and the server's ingest bookkeeping — plus the append-only log of every
//! mutation applied after the snapshot's LSN. [`recover_or_create`] folds
//! the two back together:
//!
//! 1. Load the newest snapshot that validates (corrupt ones are skipped
//!    newest-first). With no usable snapshot, recovery starts from the
//!    genesis preference set and replays the log from LSN 0.
//! 2. Rebuild the engine: install the per-shard monitor state verbatim
//!    into an empty engine, then re-register every member in shard-local
//!    registration order — backfill reconstructs each user's frontier from
//!    the installed history or window, and re-registering in order
//!    reproduces every shard-local user id. Work counters are restored
//!    *after* re-registration (backfill replay performs comparisons the
//!    snapshot already accounts for).
//! 3. Replay the WAL tail through the ordinary service paths. Ingest
//!    records carry the server-assigned object ids, so replay re-mints the
//!    identical arrival stream; registrations, updates and unregistrations
//!    go through the same validation-free engine entry points the live
//!    server uses.
//! 4. Open the WAL for appending — [`pm_wal::Wal::open`] truncates any
//!    torn tail first — attach it to the engine, and write a fresh
//!    snapshot so the directory is self-contained again (in particular:
//!    the *first* enable of durability snapshots the dataset-seeded users,
//!    which predate the log).
//!
//! Exactness across recovery matches the backends' own guarantees: every
//! backend restores exact frontiers and notifications (for the
//! filter-then-verify family the compact history is lossless for frontier
//! reconstruction, Lemma 4.6). The `comparisons` *work* counter is the one
//! exception — frontiers are hash maps and the dominance scan early-exits,
//! so the number of comparisons an arrival costs depends on iteration
//! order and differs between any two engine instances, recovered or not
//! (filter-then-verify additionally re-clusters on re-registration). The
//! approximate sliding-window variants may also diverge, as clustering
//! there is incremental.
//!
//! # The object id is the replication sequence number
//!
//! Replay hinges on ingest records carrying server-assigned ids: ids are
//! dense and allocation-ordered, so a recovered engine's `next_id` *is*
//! its position in the arrival stream. `pm-coord` builds multi-node
//! replication on exactly this anchor — a replicated batch's sequence
//! number is its first object id, nodes fence `SEQ`-stamped batches
//! against their own `next_id` ([`EngineService::ingest_fenced`]), and a
//! rejoining node's WAL-recovered position tells the coordinator
//! precisely which backlog suffix to replay. One id space serves as WAL
//! LSN, QUERY handle and cluster replication sequence at once.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_core::MonitorStats;
use pm_porder::Preference;
use pm_wal::{load_latest_snapshot, scan, SyncPolicy, Wal};

use crate::backend::BackendSpec;
use crate::engine::{EngineConfig, ShardedEngine};
use crate::server::EngineService;

/// Durability settings, mirroring the server's `--wal-dir`, `--wal-sync`
/// and `--snapshot-every` flags.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments and snapshots.
    pub dir: PathBuf,
    /// When the log fsyncs (`--wal-sync`).
    pub sync: SyncPolicy,
    /// Snapshot after this many WAL records accumulate past the last
    /// snapshot; `0` disables periodic snapshots (the `SNAPSHOT` verb
    /// still works).
    pub snapshot_every: u64,
}

/// The attached durability runtime: the open WAL plus the snapshot
/// scheduling state. Owned by the [`EngineService`] once
/// `attach_durability` installs it.
pub(crate) struct Durability {
    /// The open log; also attached to the engine for mutation appends.
    pub(crate) wal: Arc<Wal>,
    /// The WAL directory, where snapshots are written too.
    pub(crate) dir: PathBuf,
    /// See [`DurabilityConfig::snapshot_every`].
    pub(crate) snapshot_every: u64,
    /// The LSN covered by the most recent snapshot.
    pub(crate) last_snapshot_lsn: AtomicU64,
    /// Snapshots written since startup (feeds `pm_wal_snapshots_total`).
    pub(crate) snapshots: AtomicU64,
}

/// What a recovery did, as reported by [`recover_or_create`] (and printed
/// by `pm-server` at startup). `None` from `recover_or_create` means the
/// directory was fresh — nothing to recover.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The LSN the restored snapshot covered (0 when none was usable).
    pub snapshot_lsn: u64,
    /// Whether a snapshot was restored (vs. a genesis rebuild + replay).
    pub from_snapshot: bool,
    /// Newer snapshot files that failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// WAL records replayed after the snapshot point.
    pub replayed: u64,
    /// Torn-tail bytes truncated from the last segment.
    pub truncated_bytes: u64,
    /// Registered users after recovery.
    pub members: usize,
    /// Wall-clock recovery time.
    pub elapsed: Duration,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} users in {:.1} ms: {} lsn={} replayed={} truncated_bytes={} skipped_snapshots={}",
            self.members,
            self.elapsed.as_secs_f64() * 1_000.0,
            if self.from_snapshot {
                "snapshot"
            } else {
                "genesis"
            },
            self.snapshot_lsn,
            self.replayed,
            self.truncated_bytes,
            self.snapshots_skipped,
        )
    }
}

/// An `InvalidData` error for a snapshot that cannot be restored into the
/// engine being built (wrong backend, shard count or arity).
fn mismatch(
    what: &str,
    snapshot: impl std::fmt::Display,
    ours: impl std::fmt::Display,
) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("snapshot {what} mismatch: snapshot has {snapshot}, engine wants {ours}"),
    )
}

/// Builds the serving stack with durability: recovers from `durability.dir`
/// when it holds a snapshot or WAL records, otherwise builds fresh from
/// `genesis` (the dataset-seeded preferences — callers must pass the same
/// set on every start, since users that predate the first snapshot are not
/// in the log). Returns the service with the WAL attached and a report of
/// what recovery did (`None` when the directory was fresh).
///
/// The engine configuration must match the snapshot being restored:
/// recovery refuses (with `InvalidData`) to load a snapshot taken under a
/// different backend spec, shard count or arity, because users are
/// hash-partitioned by shard count and histories are encoded per backend.
pub fn recover_or_create(
    genesis: Vec<Preference>,
    engine_config: &EngineConfig,
    spec: &BackendSpec,
    arity: usize,
    history: usize,
    durability: &DurabilityConfig,
) -> io::Result<(EngineService, Option<RecoveryReport>)> {
    let start = Instant::now();
    std::fs::create_dir_all(&durability.dir)?;

    let (service, report) = match load_latest_snapshot(&durability.dir)? {
        Some(loaded) => {
            let state = loaded.state;
            if state.backend != spec.to_string() {
                return Err(mismatch("backend", &state.backend, spec));
            }
            if state.shards as usize != engine_config.shards {
                return Err(mismatch("shard count", state.shards, engine_config.shards));
            }
            if state.arity as usize != arity {
                return Err(mismatch("arity", state.arity, arity));
            }

            // Stats are restored after re-registration; capture them before
            // the monitors move into the engine.
            let shard_stats: Vec<MonitorStats> = state.monitors.iter().map(|m| m.stats).collect();

            let engine = ShardedEngine::empty(engine_config, spec);
            engine.import_shard_states(state.monitors);
            for shard_members in state.members {
                for (user, preference) in shard_members {
                    engine.register(user, preference).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("snapshot member {} failed to re-register: {e}", user.raw()),
                        )
                    })?;
                }
            }
            engine.restore_shard_stats(shard_stats);
            engine.restore_counters(
                state.ingested,
                state.registrations,
                state.unregistrations,
                state.updates,
            );

            let service = EngineService::new(engine, spec.clone(), arity, history);
            service.seed_ingest(state.next_id, state.query_order, state.query_targets);
            let report = RecoveryReport {
                snapshot_lsn: state.last_lsn,
                from_snapshot: true,
                snapshots_skipped: loaded.skipped,
                replayed: 0,
                truncated_bytes: 0,
                members: 0,
                elapsed: Duration::ZERO,
            };
            (service, Some(report))
        }
        None => {
            let engine = ShardedEngine::new(genesis, engine_config, spec);
            let service = EngineService::new(engine, spec.clone(), arity, history);
            (service, None)
        }
    };

    // Replay the log tail through the ordinary service paths. The WAL is
    // not attached yet, so replayed mutations are not re-appended.
    let from_lsn = report.as_ref().map_or(0, |r| r.snapshot_lsn);
    let outcome = scan(&durability.dir, from_lsn)?;
    let fresh = report.is_none() && outcome.records.is_empty() && outcome.torn.is_none();
    let mut replayed = 0u64;
    for (lsn, record) in outcome.records {
        match service.replay_record(record) {
            Ok(()) => replayed += 1,
            Err(e) => {
                pm_obs::warn!(
                    "pm_engine::durability",
                    "WAL replay skipped a record",
                    lsn = lsn,
                    error = e
                );
            }
        }
    }

    // Open for appending (truncating any torn tail), attach, and re-anchor
    // with a fresh snapshot so the directory is self-contained: the
    // snapshot now also covers genesis users and the replayed tail.
    let wal = Arc::new(Wal::open(&durability.dir, durability.sync)?);
    let truncated_bytes = wal.truncated_bytes();
    let last_snapshot_lsn = AtomicU64::new(from_lsn);
    service.attach_durability(Durability {
        wal,
        dir: durability.dir.clone(),
        snapshot_every: durability.snapshot_every,
        last_snapshot_lsn,
        snapshots: AtomicU64::new(0),
    });
    if let Err(e) = service.snapshot_now() {
        pm_obs::warn!(
            "pm_engine::durability",
            "post-recovery snapshot failed",
            error = e
        );
    }

    if fresh {
        return Ok((service, None));
    }
    let members = service.engine().num_users();
    let elapsed = start.elapsed();
    let report = match report {
        Some(r) => RecoveryReport {
            replayed,
            truncated_bytes,
            members,
            elapsed,
            ..r
        },
        None => RecoveryReport {
            snapshot_lsn: 0,
            from_snapshot: false,
            snapshots_skipped: 0,
            replayed,
            truncated_bytes,
            members,
            elapsed,
        },
    };
    Ok((service, Some(report)))
}
