//! The newline-delimited text protocol spoken by `pm-server`.
//!
//! Requests are single lines, case-insensitive verbs, space-separated:
//!
//! ```text
//! INGEST v,v,...[;v,v,...]*   ingest one or more objects (one per ';' group)
//! EXPIRE                      report cumulative window expirations
//! QUERY <object>              target users of a recently ingested object
//! FRONTIER <user>             current Pareto frontier of a user
//! REGISTER <user> <rows>      register a user mid-stream; one row per
//!                             attribute, ';'-separated, each row a
//!                             comma-separated list of `x>y` tuples
//!                             (`x` preferred to `y`), or `-`/empty for
//!                             "no preferences on this attribute"
//! UPDATE <user> <rows>        replace a registered user's preference in
//!                             place (same row syntax as REGISTER); the
//!                             user keeps its id and shard, no other user
//!                             is touched
//! UNREGISTER <user>           remove a registered user
//! SUBSCRIBE <user>            push this user's frontier deltas to this
//!                             connection as EVENT lines; the OK response
//!                             carries the frontier snapshot the deltas
//!                             apply to
//! UNSUBSCRIBE <user>          stop pushing this user's frontier deltas
//! HELLO [capability ...]      negotiate the wire format: `text` (default)
//!                             or `frame` (length-prefixed binary);
//!                             unknown capabilities answer ERR and leave
//!                             the connection (and its mode) untouched
//! SNAPSHOT                    write a durable snapshot now (requires the
//!                             server to run with --wal-dir); the OK
//!                             response carries the covered WAL LSN
//! STATS                       engine metrics snapshot
//! METRICS                     Prometheus text-format exposition
//! HEALTH                      liveness + engine identity
//! QUIT                        close the connection
//! ```
//!
//! Two *internal* verbs support cluster mode (spoken by a `pm-coord`
//! coordinator to its nodes, never by ordinary clients):
//!
//! ```text
//! EXPORT <user>               a registered user's preference rows in
//!                             REGISTER syntax, for migrating the user to
//!                             another node
//! SEQ <n> <request>           a replicated mutation fenced by the
//!                             coordinator sequence number `n`; the node
//!                             refuses the wrapped request unless its own
//!                             applied position equals `n`
//! ```
//!
//! Every response is a single `OK`/`ERR` line except `METRICS`, whose `OK
//! METRICS <bytes>` header line is followed by `<bytes>` bytes of
//! Prometheus text-format 0.0.4 exposition and one terminating blank line.
//! Connections with active subscriptions additionally receive asynchronous
//! `EVENT <user> +<obj>/-<obj>,...` push lines (see [`crate::response`]).
//!
//! Ids may be written bare (`QUERY 17`) or with the display prefix of the
//! id type (`QUERY o17`, `FRONTIER c3`, `REGISTER c9 ...`). Responses are
//! single lines starting with `OK` or `ERR`.

use pm_model::{ObjectId, UserId, ValueId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest a batch of objects, given as their attribute-value rows.
    Ingest(Vec<Vec<ValueId>>),
    /// Report cumulative window expirations.
    Expire,
    /// Look up the target users of a recently ingested object.
    Query(ObjectId),
    /// Report the current Pareto frontier of a user.
    Frontier(UserId),
    /// Register a new user: one row of `(better, worse)` preference tuples
    /// per attribute.
    Register {
        /// The global id the client chose for the user.
        user: UserId,
        /// Per-attribute preference tuples, in attribute order.
        rows: Vec<Vec<(ValueId, ValueId)>>,
    },
    /// Replace a registered user's preference in place: same payload shape
    /// as [`Request::Register`], but the user must already exist and keeps
    /// its id.
    Update {
        /// The global id of the user being updated.
        user: UserId,
        /// Per-attribute preference tuples, in attribute order.
        rows: Vec<Vec<(ValueId, ValueId)>>,
    },
    /// Remove a registered user.
    Unregister(UserId),
    /// Subscribe this connection to a user's frontier deltas.
    Subscribe(UserId),
    /// Unsubscribe this connection from a user's frontier deltas.
    Unsubscribe(UserId),
    /// Negotiate connection capabilities (wire format); the raw capability
    /// tokens are validated by the service.
    Hello(Vec<String>),
    /// Write a durable snapshot now (`ERR` when durability is disabled).
    Snapshot,
    /// Report an engine metrics snapshot.
    Stats,
    /// Report the Prometheus text-format metrics exposition.
    Metrics,
    /// Liveness check.
    Health,
    /// Close the connection.
    Quit,
    /// Internal cluster verb: report a registered user's preference rows
    /// in REGISTER syntax, so a coordinator can migrate the user to
    /// another node.
    Export(UserId),
    /// Internal cluster verb: a replicated mutation fenced by the
    /// coordinator sequence number — the node applies `inner` only when
    /// its own applied position equals `seq` (log order == apply order,
    /// the same invariant the WAL relies on).
    Sequenced {
        /// The coordinator's sequence number: the id the first object of
        /// the wrapped batch must be assigned.
        seq: u64,
        /// The wrapped request (currently always [`Request::Ingest`]).
        inner: Box<Request>,
    },
}

/// Parses a user id, accepting the bare number or the `c` display prefix.
fn parse_user(text: &str) -> Result<UserId, String> {
    let raw = text.strip_prefix('c').unwrap_or(text);
    raw.parse::<u32>()
        .map(UserId::new)
        .map_err(|_| format!("bad user id `{text}`"))
}

/// Parses one attribute's preference row: `-` or empty means "no
/// preferences on this attribute", otherwise comma-separated `x>y` tuples.
fn parse_pref_row(row: &str) -> Result<Vec<(ValueId, ValueId)>, String> {
    let row = row.trim();
    if row.is_empty() || row == "-" {
        return Ok(Vec::new());
    }
    row.split(',')
        .map(|tuple| {
            let (x, y) = tuple
                .split_once('>')
                .ok_or_else(|| format!("bad preference tuple `{tuple}` (expected x>y)"))?;
            let parse = |v: &str| {
                v.trim()
                    .parse::<u32>()
                    .map(ValueId::new)
                    .map_err(|_| format!("bad value `{v}` in preference tuple `{tuple}`"))
            };
            Ok((parse(x)?, parse(y)?))
        })
        .collect()
}

/// Per-attribute `(better, worse)` preference tuples, as carried by the
/// REGISTER and UPDATE payloads.
pub type PreferenceRows = Vec<Vec<(ValueId, ValueId)>>;

/// Parses the shared `<user> <rows>` payload of REGISTER and UPDATE.
fn parse_user_rows(verb: &str, rest: &str) -> Result<(UserId, PreferenceRows), String> {
    let (user_text, rows_text) = rest.split_once(char::is_whitespace).ok_or_else(|| {
        format!(
            "{verb} needs a user id and preference rows \
             (e.g. {verb} 9 0>1,1>2;-;3>0)"
        )
    })?;
    let user = parse_user(user_text)?;
    let rows = rows_text
        .trim()
        .split(';')
        .map(parse_pref_row)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((user, rows))
}

fn parse_values(group: &str) -> Result<Vec<ValueId>, String> {
    group
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<u32>()
                .map(ValueId::new)
                .map_err(|_| format!("bad value `{v}` (expected unsigned integer)"))
        })
        .collect()
}

/// Parses one request line. Returns `Err` with a human-readable message on
/// malformed input; the server relays it as an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "INGEST" => {
            if rest.is_empty() {
                return Err("INGEST needs at least one value row".to_owned());
            }
            rest.split(';')
                .map(parse_values)
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Ingest)
        }
        "EXPIRE" => {
            if rest.is_empty() {
                Ok(Request::Expire)
            } else {
                Err("EXPIRE takes no arguments (expiry is window-driven)".to_owned())
            }
        }
        "QUERY" => {
            let raw = rest.strip_prefix('o').unwrap_or(rest);
            raw.parse::<u64>()
                .map(|id| Request::Query(ObjectId::new(id)))
                .map_err(|_| format!("bad object id `{rest}`"))
        }
        "FRONTIER" => parse_user(rest).map(Request::Frontier),
        "REGISTER" => {
            let (user, rows) = parse_user_rows("REGISTER", rest)?;
            Ok(Request::Register { user, rows })
        }
        "UPDATE" => {
            let (user, rows) = parse_user_rows("UPDATE", rest)?;
            Ok(Request::Update { user, rows })
        }
        "UNREGISTER" => parse_user(rest).map(Request::Unregister),
        "SUBSCRIBE" => parse_user(rest).map(Request::Subscribe),
        "UNSUBSCRIBE" => parse_user(rest).map(Request::Unsubscribe),
        "HELLO" => Ok(Request::Hello(
            rest.split_whitespace().map(str::to_owned).collect(),
        )),
        "EXPORT" => parse_user(rest).map(Request::Export),
        "SEQ" => {
            let (seq_text, inner_text) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "SEQ needs a sequence number and a request".to_owned())?;
            let seq = seq_text
                .parse::<u64>()
                .map_err(|_| format!("bad sequence number `{seq_text}`"))?;
            let inner = parse_request(inner_text)?;
            if matches!(inner, Request::Sequenced { .. }) {
                return Err("SEQ cannot nest".to_owned());
            }
            Ok(Request::Sequenced {
                seq,
                inner: Box::new(inner),
            })
        }
        "SNAPSHOT" | "STATS" | "METRICS" | "HEALTH" | "QUIT" if !rest.is_empty() => {
            Err(format!("{} takes no arguments", verb.to_ascii_uppercase()))
        }
        "SNAPSHOT" => Ok(Request::Snapshot),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "HEALTH" => Ok(Request::Health),
        "QUIT" => Ok(Request::Quit),
        "" => Err("empty request".to_owned()),
        other => Err(format!(
            "unknown verb `{other}` (expected INGEST, EXPIRE, QUERY, FRONTIER, REGISTER, \
             UPDATE, UNREGISTER, SUBSCRIBE, UNSUBSCRIBE, HELLO, SNAPSHOT, STATS, METRICS, \
             HEALTH, QUIT, EXPORT or SEQ)"
        )),
    }
}

/// Formats a `u32`-raw id list (users) as a comma-separated string.
pub(crate) fn format_users(users: &[UserId]) -> String {
    users
        .iter()
        .map(|u| u.raw().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats an object id list as a comma-separated string.
pub(crate) fn format_objects(objects: &[ObjectId]) -> String {
    objects
        .iter()
        .map(|o| o.raw().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ingest_batches() {
        assert_eq!(
            parse_request("INGEST 1,2,3"),
            Ok(Request::Ingest(vec![vec![
                ValueId::new(1),
                ValueId::new(2),
                ValueId::new(3)
            ]]))
        );
        assert_eq!(
            parse_request("ingest 1,2;3,4"),
            Ok(Request::Ingest(vec![
                vec![ValueId::new(1), ValueId::new(2)],
                vec![ValueId::new(3), ValueId::new(4)],
            ]))
        );
        assert!(parse_request("INGEST").is_err());
        assert!(parse_request("INGEST a,b").is_err());
    }

    #[test]
    fn parses_queries_with_and_without_prefixes() {
        assert_eq!(
            parse_request("QUERY 17"),
            Ok(Request::Query(ObjectId::new(17)))
        );
        assert_eq!(
            parse_request("query o17"),
            Ok(Request::Query(ObjectId::new(17)))
        );
        assert_eq!(
            parse_request("FRONTIER c3"),
            Ok(Request::Frontier(UserId::new(3)))
        );
        assert_eq!(
            parse_request("frontier 3"),
            Ok(Request::Frontier(UserId::new(3)))
        );
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("FRONTIER x").is_err());
    }

    #[test]
    fn parses_nullary_verbs() {
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("SNAPSHOT"), Ok(Request::Snapshot));
        assert_eq!(parse_request("snapshot"), Ok(Request::Snapshot));
        assert!(parse_request("SNAPSHOT now").is_err());
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(parse_request("health"), Ok(Request::Health));
        assert_eq!(parse_request("  QUIT  "), Ok(Request::Quit));
        assert_eq!(parse_request("EXPIRE"), Ok(Request::Expire));
        assert!(parse_request("EXPIRE now").is_err());
        assert!(parse_request("STATS verbose").is_err());
        assert!(parse_request("METRICS 0.0.4").is_err());
        assert!(parse_request("HEALTH ?").is_err());
        assert!(parse_request("QUIT QUIT").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("BOGUS 1").is_err());
    }

    #[test]
    fn parses_register_and_unregister() {
        let v = ValueId::new;
        assert_eq!(
            parse_request("REGISTER 9 0>1,1>2;-;3>0"),
            Ok(Request::Register {
                user: UserId::new(9),
                rows: vec![vec![(v(0), v(1)), (v(1), v(2))], vec![], vec![(v(3), v(0))],],
            })
        );
        // Display prefix, empty rows and whitespace are all accepted.
        assert_eq!(
            parse_request("register c3 ;;"),
            Ok(Request::Register {
                user: UserId::new(3),
                rows: vec![vec![], vec![], vec![]],
            })
        );
        assert_eq!(
            parse_request("UNREGISTER c7"),
            Ok(Request::Unregister(UserId::new(7)))
        );
        assert_eq!(
            parse_request("unregister 7"),
            Ok(Request::Unregister(UserId::new(7)))
        );
    }

    #[test]
    fn parses_update_like_register() {
        let v = ValueId::new;
        assert_eq!(
            parse_request("UPDATE 9 0>1,1>2;-;3>0"),
            Ok(Request::Update {
                user: UserId::new(9),
                rows: vec![vec![(v(0), v(1)), (v(1), v(2))], vec![], vec![(v(3), v(0))],],
            })
        );
        assert_eq!(
            parse_request("update c3 ;;"),
            Ok(Request::Update {
                user: UserId::new(3),
                rows: vec![vec![], vec![], vec![]],
            })
        );
    }

    #[test]
    fn rejects_malformed_register_lines() {
        for line in [
            "REGISTER",          // no arguments at all
            "REGISTER 5",        // user but no rows
            "REGISTER x 0>1",    // bad user id
            "REGISTER 5 0>1,2",  // tuple without '>'
            "REGISTER 5 a>b",    // non-numeric values
            "REGISTER 5 0>1,>2", // missing left value
            "UPDATE",            // no arguments at all
            "UPDATE 5",          // user but no rows
            "UPDATE x 0>1",      // bad user id
            "UPDATE 5 0>1,2",    // tuple without '>'
            "UPDATE 5 a>b",      // non-numeric values
            "UNREGISTER",        // missing id
            "UNREGISTER soon",   // bad id
        ] {
            assert!(parse_request(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn parses_subscribe_unsubscribe_and_hello() {
        assert_eq!(
            parse_request("SUBSCRIBE 4"),
            Ok(Request::Subscribe(UserId::new(4)))
        );
        assert_eq!(
            parse_request("subscribe c4"),
            Ok(Request::Subscribe(UserId::new(4)))
        );
        assert_eq!(
            parse_request("UNSUBSCRIBE c9"),
            Ok(Request::Unsubscribe(UserId::new(9)))
        );
        assert!(parse_request("SUBSCRIBE").is_err());
        assert!(parse_request("UNSUBSCRIBE x").is_err());
        assert_eq!(parse_request("HELLO"), Ok(Request::Hello(vec![])));
        assert_eq!(
            parse_request("hello frame"),
            Ok(Request::Hello(vec!["frame".to_owned()]))
        );
        assert_eq!(
            parse_request("HELLO text v2"),
            Ok(Request::Hello(vec!["text".to_owned(), "v2".to_owned()]))
        );
    }

    #[test]
    fn parses_internal_cluster_verbs() {
        assert_eq!(
            parse_request("EXPORT c5"),
            Ok(Request::Export(UserId::new(5)))
        );
        assert_eq!(
            parse_request("export 5"),
            Ok(Request::Export(UserId::new(5)))
        );
        assert!(parse_request("EXPORT").is_err());
        assert!(parse_request("EXPORT x").is_err());

        assert_eq!(
            parse_request("SEQ 42 INGEST 1,2"),
            Ok(Request::Sequenced {
                seq: 42,
                inner: Box::new(Request::Ingest(vec![vec![
                    ValueId::new(1),
                    ValueId::new(2)
                ]])),
            })
        );
        // The wrapped line goes through the full parser, prefix forms and all.
        assert_eq!(
            parse_request("seq 0 frontier c3"),
            Ok(Request::Sequenced {
                seq: 0,
                inner: Box::new(Request::Frontier(UserId::new(3))),
            })
        );
        assert!(parse_request("SEQ").is_err());
        assert!(parse_request("SEQ 5").is_err());
        assert!(parse_request("SEQ x INGEST 1").is_err());
        assert!(parse_request("SEQ 5 BOGUS").is_err());
        assert!(
            parse_request("SEQ 5 SEQ 6 INGEST 1").is_err(),
            "nested SEQ must be rejected"
        );
    }

    #[test]
    fn formats_id_lists() {
        assert_eq!(format_users(&[UserId::new(1), UserId::new(9)]), "1,9");
        assert_eq!(format_users(&[]), "");
        assert_eq!(format_objects(&[ObjectId::new(4)]), "4");
    }
}
