//! # pm-engine
//!
//! A production-shaped serving layer on top of the single-threaded monitors
//! of `pm-core`.
//!
//! The paper's headline claim (Sultana & Li, EDBT 2018) is scalability to
//! *many users*: the per-arrival work of every monitor is a sum of
//! independent per-user (or per-cluster) frontier updates. This crate
//! exploits exactly that independence:
//!
//! * [`ShardedEngine`] hash-partitions the user population across `N` worker
//!   threads. Every shard owns a complete [`pm_core::ContinuousMonitor`] of
//!   any backend ([`BackendSpec`]) restricted to its own users, receives
//!   every arriving object (objects are broadcast, users are partitioned),
//!   and reports the target users it is responsible for. The engine fans the
//!   per-shard target-user sets back into one [`pm_core::Arrival`] per
//!   object, in exactly the order and encoding the single-threaded monitors
//!   produce. For the exact backends (`Baseline`, `BaselineSw`, append-only
//!   `FilterThenVerify`) sharding is an implementation detail, never a
//!   semantic one; the approximate / sliding-window FilterThenVerify
//!   backends cluster per shard, so their approximation (but not their
//!   per-user exact-backend envelope) depends on the partition — see
//!   [`ShardedEngine`].
//! * Ingestion is batched and backpressured: shard inboxes are bounded
//!   [`std::sync::mpsc::sync_channel`]s, so a producer that outruns the
//!   shards blocks instead of exhausting memory.
//! * User membership is **dynamic**: [`ShardedEngine::register`] /
//!   [`ShardedEngine::unregister`] route a membership change to the owning
//!   shard, which compiles the preference, joins (or repairs) the
//!   best-fitting cluster for the FilterThenVerify backends, and backfills
//!   the user's frontier from the alive objects — no shard rebuild, no
//!   stream pause. Registrations are ordered with batches, so no arrival is
//!   dropped or duplicated around a membership change.
//! * [`EngineSnapshot`] rolls the per-shard [`pm_core::MonitorStats`] up
//!   into engine-level metrics: arrivals/sec, per-shard queue depths and
//!   user-partition skew.
//! * [`server`] exposes the engine over TCP (`INGEST`, `EXPIRE`, `QUERY`,
//!   `FRONTIER`, `REGISTER`, `UPDATE`, `UNREGISTER`, `SUBSCRIBE`,
//!   `UNSUBSCRIBE`, `HELLO`, `STATS`, `METRICS`, `HEALTH`), served by the
//!   `pm-server` binary. Verb handlers return a typed [`response::Response`]
//!   with two negotiated wire renderings — newline-delimited text lines and
//!   length-prefixed binary frames.
//! * [`reactor`] drives every connection — request/response *and* the
//!   `SUBSCRIBE` event streams — from one readiness-reactor thread over
//!   nonblocking sockets (via `pm-reactor`), with bounded per-connection
//!   outboxes and `ERR lagged` eviction as backpressure.
//! * [`obs`] wires the `pm-obs` observability layer through every one of
//!   those paths: per-verb request counters and latency histograms, a
//!   per-stage split of the ingest pipeline (parse, ordering-lock hold,
//!   shard queue wait, shard apply, fan-in), monitor-level timers, and the
//!   `METRICS` verb's Prometheus text-format exposition.
//!
//! Everything is `std`-only: threads and channels, no async runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod durability;
pub mod engine;
pub mod metrics;
pub mod obs;
pub mod protocol;
pub mod reactor;
pub mod response;
pub mod server;
mod shard;

pub use backend::BackendSpec;
pub use durability::{DurabilityConfig, RecoveryReport};
pub use engine::{
    shard_of, BatchTicket, DurableEngineState, EngineConfig, IngestTiming, ShardedEngine,
};
pub use metrics::{EngineSnapshot, ShardSnapshot};
pub use obs::{EngineMetrics, Verb};
pub use pm_core::HistoryMode;
pub use protocol::{parse_request, Request};
pub use reactor::{
    serve_with, serve_with_signal, shutdown_pair, ReactorConfig, Shutdown, ShutdownSignal,
};
pub use response::{render_frame, render_text, Response, WireMode};
pub use server::{EngineService, ServerConfig};
pub use shard::BoxedMonitor;
