//! TCP serving layer: an [`EngineService`] wraps a [`ShardedEngine`] with
//! object-id assignment and a bounded arrival history, and [`serve`]
//! (implemented by [`crate::reactor`]) exposes it over a [`TcpListener`]
//! with a single readiness-reactor thread driving every connection.

use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use pm_core::Arrival;
use pm_model::{AttrId, Object, ObjectId, UserId, ValueId};
use pm_porder::Preference;
use pm_wal::{write_snapshot, EngineState, WalRecord};

use crate::backend::BackendSpec;
use crate::durability::Durability;
use crate::engine::{shard_of, ShardedEngine};
use crate::obs::{EngineMetrics, Verb};
use crate::protocol::{parse_request, Request};
use crate::reactor::ReactorConfig;
use crate::response::{render_text, Response, WireMode};

/// Configuration of the serving layer (see `pm-server --help`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// How many recently ingested objects `QUERY` can look up.
    pub history: usize,
    /// Ingest batches slower than this are logged at `warn` level with
    /// their stage breakdown (and counted in `pm_slow_ops_total`). `None`
    /// disables the slow-op log.
    pub slow_op: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            history: 4096,
            slow_op: Some(Duration::from_millis(100)),
        }
    }
}

/// Object-id assignment and recent-arrival history, serialized so that ids
/// are assigned in exactly the order batches reach the engine.
struct IngestState {
    next_id: u64,
    order: VecDeque<ObjectId>,
    targets: HashMap<ObjectId, Vec<UserId>>,
}

/// A sharded engine plus the session state the wire protocol needs. Shared
/// across connection threads behind an [`Arc`].
pub struct EngineService {
    engine: ShardedEngine,
    backend: BackendSpec,
    arity: usize,
    history: usize,
    ingest: Mutex<IngestState>,
    /// The engine's metric bundle, shared so the serving layer records its
    /// per-verb request metrics into the same registry `METRICS` renders.
    /// `None` when the engine was built without metrics.
    metrics: Option<Arc<EngineMetrics>>,
    /// Slow-op threshold (see [`ServerConfig::slow_op`]).
    slow_op: Option<Duration>,
    /// The attached durability runtime (open WAL + snapshot scheduling);
    /// `None` until `attach_durability`, i.e. when the server runs without
    /// `--wal-dir`.
    durability: Mutex<Option<Arc<Durability>>>,
}

/// Locks the ingest state, recovering from poisoning: one connection
/// thread dying mid-call must not take the whole service down with
/// `PoisonError` panics. The state is monotonic (id counter + bounded
/// history), so it stays usable even if a holder panicked between writes.
fn lock_ingest(mutex: &Mutex<IngestState>) -> MutexGuard<'_, IngestState> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Locks the durability slot with the same poison-recovery policy as
/// [`lock_ingest`]: the slot only ever holds an [`Arc`] swap, so a holder
/// dying mid-clone cannot leave it inconsistent.
fn lock_durability(
    mutex: &Mutex<Option<Arc<Durability>>>,
) -> MutexGuard<'_, Option<Arc<Durability>>> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EngineService {
    /// Wraps `engine`. `arity` is the number of attributes every ingested
    /// object must carry; `history` bounds how many recent arrivals `QUERY`
    /// can see.
    pub fn new(engine: ShardedEngine, backend: BackendSpec, arity: usize, history: usize) -> Self {
        let metrics = engine.metrics().map(Arc::clone);
        Self {
            engine,
            backend,
            arity,
            history: history.max(1),
            ingest: Mutex::new(IngestState {
                next_id: 0,
                order: VecDeque::new(),
                targets: HashMap::new(),
            }),
            metrics,
            slow_op: ServerConfig::default().slow_op,
            durability: Mutex::new(None),
        }
    }

    /// Overrides the slow-op threshold (`None` disables the slow-op log).
    pub fn with_slow_op(mut self, slow_op: Option<Duration>) -> Self {
        self.slow_op = slow_op;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Ingests value rows: assigns consecutive object ids (arrival
    /// timestamps), processes the batch, records the target sets in the
    /// history, and returns the arrivals.
    ///
    /// The ingest lock spans id assignment *and* engine submission so that
    /// concurrent connections cannot ingest ids out of arrival order — but
    /// it is released before the results are awaited, so one connection's
    /// batch is processed by the shards while another connection already
    /// assigns and enqueues the next one.
    pub fn ingest(&self, rows: Vec<Vec<ValueId>>) -> Result<Vec<Arrival>, String> {
        self.ingest_fenced(rows, None)
    }

    /// [`Self::ingest`] with an optional sequence fence: when `fence` is
    /// `Some(seq)`, the batch is refused unless the service's next object
    /// id equals `seq`. The check happens under the ingest lock — the same
    /// critical section that assigns ids — so a replicated batch either
    /// lands at exactly the announced position or not at all. Backs the
    /// internal `SEQ` verb a cluster coordinator uses to keep every node's
    /// object stream identical.
    pub fn ingest_fenced(
        &self,
        rows: Vec<Vec<ValueId>>,
        fence: Option<u64>,
    ) -> Result<Vec<Arrival>, String> {
        for row in &rows {
            if row.len() != self.arity {
                return Err(format!(
                    "object has {} values, schema has {} attributes",
                    row.len(),
                    self.arity
                ));
            }
        }
        let ticket = {
            let mut state = lock_ingest(&self.ingest);
            if let Some(seq) = fence {
                if state.next_id != seq {
                    return Err(format!(
                        "seq mismatch: node is at {}, batch is fenced to {seq}",
                        state.next_id
                    ));
                }
            }
            let objects: Vec<Object> = rows
                .into_iter()
                .map(|values| {
                    let id = ObjectId::new(state.next_id);
                    state.next_id += 1;
                    Object::new(id, values)
                })
                .collect();
            self.engine.submit_batch(objects)
        };
        let (arrivals, timing) = ticket.wait_timed();
        if let Some(threshold) = self.slow_op {
            if timing.total >= threshold {
                if let Some(metrics) = &self.metrics {
                    metrics.slow_ops.inc();
                }
                pm_obs::warn!(
                    "pm_engine::server",
                    "slow ingest batch",
                    objects = arrivals.len(),
                    total_us = timing.total.as_micros(),
                    lock_hold_us = timing.lock_hold.as_micros(),
                    fan_in_us = timing.fan_in.as_micros(),
                    threshold_us = threshold.as_micros(),
                );
            }
        }
        // Concurrent batches may record their history slightly out of id
        // order; the eviction bound still holds and each object is recorded
        // exactly once.
        self.record_history(&arrivals);
        Ok(arrivals)
    }

    /// Records processed arrivals in the bounded `QUERY` cache.
    fn record_history(&self, arrivals: &[Arrival]) {
        let mut state = lock_ingest(&self.ingest);
        for arrival in arrivals {
            state.order.push_back(arrival.object);
            state
                .targets
                .insert(arrival.object, arrival.target_users.clone());
            while state.order.len() > self.history {
                if let Some(evicted) = state.order.pop_front() {
                    state.targets.remove(&evicted);
                }
            }
        }
    }

    /// The recorded target users of a recently ingested object.
    pub fn lookup(&self, object: ObjectId) -> Option<Vec<UserId>> {
        let state = lock_ingest(&self.ingest);
        state.targets.get(&object).cloned()
    }

    /// The service's applied position: the id the next ingested object
    /// will be assigned. Since ids are assigned consecutively from 0, this
    /// equals the number of objects ever applied — the value the `HELLO
    /// node` handshake reports so a coordinator can fence backlog replay.
    pub fn ingest_next_id(&self) -> u64 {
        lock_ingest(&self.ingest).next_id
    }

    /// Seeds the ingest bookkeeping from a restored snapshot: the next
    /// object id to assign and the `QUERY` cache contents.
    pub(crate) fn seed_ingest(
        &self,
        next_id: u64,
        order: Vec<ObjectId>,
        targets: Vec<(ObjectId, Vec<UserId>)>,
    ) {
        let mut state = lock_ingest(&self.ingest);
        state.next_id = next_id;
        state.order = order.into();
        state.targets = targets.into_iter().collect();
    }

    /// Installs the durability runtime: attaches the WAL to the engine (so
    /// every mutation is appended from here on) and arms periodic
    /// snapshots. Called once at startup, after recovery replay — replayed
    /// mutations must not be re-appended.
    pub(crate) fn attach_durability(&self, durability: Durability) {
        self.engine.set_wal(Arc::clone(&durability.wal));
        *lock_durability(&self.durability) = Some(Arc::new(durability));
    }

    /// Applies one recovered WAL record through the ordinary serving
    /// paths. Ingest batches carry their originally assigned object ids,
    /// so replay re-mints the identical arrival stream (and advances the
    /// id counter past them); churn records go straight to the engine —
    /// their preferences were validated before they were ever logged.
    pub(crate) fn replay_record(&self, record: WalRecord) -> Result<(), String> {
        match record {
            WalRecord::IngestBatch { objects } => {
                if objects.is_empty() {
                    return Ok(());
                }
                let ticket = {
                    let mut state = lock_ingest(&self.ingest);
                    if let Some(last) = objects.last() {
                        state.next_id = state.next_id.max(last.id().raw() + 1);
                    }
                    self.engine.submit_batch(objects)
                };
                let (arrivals, _) = ticket.wait_timed();
                self.record_history(&arrivals);
                Ok(())
            }
            WalRecord::Register { user, preference } => self.engine.register(user, preference),
            WalRecord::Update { user, preference } => self.engine.update(user, preference),
            WalRecord::Unregister { user } => self.engine.unregister(user),
        }
    }

    /// Writes a snapshot now: captures a consistent cut (the ingest lock
    /// freezes id assignment while [`ShardedEngine::export_durable`] takes
    /// its shard-ordered cut), syncs the WAL, writes the snapshot file
    /// durably, and prunes log segments the snapshot fully covers. Returns
    /// the covered LSN. Backs the `SNAPSHOT` wire verb.
    pub fn snapshot_now(&self) -> Result<u64, String> {
        let Some(durability) = lock_durability(&self.durability).clone() else {
            return Err("durability is disabled (no --wal-dir)".to_owned());
        };
        let state = {
            let ingest = lock_ingest(&self.ingest);
            let export = self.engine.export_durable();
            let query_targets = ingest
                .order
                .iter()
                .map(|id| (*id, ingest.targets.get(id).cloned().unwrap_or_default()))
                .collect();
            EngineState {
                backend: self.backend.to_string(),
                shards: self.engine.num_shards() as u32,
                arity: self.arity as u32,
                last_lsn: export.last_lsn,
                next_id: ingest.next_id,
                ingested: export.ingested,
                registrations: export.registrations,
                unregistrations: export.unregistrations,
                updates: export.updates,
                members: export.members,
                monitors: export.monitors,
                query_order: ingest.order.iter().copied().collect(),
                query_targets,
            }
        };
        durability
            .wal
            .sync()
            .map_err(|e| format!("wal sync failed: {e}"))?;
        write_snapshot(&durability.dir, &state)
            .map_err(|e| format!("snapshot write failed: {e}"))?;
        if let Err(e) = durability.wal.prune_up_to(state.last_lsn) {
            // The snapshot is durable; stale segments only cost disk.
            pm_obs::warn!("pm_engine::server", "WAL prune failed", error = e);
        }
        durability
            .last_snapshot_lsn
            .store(state.last_lsn, Ordering::Relaxed);
        let written = durability.snapshots.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_snapshot(written, state.last_lsn);
        }
        Ok(state.last_lsn)
    }

    /// Snapshot bookkeeping for `pm_wal_*` gauges: `(snapshots written,
    /// LSN covered by the latest)`; `None` without durability.
    pub fn snapshot_stats(&self) -> Option<(u64, u64)> {
        let durability = lock_durability(&self.durability).clone()?;
        Some((
            durability.snapshots.load(Ordering::Relaxed),
            durability.last_snapshot_lsn.load(Ordering::Relaxed),
        ))
    }

    /// Writes a periodic snapshot if enough WAL records accumulated since
    /// the last one. Failures are logged, never fatal: the WAL alone still
    /// recovers, it just replays a longer tail.
    fn maybe_snapshot(&self) {
        let Some(durability) = lock_durability(&self.durability).clone() else {
            return;
        };
        if durability.snapshot_every == 0 {
            return;
        }
        let covered = durability.last_snapshot_lsn.load(Ordering::Relaxed);
        if durability.wal.next_lsn().saturating_sub(covered) < durability.snapshot_every {
            return;
        }
        if let Err(e) = self.snapshot_now() {
            pm_obs::warn!("pm_engine::server", "periodic snapshot failed", error = e);
        }
    }

    /// Validates wire-format preference rows against the schema arity and
    /// the strict-partial-order laws, building the preference they denote.
    /// Shared by `REGISTER` and `UPDATE`, which accept the same payload.
    fn preference_from_rows(
        &self,
        rows: Vec<Vec<(ValueId, ValueId)>>,
    ) -> Result<Preference, String> {
        if rows.len() != self.arity {
            return Err(format!(
                "preference has {} attribute rows, schema has {} attributes",
                rows.len(),
                self.arity
            ));
        }
        let mut preference = Preference::new(self.arity);
        for (attr, row) in rows.into_iter().enumerate() {
            let attr = AttrId::from(attr);
            for (x, y) in row {
                preference
                    .relation_mut(attr)
                    .insert(x, y)
                    .map_err(|e| format!("non-canonical preference row for {attr}: {e}"))?;
            }
        }
        Ok(preference)
    }

    /// Registers a user from wire-format preference rows: validates the row
    /// count against the schema arity and that every row stays a strict
    /// partial order, then routes the registration to the owning shard.
    /// Returns that shard's index.
    pub fn register(
        &self,
        user: UserId,
        rows: Vec<Vec<(ValueId, ValueId)>>,
    ) -> Result<usize, String> {
        let preference = self.preference_from_rows(rows)?;
        self.engine.register(user, preference)?;
        Ok(shard_of(user, self.engine.num_shards()))
    }

    /// Replaces a registered user's preference in place from wire-format
    /// rows (same validation as [`Self::register`]): the user keeps its
    /// global and shard-local ids, its frontier is repaired by replay and
    /// its cluster by diffing the old and new relations. Returns the owning
    /// shard's index.
    pub fn update(
        &self,
        user: UserId,
        rows: Vec<Vec<(ValueId, ValueId)>>,
    ) -> Result<usize, String> {
        let preference = self.preference_from_rows(rows)?;
        self.engine.update(user, preference)?;
        Ok(shard_of(user, self.engine.num_shards()))
    }

    /// Handles one parsed request, returning the typed [`Response`] a wire
    /// renderer (or the reactor's event fan-out) consumes. Records the
    /// per-verb request counter and latency histogram when the engine
    /// carries metrics.
    pub fn handle(&self, request: Request) -> Response {
        let verb = Verb::of(&request);
        let start = Instant::now();
        let response = self.handle_inner(request);
        if let Some(metrics) = &self.metrics {
            if let Some(verb) = verb {
                metrics.record_request(verb, start.elapsed());
            }
            if response.is_err() {
                metrics.record_error();
            }
        }
        // Mutating verbs advance the WAL; check the periodic-snapshot
        // schedule after they succeed.
        if !response.is_err()
            && matches!(
                verb,
                Some(Verb::Ingest | Verb::Register | Verb::Update | Verb::Unregister)
            )
        {
            self.maybe_snapshot();
        }
        response
    }

    fn handle_inner(&self, request: Request) -> Response {
        match request {
            Request::Ingest(rows) => match self.ingest(rows) {
                Ok(arrivals) => Response::Ingested(arrivals),
                Err(e) => Response::Err(e),
            },
            Request::Expire => Response::Expired {
                expirations: self.engine.stats().expirations,
                sliding: self.backend.is_sliding(),
            },
            Request::Query(object) => match self.lookup(object) {
                Some(users) => Response::Query { object, users },
                None => Response::Err(format!(
                    "object {} not in the last {} arrivals",
                    object.raw(),
                    self.history
                )),
            },
            Request::Frontier(user) => {
                if !self.engine.is_registered(user) {
                    Response::Err(format!("unknown user {}", user.raw()))
                } else {
                    Response::Frontier {
                        user,
                        objects: self.engine.frontier(user),
                    }
                }
            }
            Request::Register { user, rows } => match self.register(user, rows) {
                Ok(shard) => Response::Registered { user, shard },
                Err(e) => Response::Err(e),
            },
            Request::Update { user, rows } => match self.update(user, rows) {
                Ok(shard) => Response::Updated { user, shard },
                Err(e) => Response::Err(e),
            },
            Request::Unregister(user) => match self.engine.unregister(user) {
                Ok(()) => Response::Unregistered(user),
                Err(e) => Response::Err(e),
            },
            Request::Subscribe(user) => {
                if !self.engine.is_registered(user) {
                    Response::Err(format!("unknown user {}", user.raw()))
                } else {
                    // Snapshot and subscription registration are atomic in
                    // the single-threaded reactor: no delta between them
                    // can be missed by the subscriber.
                    Response::Subscribed {
                        user,
                        snapshot: self.engine.frontier(user),
                    }
                }
            }
            // The reactor owns per-connection subscription state and
            // rejects an UNSUBSCRIBE without a matching subscription
            // before it ever reaches the service.
            Request::Unsubscribe(user) => Response::Unsubscribed(user),
            Request::Hello(capabilities) => self.hello(&capabilities),
            Request::Snapshot => match self.snapshot_now() {
                Ok(lsn) => Response::Snapshot { lsn },
                Err(e) => Response::Err(e),
            },
            Request::Stats => Response::Stats(self.engine.snapshot().to_string()),
            Request::Metrics => match self.engine.render_metrics() {
                Some(body) => Response::Metrics(body),
                None => Response::Err("metrics are disabled on this engine".to_owned()),
            },
            Request::Health => Response::Health {
                backend: self.backend.to_string(),
                shards: self.engine.num_shards(),
                users: self.engine.num_users(),
                uptime_ms: self.engine.snapshot().uptime.as_millis(),
            },
            Request::Quit => Response::Bye,
            Request::Export(user) => match self.engine.preference_of(user) {
                Some(preference) => Response::Exported {
                    user,
                    rows: preference_rows(&preference),
                },
                None => Response::Err(format!("user {} is not registered", user.raw())),
            },
            Request::Sequenced { seq, inner } => match *inner {
                Request::Ingest(rows) => match self.ingest_fenced(rows, Some(seq)) {
                    Ok(arrivals) => Response::Ingested(arrivals),
                    Err(e) => Response::Err(e),
                },
                other => Response::Err(format!("SEQ wraps only INGEST, got {other:?}")),
            },
        }
    }

    /// Negotiates `HELLO` capabilities: `text` and `frame` pick the wire
    /// mode (the last one wins; a bare `HELLO` means `text`), `node` asks
    /// for the node-mode handshake (the same identity plus the applied
    /// position a coordinator needs to fence backlog replay), anything
    /// else is an error that leaves the connection and its current mode
    /// untouched.
    fn hello(&self, capabilities: &[String]) -> Response {
        let mut proto = WireMode::Text;
        let mut node = false;
        for capability in capabilities {
            match capability.to_ascii_lowercase().as_str() {
                "text" => proto = WireMode::Text,
                "frame" => proto = WireMode::Frame,
                "node" => node = true,
                other => {
                    return Response::Err(format!(
                        "unknown capability `{other}` (expected text, frame or node)"
                    ))
                }
            }
        }
        if node {
            return Response::NodeHello {
                proto,
                version: env!("CARGO_PKG_VERSION").to_owned(),
                backend: self.backend.to_string(),
                shards: self.engine.num_shards(),
                arity: self.arity,
                next_id: self.ingest_next_id(),
            };
        }
        Response::Hello {
            proto,
            version: env!("CARGO_PKG_VERSION").to_owned(),
            backend: self.backend.to_string(),
            shards: self.engine.num_shards(),
            arity: self.arity,
        }
    }

    /// Handles one parsed request and renders the response as its text
    /// line (without the trailing newline) — the typed path with the
    /// classic string surface.
    pub fn respond(&self, request: Request) -> String {
        render_text(&self.handle(request))
    }

    /// Parses one request line, recording the ingest `parse` stage
    /// histogram and counting unparseable lines as request errors.
    pub(crate) fn parse_line(&self, line: &str) -> Result<Request, String> {
        let start = Instant::now();
        let parsed = parse_request(line);
        if let Some(metrics) = &self.metrics {
            if matches!(parsed, Ok(Request::Ingest(_))) {
                metrics.stage_parse.record_duration(start.elapsed());
            }
            if parsed.is_err() {
                metrics.record_error();
            }
        }
        parsed
    }

    /// Parses and handles one request line.
    pub fn respond_line(&self, line: &str) -> String {
        match self.parse_line(line) {
            Ok(request) => self.respond(request),
            Err(e) => format!("ERR {e}"),
        }
    }

    /// The engine's metric bundle, for the reactor's connection gauges.
    pub(crate) fn metrics_bundle(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }
}

/// Renders a preference as REGISTER-syntax rows: one `;`-separated row
/// per attribute, each a comma-separated `x>y` list sorted by `(x, y)`
/// (`-` for an attribute without preferences). The output parses back to
/// an equal preference — relations store their transitive closure, and
/// REGISTER re-closes whatever generating set it receives — so a
/// coordinator can migrate a user by replaying the exported rows
/// verbatim on another node.
fn preference_rows(preference: &Preference) -> String {
    let rows: Vec<String> = preference
        .relations()
        .map(|(_, relation)| {
            let mut pairs: Vec<(u32, u32)> =
                relation.pairs().map(|(x, y)| (x.raw(), y.raw())).collect();
            if pairs.is_empty() {
                return "-".to_owned();
            }
            pairs.sort_unstable();
            pairs
                .iter()
                .map(|(x, y)| format!("{x}>{y}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    rows.join(";")
}

/// Serves the listener with a single-threaded readiness reactor (see
/// [`crate::reactor`]): every connection — request/response *and*
/// subscription pushes — is driven by one event-loop thread over
/// nonblocking sockets, so idle subscribers cost a socket and a few hundred
/// bytes, not a thread.
///
/// Failure policy (audited): parse failures answer `ERR` and keep serving;
/// read/write failures end *that* connection only. Accept failures are
/// logged and skipped — transient conditions (`ECONNABORTED`, `EMFILE`
/// after a burst, a peer resetting mid-handshake) must not take the whole
/// server down; only a persistently failing listener ends the loop, after a
/// bounded number of consecutive failures.
pub fn serve(listener: TcpListener, service: Arc<EngineService>) -> std::io::Result<()> {
    crate::reactor::serve_with(listener, service, ReactorConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pm_porder::Preference;
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    fn service(shards: usize, backend: &str) -> EngineService {
        // Three users with simple chain preferences over 2 attributes.
        let prefs: Vec<Preference> = (0..3)
            .map(|u| {
                let mut p = Preference::new(2);
                for attr in 0..2u32 {
                    p.prefer(
                        pm_model::AttrId::new(attr),
                        ValueId::new(u as u32 % 3),
                        ValueId::new((u as u32 + 1) % 3),
                    );
                }
                p
            })
            .collect();
        let spec = BackendSpec::parse(backend).unwrap();
        let engine = ShardedEngine::new(prefs, &EngineConfig::new(shards), &spec);
        EngineService::new(engine, spec, 2, 8)
    }

    #[test]
    fn ingest_query_frontier_stats_health_round_trip() {
        let svc = service(2, "baseline");
        let r = svc.respond_line("INGEST 0,1;1,2");
        assert!(r.starts_with("OK INGESTED 2 0:"), "{r}");
        assert!(r.contains(";1:"), "{r}");
        let q = svc.respond_line("QUERY 0");
        assert!(q.starts_with("OK QUERY 0 "), "{q}");
        let f = svc.respond_line("FRONTIER 1");
        assert!(f.starts_with("OK FRONTIER 1 "), "{f}");
        let s = svc.respond_line("STATS");
        assert!(s.contains("ingested=2"), "{s}");
        assert!(s.contains("shards=2"), "{s}");
        let h = svc.respond_line("HEALTH");
        assert!(h.contains("backend=baseline"), "{h}");
        assert!(h.contains("users=3"), "{h}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let svc = service(1, "baseline");
        assert!(svc
            .respond_line("INGEST 1,2,3")
            .starts_with("ERR object has 3 values"));
        assert!(svc.respond_line("QUERY 99").starts_with("ERR object 99"));
        assert!(svc
            .respond_line("FRONTIER 99")
            .starts_with("ERR unknown user"));
        assert!(svc.respond_line("GARBAGE").starts_with("ERR unknown verb"));
        // The service still works afterwards.
        assert!(svc.respond_line("INGEST 0,0").starts_with("OK INGESTED 1"));
    }

    #[test]
    fn history_is_bounded() {
        let svc = service(1, "baseline");
        for i in 0..12 {
            let r = svc.respond_line(&format!("INGEST {},{}", i % 3, (i + 1) % 3));
            assert!(r.starts_with("OK"), "{r}");
        }
        // History capacity is 8: object 0 has been evicted, recent ones kept.
        assert!(svc.respond_line("QUERY 0").starts_with("ERR"));
        assert!(svc.respond_line("QUERY 11").starts_with("OK"));
    }

    #[test]
    fn register_unregister_round_trip() {
        let svc = service(2, "baseline");
        // Register user 9 with a chain preference on both attributes.
        let r = svc.respond_line("REGISTER 9 0>1,1>2;2>0");
        assert!(r.starts_with("OK REGISTERED 9 shard="), "{r}");
        assert!(svc.respond_line("HEALTH").contains("users=4"));
        // The new user participates in ingestion and frontier queries.
        assert!(svc.respond_line("INGEST 0,2").starts_with("OK INGESTED 1"));
        assert!(svc
            .respond_line("FRONTIER 9")
            .starts_with("OK FRONTIER 9 0"));
        let stats = svc.respond_line("STATS");
        assert!(stats.contains("users=4"), "{stats}");
        assert!(stats.contains("shard_users="), "{stats}");
        // Unregister and observe the user disappear.
        assert_eq!(svc.respond_line("UNREGISTER 9"), "OK UNREGISTERED 9");
        assert!(svc
            .respond_line("FRONTIER 9")
            .starts_with("ERR unknown user"));
        assert!(svc.respond_line("HEALTH").contains("users=3"));
    }

    #[test]
    fn register_validates_arity_and_partial_order() {
        let svc = service(1, "baseline");
        // Wrong row count (schema has 2 attributes).
        assert!(svc
            .respond_line("REGISTER 9 0>1")
            .starts_with("ERR preference has 1 attribute rows"));
        // Reflexive and cyclic rows are non-canonical.
        assert!(svc
            .respond_line("REGISTER 9 1>1;-")
            .starts_with("ERR non-canonical preference row"));
        assert!(svc
            .respond_line("REGISTER 9 0>1,1>0;-")
            .starts_with("ERR non-canonical preference row"));
        // Duplicate user ids are rejected.
        assert!(svc
            .respond_line("REGISTER 0 0>1;-")
            .starts_with("ERR user 0 is already registered"));
        // Unknown unregister is an error, not a panic.
        assert!(svc
            .respond_line("UNREGISTER 99")
            .starts_with("ERR user 99 is not registered"));
        // None of that broke the service.
        assert!(svc.respond_line("REGISTER 9 0>1;-").starts_with("OK"));
    }

    #[test]
    fn update_round_trip_changes_results_in_place() {
        let svc = service(2, "baseline");
        // User 1 initially prefers 1 over 2 on both attributes; object (2,2)
        // then (1,1): the second object dominates the first for user 1.
        assert!(svc.respond_line("INGEST 2,2").starts_with("OK INGESTED 1"));
        // Invert the preference in place: 2 is now preferred to 1.
        let r = svc.respond_line("UPDATE 1 2>1;2>1");
        assert!(r.starts_with("OK UPDATED 1 shard="), "{r}");
        // The frontier was repaired by replay under the new preference.
        assert!(svc
            .respond_line("FRONTIER 1")
            .starts_with("OK FRONTIER 1 0"));
        // Later arrivals are judged under the new preference: (1,1) is now
        // dominated by (2,2) for user 1.
        let ingest = svc.respond_line("INGEST 1,1");
        assert!(ingest.starts_with("OK INGESTED 1"), "{ingest}");
        let q = svc.respond_line("QUERY 1");
        let targets = q.strip_prefix("OK QUERY 1 ").unwrap();
        assert!(
            !targets.split(',').any(|u| u == "1"),
            "user 1 should not be notified: {q}"
        );
        // User count is unchanged; the STATS line reports the update.
        assert!(svc.respond_line("HEALTH").contains("users=3"));
        let stats = svc.respond_line("STATS");
        assert!(stats.contains("updates=1"), "{stats}");
    }

    #[test]
    fn update_validates_like_register() {
        let svc = service(1, "baseline");
        // Unknown user, wrong arity, non-canonical rows: all ERR, never fatal.
        assert!(svc
            .respond_line("UPDATE 99 0>1;-")
            .starts_with("ERR user 99 is not registered"));
        assert!(svc
            .respond_line("UPDATE 0 0>1")
            .starts_with("ERR preference has 1 attribute rows"));
        assert!(svc
            .respond_line("UPDATE 0 1>1;-")
            .starts_with("ERR non-canonical preference row"));
        assert!(svc
            .respond_line("UPDATE 0 0>1,1>0;-")
            .starts_with("ERR non-canonical preference row"));
        // The service still works and the user is untouched.
        assert!(svc
            .respond_line("UPDATE 0 0>1;-")
            .starts_with("OK UPDATED 0"));
        assert!(svc.respond_line("FRONTIER 0").starts_with("OK FRONTIER 0"));
    }

    #[test]
    fn export_round_trips_through_register() {
        let svc = service(2, "baseline");
        let r = svc.respond_line("REGISTER 9 0>1,1>2;2>0");
        assert!(r.starts_with("OK REGISTERED 9"), "{r}");
        let e = svc.respond_line("EXPORT 9");
        // The relation stores the closure: 0>1,1>2 implies 0>2.
        assert_eq!(e, "OK EXPORTED 9 0>1,0>2,1>2;2>0");
        // Replaying the exported rows on a fresh service reproduces the
        // user exactly (same export).
        let other = service(2, "baseline");
        let rows = e.strip_prefix("OK EXPORTED 9 ").unwrap();
        assert!(other
            .respond_line(&format!("REGISTER 9 {rows}"))
            .starts_with("OK REGISTERED 9"));
        assert_eq!(other.respond_line("EXPORT 9"), e);
        // Empty rows render as `-` and unknown users answer ERR.
        assert!(svc.respond_line("REGISTER 11 -;-").starts_with("OK"));
        assert_eq!(svc.respond_line("EXPORT 11"), "OK EXPORTED 11 -;-");
        assert!(svc
            .respond_line("EXPORT 99")
            .starts_with("ERR user 99 is not registered"));
    }

    #[test]
    fn sequenced_ingest_is_fenced_to_the_applied_position() {
        let svc = service(1, "baseline");
        // The node starts at position 0; a matching fence applies.
        let r = svc.respond_line("SEQ 0 INGEST 0,1;1,2");
        assert!(r.starts_with("OK INGESTED 2 0:"), "{r}");
        // Replaying the same batch (stale fence) is refused, as is a fence
        // from the future; the applied position is untouched by either.
        assert!(svc
            .respond_line("SEQ 0 INGEST 0,1;1,2")
            .starts_with("ERR seq mismatch: node is at 2"));
        assert!(svc
            .respond_line("SEQ 5 INGEST 0,1")
            .starts_with("ERR seq mismatch: node is at 2"));
        // The next in-order batch lands at the announced position.
        assert!(svc
            .respond_line("SEQ 2 INGEST 2,0")
            .starts_with("OK INGESTED 1 2:"));
        // SEQ wraps only INGEST.
        assert!(svc
            .respond_line("SEQ 3 STATS")
            .starts_with("ERR SEQ wraps only INGEST"));
    }

    #[test]
    fn hello_node_reports_the_applied_position() {
        let svc = service(2, "baseline");
        let h = svc.respond_line("HELLO node");
        assert!(h.starts_with("OK HELLO pm-node proto=text"), "{h}");
        assert!(h.ends_with("next_id=0"), "{h}");
        svc.respond_line("INGEST 0,1;1,2");
        let h = svc.respond_line("HELLO node");
        assert!(h.ends_with("next_id=2"), "{h}");
        // The plain client handshake is unchanged.
        assert!(svc
            .respond_line("HELLO")
            .starts_with("OK HELLO pm-server proto=text"));
    }

    #[test]
    fn expire_reports_window_expirations() {
        let svc = service(2, "baseline-sw:4");
        for i in 0..10 {
            svc.respond_line(&format!("INGEST {},{}", i % 3, i % 2));
        }
        assert_eq!(svc.respond_line("EXPIRE"), "OK EXPIRED 6");
        let append_only = service(2, "baseline");
        assert!(append_only.respond_line("EXPIRE").contains("append-only"));
    }

    #[test]
    fn tcp_round_trip_over_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().unwrap();
        let svc = Arc::new(service(2, "baseline"));
        let server_svc = Arc::clone(&svc);
        std::thread::spawn(move || serve(listener, server_svc));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut ask = |req: &str| -> String {
            writer.write_all(req.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_owned()
        };
        assert!(ask("HEALTH").starts_with("OK HEALTH pm-server"));
        assert!(ask("INGEST 0,1").starts_with("OK INGESTED 1"));
        assert!(ask("STATS").contains("ingested=1"));
        assert_eq!(ask("QUIT"), "OK BYE");
    }
}
