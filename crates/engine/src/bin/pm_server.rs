//! `pm-server` — serve a sharded Pareto-frontier monitoring engine over TCP.
//!
//! ```text
//! pm-server [--addr HOST:PORT] [--shards N] [--queue BATCHES]
//!           [--backend SPEC] [--profile movie|publication]
//!           [--users N] [--interactions N] [--seed N] [--history N]
//!           [--no-metrics] [--slow-op-ms MS] [--outbox BYTES] [--log SPEC]
//!           [--wal-dir DIR] [--wal-sync always|batch|off] [--snapshot-every N]
//!           [--node]
//! ```
//!
//! The user population (preferences) is simulated with `pm-datagen`; objects
//! arrive from clients via the `INGEST` command. Try it:
//!
//! ```text
//! $ cargo run --release --bin pm-server -- --users 100 --shards 4 &
//! $ printf 'INGEST 1,2,3,4\nSTATS\nQUIT\n' | nc 127.0.0.1 7878
//! $ printf 'METRICS\nQUIT\n' | nc 127.0.0.1 7878   # Prometheus exposition
//! ```

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pm_datagen::{Dataset, DatasetProfile};
use pm_engine::{
    BackendSpec, DurabilityConfig, EngineConfig, EngineService, ReactorConfig, ServerConfig,
    ShardedEngine,
};
use pm_wal::SyncPolicy;

struct Options {
    server: ServerConfig,
    engine: EngineConfig,
    reactor: ReactorConfig,
    backend: BackendSpec,
    profile: DatasetProfile,
    users: usize,
    objects: usize,
    interactions: usize,
    seed: u64,
    wal_dir: Option<PathBuf>,
    wal_sync: SyncPolicy,
    snapshot_every: u64,
    node: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            server: ServerConfig::default(),
            engine: EngineConfig::default(),
            reactor: ReactorConfig::default(),
            backend: BackendSpec::baseline(),
            profile: DatasetProfile::movie(),
            users: 200,
            objects: 2_000,
            interactions: 60,
            seed: 42,
            wal_dir: None,
            wal_sync: SyncPolicy::Batch,
            snapshot_every: 10_000,
            node: false,
        }
    }
}

const USAGE: &str = "pm-server — sharded Pareto-frontier monitoring over TCP

USAGE:
    pm-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT     bind address           [default: 127.0.0.1:7878]
    --shards N           shard worker threads   [default: available cores]
    --queue BATCHES      per-shard inbox bound  [default: 16]
    --backend SPEC       baseline[:<H>] | ftv:<h>[:<H>] |
                         ftv-approx:<h>:<t1>:<t2>[:<H>] |
                         baseline-sw:<W> | ftv-sw:<h>:<W> |
                         ftv-approx-sw:<h>:<t1>:<t2>:<W>   [default: baseline]
                         <H> bounds the append-only backends' backfill
                         history: a number <C> truncates to the newest <C>
                         objects (REGISTER/UPDATE backfill becomes
                         best-effort), `compact` retains the skyline union
                         over every observed preference (backfill stays
                         exact for all of them; only a never-before-seen
                         preference can see a compacted-away object), and
                         `compact:<C>` adds a hard cap on top
    --profile NAME       movie | publication    [default: movie]
    --users N            simulated users        [default: 200]
    --objects N          base objects used to derive preferences [default: 2000]
    --interactions N     interactions per user  [default: 60]
    --seed N             dataset RNG seed       [default: 42]
    --history N          QUERY-able arrivals    [default: 4096]
    --no-metrics         drop the metrics bundle: METRICS answers ERR,
                         STATS reports zero latency percentiles, and even
                         the (lock-free) recording overhead is gone
    --slow-op-ms MS      warn-log ingest batches slower than MS
                         milliseconds with their stage breakdown; 0
                         disables the slow-op log  [default: 100]
    --outbox BYTES       per-connection outbox bound; a subscriber whose
                         unsent event backlog exceeds it is evicted with a
                         terminal `ERR lagged`  [default: 1048576]
    --log SPEC           log filter, same syntax as PM_LOG: a level
                         (off|error|warn|info|debug) optionally followed
                         by `,json` for JSON-lines output; overrides the
                         PM_LOG environment variable  [default: warn]
    --wal-dir DIR        enable durability: append every mutation to a
                         write-ahead log in DIR and snapshot the compact
                         engine state there; on startup, recover from the
                         newest valid snapshot plus the WAL tail. The
                         dataset flags (--users/--seed/...) must match
                         across restarts: users that predate the first
                         snapshot are rebuilt from the dataset, not the log
    --wal-sync POLICY    when the WAL fsyncs: `always` (every record),
                         `batch` (group commit, ~256 KiB), `off` (page
                         cache decides)  [default: batch]
    --snapshot-every N   snapshot after N WAL records accumulate past the
                         last snapshot; 0 = only via the SNAPSHOT verb
                         [default: 10000]
    --node               run as a pm-coord cluster node: start with an
                         empty user population (users arrive via REGISTER
                         routed by the coordinator) and accept the
                         node-internal verbs (HELLO node, SEQ, EXPORT).
                         The dataset flags still fix the schema: every
                         node of a cluster must share --profile
                         (--users/--seed only shape the simulated dataset
                         and are ignored for population)
    --help               print this help

Logs go to stderr. Scrape metrics with e.g.:
    printf 'METRICS\\nQUIT\\n' | nc 127.0.0.1 7878
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--no-metrics" {
            opts.engine.metrics = false;
            continue;
        }
        if flag == "--node" {
            opts.node = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} needs a value (see --help)"))?;
        match flag.as_str() {
            "--addr" => opts.server.addr = value,
            "--shards" => {
                let shards: usize = value.parse().map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                opts.engine.shards = shards;
            }
            "--queue" => {
                opts.engine.queue_capacity = value.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--backend" => opts.backend = BackendSpec::parse(&value)?,
            "--profile" => {
                opts.profile = match value.as_str() {
                    "movie" => DatasetProfile::movie(),
                    "publication" => DatasetProfile::publication(),
                    other => return Err(format!("unknown profile `{other}`")),
                }
            }
            "--users" => opts.users = value.parse().map_err(|e| format!("--users: {e}"))?,
            "--objects" => opts.objects = value.parse().map_err(|e| format!("--objects: {e}"))?,
            "--interactions" => {
                opts.interactions = value.parse().map_err(|e| format!("--interactions: {e}"))?
            }
            "--seed" => opts.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--history" => {
                opts.server.history = value.parse().map_err(|e| format!("--history: {e}"))?
            }
            "--slow-op-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--slow-op-ms: {e}"))?;
                opts.server.slow_op = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--outbox" => {
                let bytes: usize = value.parse().map_err(|e| format!("--outbox: {e}"))?;
                if bytes == 0 {
                    return Err("--outbox must be at least 1 byte".into());
                }
                opts.reactor.max_outbox = bytes;
            }
            "--log" => pm_obs::log::set_config_spec(&value),
            "--wal-dir" => opts.wal_dir = Some(PathBuf::from(value)),
            "--wal-sync" => opts.wal_sync = SyncPolicy::parse(&value)?,
            "--snapshot-every" => {
                opts.snapshot_every = value
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            // Usage errors go straight to stderr: the logger is leveled and
            // a typo'd flag must be visible regardless of PM_LOG.
            eprintln!("pm-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    pm_obs::info!(
        "pm_server",
        "simulating user population",
        users = opts.users,
        profile = opts.profile.name,
        seed = opts.seed,
    );
    let profile = opts
        .profile
        .clone()
        .with_users(opts.users)
        .with_objects(opts.objects)
        .with_interactions(opts.interactions);
    let dataset = Dataset::generate(&profile, opts.seed);
    let arity = dataset.dimensions();
    // A cluster node starts empty: its users arrive via REGISTER, routed
    // by the coordinator's partitioner. The dataset still fixes the
    // schema (arity) so every node agrees on the object shape.
    let genesis = if opts.node {
        Vec::new()
    } else {
        dataset.preferences
    };

    pm_obs::info!(
        "pm_server",
        "starting engine",
        shards = opts.engine.shards,
        backend = opts.backend,
        queue_capacity = opts.engine.queue_capacity,
        metrics = opts.engine.metrics,
    );
    let service = match &opts.wal_dir {
        Some(dir) => {
            let durability = DurabilityConfig {
                dir: dir.clone(),
                sync: opts.wal_sync,
                snapshot_every: opts.snapshot_every,
            };
            match pm_engine::durability::recover_or_create(
                genesis,
                &opts.engine,
                &opts.backend,
                arity,
                opts.server.history,
                &durability,
            ) {
                Ok((service, report)) => {
                    if let Some(report) = report {
                        // Load-bearing like the listen banner: recovery
                        // harnesses wait for and parse this line.
                        eprintln!("pm-server: {report}");
                    }
                    service
                }
                Err(e) => {
                    pm_obs::error!(
                        "pm_server",
                        "recovery failed",
                        dir = dir.display(),
                        error = e
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let engine = ShardedEngine::new(genesis, &opts.engine, &opts.backend);
            EngineService::new(engine, opts.backend.clone(), arity, opts.server.history)
        }
    };
    let service = Arc::new(service.with_slow_op(opts.server.slow_op));

    let listener = match TcpListener::bind(&opts.server.addr) {
        Ok(l) => l,
        Err(e) => {
            pm_obs::error!(
                "pm_server",
                "cannot bind",
                addr = opts.server.addr,
                error = e
            );
            return ExitCode::FAILURE;
        }
    };
    // The startup banner is load-bearing (scripts wait for it), so it is
    // printed unconditionally rather than behind the info level.
    eprintln!(
        "pm-server: listening on {} ({} attributes per object; \
         INGEST/EXPIRE/QUERY/FRONTIER/REGISTER/UPDATE/UNREGISTER/\
         SUBSCRIBE/UNSUBSCRIBE/HELLO/SNAPSHOT/STATS/METRICS/HEALTH/QUIT)",
        opts.server.addr, arity
    );
    if let Err(e) = pm_engine::serve_with(listener, service, opts.reactor) {
        pm_obs::error!("pm_server", "accept loop failed", error = e);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
