//! Backend selection: which `pm-core` monitor each shard runs.

use std::fmt;

use pm_cluster::{ApproxConfig, Clustering, ExactMeasure};
use pm_core::{
    BaselineMonitor, BaselineSwMonitor, FilterThenVerifyMonitor, FilterThenVerifySwMonitor,
};
use pm_porder::Preference;

use crate::shard::BoxedMonitor;

/// Which monitoring algorithm a shard runs over its slice of the user
/// population.
///
/// The FilterThenVerify variants cluster each shard's users independently
/// (Jaccard similarity on exact common preference relations, Sec. 5 of the
/// paper); clustering quality degrades gracefully as shards get smaller.
/// Append-only [`BackendSpec::FilterThenVerify`] stays exact under any
/// clustering (Lemma 4.6); the approximate and sliding-window variants
/// carry the paper's approximation error, whose exact magnitude therefore
/// depends on the per-shard clusterings (see [`crate::ShardedEngine`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// Alg. 1: per-user baseline, append-only.
    Baseline {
        /// Maximum retained history objects for REGISTER/UPDATE backfill
        /// (`None` = unlimited). Once the cap truncates, backfill is
        /// best-effort: the replayed frontier is the exact frontier of the
        /// retained suffix.
        history_limit: Option<usize>,
    },
    /// Alg. 2: FilterThenVerify with exact common preferences, append-only.
    FilterThenVerify {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// Retained-history cap (see [`BackendSpec::Baseline`]).
        history_limit: Option<usize>,
    },
    /// Sec. 6: FilterThenVerify with approximate common preferences.
    FilterThenVerifyApprox {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
        /// Retained-history cap (see [`BackendSpec::Baseline`]).
        history_limit: Option<usize>,
    },
    /// Alg. 4: per-user baseline over a sliding window of `window` objects.
    BaselineSw {
        /// Window size `W`.
        window: usize,
    },
    /// Alg. 5: sliding-window FilterThenVerify.
    FilterThenVerifySw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// Window size `W`.
        window: usize,
    },
    /// Sec. 7+6: sliding-window FilterThenVerify with approximate common
    /// preferences.
    FilterThenVerifyApproxSw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
        /// Window size `W`.
        window: usize,
    },
}

impl BackendSpec {
    /// The append-only baseline with unlimited history.
    pub fn baseline() -> Self {
        BackendSpec::Baseline {
            history_limit: None,
        }
    }

    /// Append-only FilterThenVerify with unlimited history.
    pub fn ftv(branch_cut: f64) -> Self {
        BackendSpec::FilterThenVerify {
            branch_cut,
            history_limit: None,
        }
    }

    /// Builds one shard's monitor over the given (shard-local) preferences.
    ///
    /// Every monitor constructor compiles its preferences (user-level and
    /// cluster-level virtual users alike) to the bitset form of
    /// [`pm_porder::CompiledPreference`] before the first arrival, so each
    /// shard's dominance hot path runs on word-indexed bit tests regardless
    /// of the backend chosen here. The FilterThenVerify backends are built
    /// over an incrementally maintained [`Clustering`], so the shard can
    /// serve REGISTER/UNREGISTER with dendrogram-local repair instead of a
    /// full re-clustering.
    pub fn build(&self, preferences: &[Preference]) -> BoxedMonitor {
        let prefs = preferences.to_vec();
        let clustering =
            |branch_cut: f64| Clustering::new(preferences, ExactMeasure::Jaccard, branch_cut);
        match *self {
            BackendSpec::Baseline { history_limit } => {
                Box::new(BaselineMonitor::with_history_limit(prefs, history_limit))
            }
            BackendSpec::FilterThenVerify {
                branch_cut,
                history_limit,
            } => Box::new(
                FilterThenVerifyMonitor::with_clustering(prefs, clustering(branch_cut))
                    .with_history_limit(history_limit),
            ),
            BackendSpec::FilterThenVerifyApprox {
                branch_cut,
                config,
                history_limit,
            } => Box::new(
                FilterThenVerifyMonitor::with_approx_clustering(
                    prefs,
                    clustering(branch_cut),
                    config,
                )
                .with_history_limit(history_limit),
            ),
            BackendSpec::BaselineSw { window } => Box::new(BaselineSwMonitor::new(prefs, window)),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => Box::new(
                FilterThenVerifySwMonitor::with_clustering(prefs, clustering(branch_cut), window),
            ),
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => Box::new(FilterThenVerifySwMonitor::with_approx_clustering(
                prefs,
                clustering(branch_cut),
                config,
                window,
            )),
        }
    }

    /// Whether the backend expires objects from a sliding window.
    pub fn is_sliding(&self) -> bool {
        matches!(
            self,
            BackendSpec::BaselineSw { .. }
                | BackendSpec::FilterThenVerifySw { .. }
                | BackendSpec::FilterThenVerifyApproxSw { .. }
        )
    }

    /// Parses a backend description, as accepted by `pm-server --backend`.
    /// The append-only backends accept an optional trailing history cap
    /// `C`: at most `C` objects are retained for REGISTER/UPDATE backfill
    /// (default unlimited; backfill is best-effort once the cap truncates).
    ///
    /// * `baseline[:<C>]`
    /// * `ftv:<h>[:<C>]` — e.g. `ftv:0.55` or `ftv:0.55:100000`
    /// * `ftv-approx:<h>:<theta1>:<theta2>[:<C>]`
    /// * `baseline-sw:<W>` — e.g. `baseline-sw:400`
    /// * `ftv-sw:<h>:<W>`
    /// * `ftv-approx-sw:<h>:<theta1>:<theta2>:<W>`
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let arg = |i: usize| -> Result<&str, String> {
            rest.get(i)
                .copied()
                .ok_or_else(|| format!("backend `{kind}` is missing argument {}", i + 1))
        };
        let float = |i: usize| -> Result<f64, String> {
            arg(i)?
                .parse::<f64>()
                .map_err(|e| format!("bad float in backend spec: {e}"))
        };
        let uint = |i: usize| -> Result<usize, String> {
            arg(i)?
                .parse::<usize>()
                .map_err(|e| format!("bad integer in backend spec: {e}"))
        };
        let expect_args = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "backend `{kind}` takes {n} argument(s), got {}",
                    rest.len()
                ))
            }
        };
        // The optional history cap occupies position `i` when present.
        let history_limit = |i: usize| -> Result<Option<usize>, String> {
            match rest.len() {
                n if n == i => Ok(None),
                n if n == i + 1 => Ok(Some(uint(i)?)),
                n => Err(format!(
                    "backend `{kind}` takes {i} or {} argument(s), got {n}",
                    i + 1
                )),
            }
        };
        match kind {
            "baseline" => Ok(BackendSpec::Baseline {
                history_limit: history_limit(0)?,
            }),
            "ftv" => {
                let history_limit = history_limit(1)?;
                Ok(BackendSpec::FilterThenVerify {
                    branch_cut: float(0)?,
                    history_limit,
                })
            }
            "ftv-approx" => {
                let history_limit = history_limit(3)?;
                Ok(BackendSpec::FilterThenVerifyApprox {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                    history_limit,
                })
            }
            "baseline-sw" => {
                expect_args(1)?;
                Ok(BackendSpec::BaselineSw { window: uint(0)? })
            }
            "ftv-sw" => {
                expect_args(2)?;
                Ok(BackendSpec::FilterThenVerifySw {
                    branch_cut: float(0)?,
                    window: uint(1)?,
                })
            }
            "ftv-approx-sw" => {
                expect_args(4)?;
                Ok(BackendSpec::FilterThenVerifyApproxSw {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                    window: uint(3)?,
                })
            }
            other => Err(format!(
                "unknown backend `{other}` (expected baseline, ftv, ftv-approx, baseline-sw, ftv-sw or ftv-approx-sw)"
            )),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = |limit: &Option<usize>| match limit {
            Some(limit) => format!(":{limit}"),
            None => String::new(),
        };
        match self {
            BackendSpec::Baseline { history_limit } => {
                write!(f, "baseline{}", cap(history_limit))
            }
            BackendSpec::FilterThenVerify {
                branch_cut,
                history_limit,
            } => write!(f, "ftv:{branch_cut}{}", cap(history_limit)),
            BackendSpec::FilterThenVerifyApprox {
                branch_cut,
                config,
                history_limit,
            } => write!(
                f,
                "ftv-approx:{branch_cut}:{}:{}{}",
                config.theta1,
                config.theta2,
                cap(history_limit)
            ),
            BackendSpec::BaselineSw { window } => write!(f, "baseline-sw:{window}"),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => {
                write!(f, "ftv-sw:{branch_cut}:{window}")
            }
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => write!(
                f,
                "ftv-approx-sw:{branch_cut}:{}:{}:{window}",
                config.theta1, config.theta2
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        for text in [
            "baseline",
            "baseline:100000",
            "ftv:0.55",
            "ftv:0.55:100000",
            "ftv-approx:0.55:256:0.5",
            "ftv-approx:0.55:256:0.5:100000",
            "baseline-sw:400",
            "ftv-sw:0.55:400",
            "ftv-approx-sw:0.55:256:0.5:400",
        ] {
            let spec = BackendSpec::parse(text).expect(text);
            assert_eq!(spec.to_string(), text);
            assert_eq!(BackendSpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for text in [
            "",
            "nope",
            "ftv",
            "ftv:x",
            "baseline:x",
            "baseline:1:2",
            "ftv:0.5:10:20",
            "baseline-sw",
            "baseline-sw:400:100",
            "ftv-sw:0.5",
        ] {
            assert!(BackendSpec::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn history_caps_parse_into_the_append_only_variants() {
        assert_eq!(
            BackendSpec::parse("baseline:64"),
            Ok(BackendSpec::Baseline {
                history_limit: Some(64)
            })
        );
        assert_eq!(
            BackendSpec::parse("ftv:0.5:64"),
            Ok(BackendSpec::FilterThenVerify {
                branch_cut: 0.5,
                history_limit: Some(64)
            })
        );
        assert_eq!(BackendSpec::parse("baseline"), Ok(BackendSpec::baseline()));
        assert_eq!(BackendSpec::parse("ftv:0.5"), Ok(BackendSpec::ftv(0.5)));
    }

    #[test]
    fn sliding_flag_matches_variants() {
        assert!(!BackendSpec::parse("baseline").unwrap().is_sliding());
        assert!(!BackendSpec::parse("ftv:0.5").unwrap().is_sliding());
        assert!(BackendSpec::parse("baseline-sw:10").unwrap().is_sliding());
        assert!(BackendSpec::parse("ftv-sw:0.5:10").unwrap().is_sliding());
    }

    #[test]
    fn every_backend_builds_a_monitor_over_empty_and_small_populations() {
        let prefs = vec![Preference::new(2), Preference::new(2)];
        for text in [
            "baseline",
            "ftv:0.5",
            "ftv-approx:0.5:64:0.5",
            "baseline-sw:8",
            "ftv-sw:0.5:8",
            "ftv-approx-sw:0.5:64:0.5:8",
        ] {
            let spec = BackendSpec::parse(text).unwrap();
            let monitor = spec.build(&prefs);
            assert_eq!(monitor.num_users(), 2, "{text}");
            let empty = spec.build(&[]);
            assert_eq!(empty.num_users(), 0, "{text}");
        }
    }
}
