//! Backend selection: which `pm-core` monitor each shard runs.

use std::fmt;

use pm_cluster::{ApproxConfig, Clustering, ExactMeasure};
use pm_core::{
    BaselineMonitor, BaselineSwMonitor, FilterThenVerifyMonitor, FilterThenVerifySwMonitor,
};
use pm_porder::Preference;

use crate::shard::BoxedMonitor;

/// Which monitoring algorithm a shard runs over its slice of the user
/// population.
///
/// The FilterThenVerify variants cluster each shard's users independently
/// (Jaccard similarity on exact common preference relations, Sec. 5 of the
/// paper); clustering quality degrades gracefully as shards get smaller.
/// Append-only [`BackendSpec::FilterThenVerify`] stays exact under any
/// clustering (Lemma 4.6); the approximate and sliding-window variants
/// carry the paper's approximation error, whose exact magnitude therefore
/// depends on the per-shard clusterings (see [`crate::ShardedEngine`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// Alg. 1: per-user baseline, append-only.
    Baseline,
    /// Alg. 2: FilterThenVerify with exact common preferences, append-only.
    FilterThenVerify {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
    },
    /// Sec. 6: FilterThenVerify with approximate common preferences.
    FilterThenVerifyApprox {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
    },
    /// Alg. 4: per-user baseline over a sliding window of `window` objects.
    BaselineSw {
        /// Window size `W`.
        window: usize,
    },
    /// Alg. 5: sliding-window FilterThenVerify.
    FilterThenVerifySw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// Window size `W`.
        window: usize,
    },
    /// Sec. 7+6: sliding-window FilterThenVerify with approximate common
    /// preferences.
    FilterThenVerifyApproxSw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
        /// Window size `W`.
        window: usize,
    },
}

impl BackendSpec {
    /// Builds one shard's monitor over the given (shard-local) preferences.
    ///
    /// Every monitor constructor compiles its preferences (user-level and
    /// cluster-level virtual users alike) to the bitset form of
    /// [`pm_porder::CompiledPreference`] before the first arrival, so each
    /// shard's dominance hot path runs on word-indexed bit tests regardless
    /// of the backend chosen here. The FilterThenVerify backends are built
    /// over an incrementally maintained [`Clustering`], so the shard can
    /// serve REGISTER/UNREGISTER with dendrogram-local repair instead of a
    /// full re-clustering.
    pub fn build(&self, preferences: &[Preference]) -> BoxedMonitor {
        let prefs = preferences.to_vec();
        let clustering =
            |branch_cut: f64| Clustering::new(preferences, ExactMeasure::Jaccard, branch_cut);
        match *self {
            BackendSpec::Baseline => Box::new(BaselineMonitor::new(prefs)),
            BackendSpec::FilterThenVerify { branch_cut } => Box::new(
                FilterThenVerifyMonitor::with_clustering(prefs, clustering(branch_cut)),
            ),
            BackendSpec::FilterThenVerifyApprox { branch_cut, config } => {
                Box::new(FilterThenVerifyMonitor::with_approx_clustering(
                    prefs,
                    clustering(branch_cut),
                    config,
                ))
            }
            BackendSpec::BaselineSw { window } => Box::new(BaselineSwMonitor::new(prefs, window)),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => Box::new(
                FilterThenVerifySwMonitor::with_clustering(prefs, clustering(branch_cut), window),
            ),
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => Box::new(FilterThenVerifySwMonitor::with_approx_clustering(
                prefs,
                clustering(branch_cut),
                config,
                window,
            )),
        }
    }

    /// Whether the backend expires objects from a sliding window.
    pub fn is_sliding(&self) -> bool {
        matches!(
            self,
            BackendSpec::BaselineSw { .. }
                | BackendSpec::FilterThenVerifySw { .. }
                | BackendSpec::FilterThenVerifyApproxSw { .. }
        )
    }

    /// Parses a backend description, as accepted by `pm-server --backend`:
    ///
    /// * `baseline`
    /// * `ftv:<h>` — e.g. `ftv:0.55`
    /// * `ftv-approx:<h>:<theta1>:<theta2>` — e.g. `ftv-approx:0.55:256:0.5`
    /// * `baseline-sw:<W>` — e.g. `baseline-sw:400`
    /// * `ftv-sw:<h>:<W>`
    /// * `ftv-approx-sw:<h>:<theta1>:<theta2>:<W>`
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let arg = |i: usize| -> Result<&str, String> {
            rest.get(i)
                .copied()
                .ok_or_else(|| format!("backend `{kind}` is missing argument {}", i + 1))
        };
        let float = |i: usize| -> Result<f64, String> {
            arg(i)?
                .parse::<f64>()
                .map_err(|e| format!("bad float in backend spec: {e}"))
        };
        let uint = |i: usize| -> Result<usize, String> {
            arg(i)?
                .parse::<usize>()
                .map_err(|e| format!("bad integer in backend spec: {e}"))
        };
        let expect_args = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "backend `{kind}` takes {n} argument(s), got {}",
                    rest.len()
                ))
            }
        };
        match kind {
            "baseline" => {
                expect_args(0)?;
                Ok(BackendSpec::Baseline)
            }
            "ftv" => {
                expect_args(1)?;
                Ok(BackendSpec::FilterThenVerify { branch_cut: float(0)? })
            }
            "ftv-approx" => {
                expect_args(3)?;
                Ok(BackendSpec::FilterThenVerifyApprox {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                })
            }
            "baseline-sw" => {
                expect_args(1)?;
                Ok(BackendSpec::BaselineSw { window: uint(0)? })
            }
            "ftv-sw" => {
                expect_args(2)?;
                Ok(BackendSpec::FilterThenVerifySw {
                    branch_cut: float(0)?,
                    window: uint(1)?,
                })
            }
            "ftv-approx-sw" => {
                expect_args(4)?;
                Ok(BackendSpec::FilterThenVerifyApproxSw {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                    window: uint(3)?,
                })
            }
            other => Err(format!(
                "unknown backend `{other}` (expected baseline, ftv, ftv-approx, baseline-sw, ftv-sw or ftv-approx-sw)"
            )),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::Baseline => write!(f, "baseline"),
            BackendSpec::FilterThenVerify { branch_cut } => write!(f, "ftv:{branch_cut}"),
            BackendSpec::FilterThenVerifyApprox { branch_cut, config } => write!(
                f,
                "ftv-approx:{branch_cut}:{}:{}",
                config.theta1, config.theta2
            ),
            BackendSpec::BaselineSw { window } => write!(f, "baseline-sw:{window}"),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => {
                write!(f, "ftv-sw:{branch_cut}:{window}")
            }
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => write!(
                f,
                "ftv-approx-sw:{branch_cut}:{}:{}:{window}",
                config.theta1, config.theta2
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        for text in [
            "baseline",
            "ftv:0.55",
            "ftv-approx:0.55:256:0.5",
            "baseline-sw:400",
            "ftv-sw:0.55:400",
            "ftv-approx-sw:0.55:256:0.5:400",
        ] {
            let spec = BackendSpec::parse(text).expect(text);
            assert_eq!(spec.to_string(), text);
            assert_eq!(BackendSpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for text in [
            "",
            "nope",
            "ftv",
            "ftv:x",
            "baseline:1",
            "baseline-sw",
            "ftv-sw:0.5",
        ] {
            assert!(BackendSpec::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn sliding_flag_matches_variants() {
        assert!(!BackendSpec::parse("baseline").unwrap().is_sliding());
        assert!(!BackendSpec::parse("ftv:0.5").unwrap().is_sliding());
        assert!(BackendSpec::parse("baseline-sw:10").unwrap().is_sliding());
        assert!(BackendSpec::parse("ftv-sw:0.5:10").unwrap().is_sliding());
    }

    #[test]
    fn every_backend_builds_a_monitor_over_empty_and_small_populations() {
        let prefs = vec![Preference::new(2), Preference::new(2)];
        for text in [
            "baseline",
            "ftv:0.5",
            "ftv-approx:0.5:64:0.5",
            "baseline-sw:8",
            "ftv-sw:0.5:8",
            "ftv-approx-sw:0.5:64:0.5:8",
        ] {
            let spec = BackendSpec::parse(text).unwrap();
            let monitor = spec.build(&prefs);
            assert_eq!(monitor.num_users(), 2, "{text}");
            let empty = spec.build(&[]);
            assert_eq!(empty.num_users(), 0, "{text}");
        }
    }
}
