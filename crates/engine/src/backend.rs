//! Backend selection: which `pm-core` monitor each shard runs.

use std::fmt;

use pm_cluster::{ApproxConfig, Clustering, ExactMeasure};
use pm_core::{
    BaselineMonitor, BaselineSwMonitor, FilterThenVerifyMonitor, FilterThenVerifySwMonitor,
    HistoryMode,
};
use pm_porder::Preference;

use crate::shard::BoxedMonitor;

/// Which monitoring algorithm a shard runs over its slice of the user
/// population.
///
/// The FilterThenVerify variants cluster each shard's users independently
/// (Jaccard similarity on exact common preference relations, Sec. 5 of the
/// paper); clustering quality degrades gracefully as shards get smaller.
/// Append-only [`BackendSpec::FilterThenVerify`] stays exact under any
/// clustering (Lemma 4.6); the approximate and sliding-window variants
/// carry the paper's approximation error, whose exact magnitude therefore
/// depends on the per-shard clusterings (see [`crate::ShardedEngine`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// Alg. 1: per-user baseline, append-only.
    Baseline {
        /// Retention discipline of the backfill history.
        /// [`HistoryMode::Truncate`] keeps the newest `C` objects
        /// (REGISTER/UPDATE backfill is then best-effort: the replayed
        /// frontier is the exact frontier of the retained suffix);
        /// [`HistoryMode::Compact`] retains the skyline union over every
        /// observed preference, keeping backfill exact for all of them at
        /// a fraction of the memory.
        history: HistoryMode,
    },
    /// Alg. 2: FilterThenVerify with exact common preferences, append-only.
    FilterThenVerify {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// Retained-history discipline (see [`BackendSpec::Baseline`]).
        history: HistoryMode,
    },
    /// Sec. 6: FilterThenVerify with approximate common preferences.
    FilterThenVerifyApprox {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
        /// Retained-history discipline (see [`BackendSpec::Baseline`]).
        history: HistoryMode,
    },
    /// Alg. 4: per-user baseline over a sliding window of `window` objects.
    BaselineSw {
        /// Window size `W`.
        window: usize,
    },
    /// Alg. 5: sliding-window FilterThenVerify.
    FilterThenVerifySw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// Window size `W`.
        window: usize,
    },
    /// Sec. 7+6: sliding-window FilterThenVerify with approximate common
    /// preferences.
    FilterThenVerifyApproxSw {
        /// Branch cut `h` for the agglomerative clustering.
        branch_cut: f64,
        /// θ1/θ2 thresholds of Alg. 3.
        config: ApproxConfig,
        /// Window size `W`.
        window: usize,
    },
}

impl BackendSpec {
    /// The append-only baseline with unlimited history.
    pub fn baseline() -> Self {
        BackendSpec::Baseline {
            history: HistoryMode::Unlimited,
        }
    }

    /// Append-only FilterThenVerify with unlimited history.
    pub fn ftv(branch_cut: f64) -> Self {
        BackendSpec::FilterThenVerify {
            branch_cut,
            history: HistoryMode::Unlimited,
        }
    }

    /// Builds one shard's monitor over the given (shard-local) preferences.
    ///
    /// Every monitor constructor compiles its preferences (user-level and
    /// cluster-level virtual users alike) to the bitset form of
    /// [`pm_porder::CompiledPreference`] before the first arrival, so each
    /// shard's dominance hot path runs on word-indexed bit tests regardless
    /// of the backend chosen here. The FilterThenVerify backends are built
    /// over an incrementally maintained [`Clustering`], so the shard can
    /// serve REGISTER/UNREGISTER with dendrogram-local repair instead of a
    /// full re-clustering.
    pub fn build(&self, preferences: &[Preference]) -> BoxedMonitor {
        let prefs = preferences.to_vec();
        let clustering =
            |branch_cut: f64| Clustering::new(preferences, ExactMeasure::Jaccard, branch_cut);
        match *self {
            BackendSpec::Baseline { history } => {
                Box::new(BaselineMonitor::with_history(prefs, history))
            }
            BackendSpec::FilterThenVerify {
                branch_cut,
                history,
            } => Box::new(
                FilterThenVerifyMonitor::with_clustering(prefs, clustering(branch_cut))
                    .with_history(history),
            ),
            BackendSpec::FilterThenVerifyApprox {
                branch_cut,
                config,
                history,
            } => Box::new(
                FilterThenVerifyMonitor::with_approx_clustering(
                    prefs,
                    clustering(branch_cut),
                    config,
                )
                .with_history(history),
            ),
            BackendSpec::BaselineSw { window } => Box::new(BaselineSwMonitor::new(prefs, window)),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => Box::new(
                FilterThenVerifySwMonitor::with_clustering(prefs, clustering(branch_cut), window),
            ),
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => Box::new(FilterThenVerifySwMonitor::with_approx_clustering(
                prefs,
                clustering(branch_cut),
                config,
                window,
            )),
        }
    }

    /// Whether the backend runs skyline-union history compaction — i.e.
    /// whether its monitors react to
    /// [`pm_core::ContinuousMonitor::observe_preference`]. The engine uses
    /// this to skip the engine-global preference broadcast entirely for
    /// backends where it would be a no-op.
    pub fn compacts_history(&self) -> bool {
        matches!(
            self,
            BackendSpec::Baseline {
                history: HistoryMode::Compact { .. },
            } | BackendSpec::FilterThenVerify {
                history: HistoryMode::Compact { .. },
                ..
            } | BackendSpec::FilterThenVerifyApprox {
                history: HistoryMode::Compact { .. },
                ..
            }
        )
    }

    /// Whether the backend expires objects from a sliding window.
    pub fn is_sliding(&self) -> bool {
        matches!(
            self,
            BackendSpec::BaselineSw { .. }
                | BackendSpec::FilterThenVerifySw { .. }
                | BackendSpec::FilterThenVerifyApproxSw { .. }
        )
    }

    /// Parses a backend description, as accepted by `pm-server --backend`.
    /// The append-only backends accept an optional trailing history
    /// discipline: a numeric cap `C` retains the newest `C` objects
    /// (REGISTER/UPDATE backfill is then best-effort), while `compact`
    /// switches on skyline-union compaction (backfill stays exact for
    /// every observed preference), optionally followed by a hard cap on
    /// top. A cap of zero is rejected — it would silently retain nothing.
    ///
    /// * `baseline[:<C> | :compact[:<C>]]`
    /// * `ftv:<h>[:<C> | :compact[:<C>]]` — e.g. `ftv:0.55`,
    ///   `ftv:0.55:100000` or `ftv:0.55:compact`
    /// * `ftv-approx:<h>:<theta1>:<theta2>[:<C> | :compact[:<C>]]`
    /// * `baseline-sw:<W>` — e.g. `baseline-sw:400`
    /// * `ftv-sw:<h>:<W>`
    /// * `ftv-approx-sw:<h>:<theta1>:<theta2>:<W>`
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let arg = |i: usize| -> Result<&str, String> {
            rest.get(i)
                .copied()
                .ok_or_else(|| format!("backend `{kind}` is missing argument {}", i + 1))
        };
        let float = |i: usize| -> Result<f64, String> {
            arg(i)?
                .parse::<f64>()
                .map_err(|e| format!("bad float in backend spec: {e}"))
        };
        let uint = |i: usize| -> Result<usize, String> {
            arg(i)?
                .parse::<usize>()
                .map_err(|e| format!("bad integer in backend spec: {e}"))
        };
        let expect_args = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "backend `{kind}` takes {n} argument(s), got {}",
                    rest.len()
                ))
            }
        };
        // A history cap must be a positive object count: zero would
        // silently retain nothing, which is never what a cap means.
        let cap = |i: usize| -> Result<usize, String> {
            match uint(i)? {
                0 => Err(format!(
                    "backend `{kind}`: history cap must be at least 1 \
                     (omit the cap for an unlimited history)"
                )),
                cap => Ok(cap),
            }
        };
        // The optional history discipline starts at position `i`:
        // `<C>` (truncate), `compact` or `compact:<C>`.
        let history = |i: usize| -> Result<HistoryMode, String> {
            match rest.len() {
                n if n == i => Ok(HistoryMode::Unlimited),
                n if n == i + 1 && rest[i] == "compact" => Ok(HistoryMode::Compact { cap: None }),
                n if n == i + 1 => Ok(HistoryMode::Truncate(cap(i)?)),
                n if n == i + 2 && rest[i] == "compact" => Ok(HistoryMode::Compact {
                    cap: Some(cap(i + 1)?),
                }),
                n if n == i + 2 => Err(format!(
                    "backend `{kind}`: expected `compact[:<C>]` or a single \
                     history cap, got `{}:{}`",
                    rest[i],
                    rest[i + 1]
                )),
                n => Err(format!(
                    "backend `{kind}` takes {i} argument(s) plus an optional \
                     `<C>` or `compact[:<C>]` history suffix, got {n} argument(s)"
                )),
            }
        };
        match kind {
            "baseline" => Ok(BackendSpec::Baseline {
                history: history(0)?,
            }),
            "ftv" => {
                let history = history(1)?;
                Ok(BackendSpec::FilterThenVerify {
                    branch_cut: float(0)?,
                    history,
                })
            }
            "ftv-approx" => {
                let history = history(3)?;
                Ok(BackendSpec::FilterThenVerifyApprox {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                    history,
                })
            }
            "baseline-sw" => {
                expect_args(1)?;
                Ok(BackendSpec::BaselineSw { window: uint(0)? })
            }
            "ftv-sw" => {
                expect_args(2)?;
                Ok(BackendSpec::FilterThenVerifySw {
                    branch_cut: float(0)?,
                    window: uint(1)?,
                })
            }
            "ftv-approx-sw" => {
                expect_args(4)?;
                Ok(BackendSpec::FilterThenVerifyApproxSw {
                    branch_cut: float(0)?,
                    config: ApproxConfig::new(uint(1)?, float(2)?),
                    window: uint(3)?,
                })
            }
            other => Err(format!(
                "unknown backend `{other}` (expected baseline, ftv, ftv-approx, baseline-sw, ftv-sw or ftv-approx-sw)"
            )),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = |history: &HistoryMode| match history {
            HistoryMode::Unlimited => String::new(),
            HistoryMode::Truncate(limit) => format!(":{limit}"),
            HistoryMode::Compact { cap: None } => ":compact".to_owned(),
            HistoryMode::Compact { cap: Some(cap) } => format!(":compact:{cap}"),
        };
        match self {
            BackendSpec::Baseline { history } => {
                write!(f, "baseline{}", suffix(history))
            }
            BackendSpec::FilterThenVerify {
                branch_cut,
                history,
            } => write!(f, "ftv:{branch_cut}{}", suffix(history)),
            BackendSpec::FilterThenVerifyApprox {
                branch_cut,
                config,
                history,
            } => write!(
                f,
                "ftv-approx:{branch_cut}:{}:{}{}",
                config.theta1,
                config.theta2,
                suffix(history)
            ),
            BackendSpec::BaselineSw { window } => write!(f, "baseline-sw:{window}"),
            BackendSpec::FilterThenVerifySw { branch_cut, window } => {
                write!(f, "ftv-sw:{branch_cut}:{window}")
            }
            BackendSpec::FilterThenVerifyApproxSw {
                branch_cut,
                config,
                window,
            } => write!(
                f,
                "ftv-approx-sw:{branch_cut}:{}:{}:{window}",
                config.theta1, config.theta2
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        for text in [
            "baseline",
            "baseline:100000",
            "baseline:compact",
            "baseline:compact:100000",
            "ftv:0.55",
            "ftv:0.55:100000",
            "ftv:0.55:compact",
            "ftv:0.55:compact:100000",
            "ftv-approx:0.55:256:0.5",
            "ftv-approx:0.55:256:0.5:100000",
            "ftv-approx:0.55:256:0.5:compact",
            "ftv-approx:0.55:256:0.5:compact:100000",
            "baseline-sw:400",
            "ftv-sw:0.55:400",
            "ftv-approx-sw:0.55:256:0.5:400",
        ] {
            let spec = BackendSpec::parse(text).expect(text);
            assert_eq!(spec.to_string(), text);
            assert_eq!(BackendSpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for text in [
            "",
            "nope",
            "ftv",
            "ftv:x",
            "baseline:x",
            "baseline:1:2",
            "baseline:compact:x",
            "baseline:compact:1:2",
            "baseline:compactt",
            "ftv:0.5:10:20",
            "ftv:0.5:compact:x",
            "baseline-sw",
            "baseline-sw:400:100",
            "baseline-sw:compact",
            "ftv-sw:0.5",
            "ftv-sw:0.5:400:compact",
        ] {
            assert!(BackendSpec::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn zero_and_dangling_history_caps_are_rejected_with_clean_errors() {
        // A zero cap would silently retain nothing — reject it on every
        // append-only backend and on the compact hard cap alike.
        for text in [
            "baseline:0",
            "ftv:0.5:0",
            "ftv-approx:0.5:64:0.5:0",
            "baseline:compact:0",
            "ftv:0.5:compact:0",
            "ftv-approx:0.5:64:0.5:compact:0",
        ] {
            let err = BackendSpec::parse(text).expect_err(text);
            assert!(err.contains("history cap must be at least 1"), "{err}");
        }
        // A trailing `:` leaves an empty argument, which is not a cap.
        for text in [
            "baseline:",
            "ftv:0.5:",
            "baseline:compact:",
            "ftv-sw:0.5:400:",
        ] {
            assert!(BackendSpec::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn history_disciplines_parse_into_the_append_only_variants() {
        assert_eq!(
            BackendSpec::parse("baseline:64"),
            Ok(BackendSpec::Baseline {
                history: HistoryMode::Truncate(64)
            })
        );
        assert_eq!(
            BackendSpec::parse("ftv:0.5:64"),
            Ok(BackendSpec::FilterThenVerify {
                branch_cut: 0.5,
                history: HistoryMode::Truncate(64)
            })
        );
        assert_eq!(
            BackendSpec::parse("baseline:compact"),
            Ok(BackendSpec::Baseline {
                history: HistoryMode::Compact { cap: None }
            })
        );
        assert_eq!(
            BackendSpec::parse("ftv:0.5:compact:512"),
            Ok(BackendSpec::FilterThenVerify {
                branch_cut: 0.5,
                history: HistoryMode::Compact { cap: Some(512) }
            })
        );
        assert_eq!(BackendSpec::parse("baseline"), Ok(BackendSpec::baseline()));
        assert_eq!(BackendSpec::parse("ftv:0.5"), Ok(BackendSpec::ftv(0.5)));
    }

    #[test]
    fn sliding_flag_matches_variants() {
        assert!(!BackendSpec::parse("baseline").unwrap().is_sliding());
        assert!(!BackendSpec::parse("ftv:0.5").unwrap().is_sliding());
        assert!(BackendSpec::parse("baseline-sw:10").unwrap().is_sliding());
        assert!(BackendSpec::parse("ftv-sw:0.5:10").unwrap().is_sliding());
    }

    #[test]
    fn every_backend_builds_a_monitor_over_empty_and_small_populations() {
        let prefs = vec![Preference::new(2), Preference::new(2)];
        for text in [
            "baseline",
            "baseline:compact",
            "ftv:0.5",
            "ftv:0.5:compact:64",
            "ftv-approx:0.5:64:0.5",
            "ftv-approx:0.5:64:0.5:compact",
            "baseline-sw:8",
            "ftv-sw:0.5:8",
            "ftv-approx-sw:0.5:64:0.5:8",
        ] {
            let spec = BackendSpec::parse(text).unwrap();
            let monitor = spec.build(&prefs);
            assert_eq!(monitor.num_users(), 2, "{text}");
            let empty = spec.build(&[]);
            assert_eq!(empty.num_users(), 0, "{text}");
        }
    }
}
