//! Shard worker threads.
//!
//! A shard owns one [`ContinuousMonitor`] over a subset of the user
//! population and processes commands from its bounded inbox in order.
//! Because the monitor only knows its local, densely re-indexed users, the
//! worker translates between local indices and global [`UserId`]s at the
//! boundary. With dynamic membership (REGISTER/UNREGISTER) the local→global
//! map is append-plus-swap-remove maintained, so it is *not* sorted; a hash
//! map resolves global ids on the query path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use pm_core::{ContinuousMonitor, FrontierDelta, MonitorState, MonitorStats};
use pm_model::{Object, ObjectId, UserId};
use pm_obs::LogHistogram;
use pm_porder::Preference;

/// A monitor that can be moved onto a shard worker thread.
///
/// All monitors in `pm-core` are plain owned data (vectors and hash maps),
/// so every one of them satisfies this bound.
pub type BoxedMonitor = Box<dyn ContinuousMonitor + Send>;

/// Commands accepted by a shard worker.
pub(crate) enum ShardCmd {
    /// Process a batch of objects and reply with the per-object target
    /// users (global ids).
    Batch {
        /// The batch, shared by all shards.
        objects: Arc<Vec<Object>>,
        /// When the batch was enqueued, so the worker can report how long
        /// it sat in the inbox (the `queue_wait` stage histogram).
        enqueued: Instant,
        /// Where to send the per-shard reply.
        reply: Sender<ShardBatchReply>,
    },
    /// Report the frontier of a (globally identified) user.
    Frontier {
        user: UserId,
        reply: Sender<Vec<ObjectId>>,
    },
    /// Register a new user on this shard, backfilling its frontier from the
    /// alive objects. Replies once the registration is visible.
    AddUser {
        user: UserId,
        preference: Preference,
        reply: Sender<()>,
    },
    /// Unregister a user from this shard. Replies whether the user existed.
    RemoveUser { user: UserId, reply: Sender<bool> },
    /// Widen the monitor's history-compaction universe with a preference
    /// registered (or updated) on *another* shard, without adding a user.
    /// The compaction universe must be engine-global: a preference living
    /// on shard `t` may later register on shard `s`, and `s`'s retained
    /// history has to be able to backfill it exactly. Fire-and-forget —
    /// FIFO ordering against later commands is all that is required, and
    /// monitors without a compacting history ignore it.
    Observe { preference: Preference },
    /// Replace a registered user's preference in place, keeping its global
    /// and local ids (no swap-remove renumbering anywhere). The monitor
    /// repairs the user's frontier by replay and its cluster by diffing the
    /// old and new relations. Replies whether the user existed.
    UpdateUser {
        user: UserId,
        preference: Preference,
        reply: Sender<bool>,
    },
    /// Report the monitor's work counters.
    Stats { reply: Sender<MonitorStats> },
    /// Export the shard's durable state for a snapshot: the members (global
    /// ids with their preferences, in local order) and the monitor's
    /// history/window plus work counters.
    Export { reply: Sender<ShardExport> },
    /// Install durable state into a monitor that has **no users yet** (the
    /// history or window verbatim); members are re-registered afterwards
    /// through [`ShardCmd::AddUser`] so frontiers backfill from it.
    Import {
        state: MonitorState,
        reply: Sender<()>,
    },
    /// Overwrite the monitor's stream work counters with snapshot-time
    /// values, after recovery re-registration (whose backfill replay would
    /// otherwise pollute them).
    RestoreStats {
        stats: MonitorStats,
        reply: Sender<()>,
    },
    /// Terminate the worker.
    Shutdown,
}

/// One shard's contribution to an engine snapshot.
pub(crate) struct ShardExport {
    /// Global user ids in shard-local order (swap-remove churned).
    pub users: Vec<UserId>,
    /// The members' preferences, index-aligned with `users`.
    pub preferences: Vec<Preference>,
    /// The monitor's durable state (history or window, work counters).
    pub state: MonitorState,
}

/// One shard's answer for one batch.
pub(crate) struct ShardBatchReply {
    /// Which shard this reply came from.
    pub shard: usize,
    /// For each object of the batch, the target users owned by this shard,
    /// as global ids. Per-shard sets are pairwise disjoint across shards;
    /// the engine sorts the merged set, so no per-shard order is promised.
    pub targets: Vec<Vec<UserId>>,
    /// For each object of the batch, the frontier deltas of the users owned
    /// by this shard, with global user ids. Disjoint across shards (a user
    /// lives on exactly one shard); the engine sorts the merged list back
    /// into canonical `(user, object)` order.
    pub deltas: Vec<Vec<FrontierDelta>>,
}

/// The state moved onto a shard's worker thread.
pub(crate) struct ShardWorker {
    pub shard: usize,
    pub monitor: BoxedMonitor,
    /// Local user index → global user id (unsorted under churn).
    pub global_users: Vec<UserId>,
    /// Number of batches enqueued but not yet fully processed.
    pub queue_depth: Arc<AtomicUsize>,
    /// Inbox dwell time of batches (`queue_wait` stage), shared with every
    /// other shard; `None` when the engine runs without metrics.
    pub queue_wait: Option<Arc<LogHistogram>>,
    /// Per-batch monitor application time (`shard_apply` stage), shared
    /// with every other shard; `None` when the engine runs without metrics.
    pub apply: Option<Arc<LogHistogram>>,
}

impl ShardWorker {
    /// Processes commands until the channel closes or `Shutdown` arrives.
    pub fn run(mut self, inbox: Receiver<ShardCmd>) {
        // Global id → local index, kept in sync with `global_users`.
        let mut local_of: HashMap<UserId, usize> = self
            .global_users
            .iter()
            .enumerate()
            .map(|(local, &user)| (user, local))
            .collect();
        while let Ok(cmd) = inbox.recv() {
            match cmd {
                ShardCmd::Batch {
                    objects,
                    enqueued,
                    reply,
                } => {
                    if let Some(queue_wait) = &self.queue_wait {
                        queue_wait.record_duration(enqueued.elapsed());
                    }
                    let apply_start = self.apply.as_ref().map(|_| Instant::now());
                    let mut targets = Vec::with_capacity(objects.len());
                    let mut deltas = Vec::with_capacity(objects.len());
                    for object in objects.iter() {
                        let arrival = self.monitor.process(object.clone());
                        targets.push(
                            arrival
                                .target_users
                                .iter()
                                .map(|local| self.global_users[local.index()])
                                .collect::<Vec<UserId>>(),
                        );
                        deltas.push(
                            arrival
                                .deltas
                                .iter()
                                .map(|d| FrontierDelta {
                                    user: self.global_users[d.user.index()],
                                    ..*d
                                })
                                .collect::<Vec<FrontierDelta>>(),
                        );
                    }
                    if let (Some(apply), Some(start)) = (&self.apply, apply_start) {
                        apply.record_duration(start.elapsed());
                    }
                    self.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    let _ = reply.send(ShardBatchReply {
                        shard: self.shard,
                        targets,
                        deltas,
                    });
                }
                ShardCmd::Frontier { user, reply } => {
                    let frontier = match local_of.get(&user) {
                        Some(&local) => self.monitor.frontier(UserId::from(local)),
                        None => Vec::new(),
                    };
                    let _ = reply.send(frontier);
                }
                ShardCmd::AddUser {
                    user,
                    preference,
                    reply,
                } => {
                    debug_assert!(!local_of.contains_key(&user), "duplicate registration");
                    let local = self.monitor.add_user(preference);
                    debug_assert_eq!(local.index(), self.global_users.len());
                    local_of.insert(user, local.index());
                    self.global_users.push(user);
                    let _ = reply.send(());
                }
                ShardCmd::UpdateUser {
                    user,
                    preference,
                    reply,
                } => {
                    let updated = match local_of.get(&user) {
                        Some(&local) => {
                            self.monitor.update_user(UserId::from(local), preference);
                            true
                        }
                        None => false,
                    };
                    let _ = reply.send(updated);
                }
                ShardCmd::RemoveUser { user, reply } => {
                    let removed = match local_of.remove(&user) {
                        Some(local) => {
                            // Mirror the monitor's swap-remove: the last
                            // local user takes over the freed slot.
                            self.monitor.remove_user(UserId::from(local));
                            self.global_users.swap_remove(local);
                            if local < self.global_users.len() {
                                local_of.insert(self.global_users[local], local);
                            }
                            true
                        }
                        None => false,
                    };
                    let _ = reply.send(removed);
                }
                ShardCmd::Observe { preference } => {
                    self.monitor.observe_preference(&preference);
                }
                ShardCmd::Stats { reply } => {
                    let _ = reply.send(self.monitor.stats());
                }
                ShardCmd::Export { reply } => {
                    let preferences = self.monitor.member_preferences();
                    debug_assert_eq!(preferences.len(), self.global_users.len());
                    let _ = reply.send(ShardExport {
                        users: self.global_users.clone(),
                        preferences,
                        state: self.monitor.export_state(),
                    });
                }
                ShardCmd::Import { state, reply } => {
                    debug_assert!(
                        self.global_users.is_empty(),
                        "import into a populated shard"
                    );
                    self.monitor.import_state(state);
                    let _ = reply.send(());
                }
                ShardCmd::RestoreStats { stats, reply } => {
                    self.monitor.restore_stats(stats);
                    let _ = reply.send(());
                }
                ShardCmd::Shutdown => break,
            }
        }
    }
}
