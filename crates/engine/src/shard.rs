//! Shard worker threads.
//!
//! A shard owns one [`ContinuousMonitor`] over a subset of the user
//! population and processes commands from its bounded inbox in order.
//! Because the monitor only knows its local, densely re-indexed users, the
//! worker translates between local indices and global [`UserId`]s at the
//! boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use pm_core::{ContinuousMonitor, MonitorStats};
use pm_model::{Object, ObjectId, UserId};

/// A monitor that can be moved onto a shard worker thread.
///
/// All monitors in `pm-core` are plain owned data (vectors and hash maps),
/// so every one of them satisfies this bound.
pub type BoxedMonitor = Box<dyn ContinuousMonitor + Send>;

/// Commands accepted by a shard worker.
pub(crate) enum ShardCmd {
    /// Process a batch of objects and reply with the per-object target
    /// users (global ids).
    Batch {
        /// The batch, shared by all shards.
        objects: Arc<Vec<Object>>,
        /// Where to send the per-shard reply.
        reply: Sender<ShardBatchReply>,
    },
    /// Report the frontier of a (globally identified) user.
    Frontier {
        user: UserId,
        reply: Sender<Vec<ObjectId>>,
    },
    /// Report the monitor's work counters.
    Stats { reply: Sender<MonitorStats> },
    /// Terminate the worker.
    Shutdown,
}

/// One shard's answer for one batch.
pub(crate) struct ShardBatchReply {
    /// Which shard this reply came from.
    pub shard: usize,
    /// For each object of the batch, the target users owned by this shard,
    /// as global ids in ascending order.
    pub targets: Vec<Vec<UserId>>,
}

/// The state moved onto a shard's worker thread.
pub(crate) struct ShardWorker {
    pub shard: usize,
    pub monitor: BoxedMonitor,
    /// Local user index → global user id, ascending.
    pub global_users: Vec<UserId>,
    /// Number of batches enqueued but not yet fully processed.
    pub queue_depth: Arc<AtomicUsize>,
}

impl ShardWorker {
    /// Processes commands until the channel closes or `Shutdown` arrives.
    pub fn run(mut self, inbox: Receiver<ShardCmd>) {
        while let Ok(cmd) = inbox.recv() {
            match cmd {
                ShardCmd::Batch { objects, reply } => {
                    let targets = objects
                        .iter()
                        .map(|object| {
                            let arrival = self.monitor.process(object.clone());
                            // Local indices are ascending, and the local→global
                            // map is monotone, so the mapped list stays sorted.
                            arrival
                                .target_users
                                .iter()
                                .map(|local| self.global_users[local.index()])
                                .collect()
                        })
                        .collect();
                    self.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    let _ = reply.send(ShardBatchReply {
                        shard: self.shard,
                        targets,
                    });
                }
                ShardCmd::Frontier { user, reply } => {
                    let frontier = match self.global_users.binary_search(&user) {
                        Ok(local) => self.monitor.frontier(UserId::from(local)),
                        Err(_) => Vec::new(),
                    };
                    let _ = reply.send(frontier);
                }
                ShardCmd::Stats { reply } => {
                    let _ = reply.send(self.monitor.stats());
                }
                ShardCmd::Shutdown => break,
            }
        }
    }
}
