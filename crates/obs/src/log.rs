//! A leveled structured logger on stderr.
//!
//! One line per event, in either a human text format:
//!
//! ```text
//! [1722960000.123 INFO pm_engine::server] accepted connection peer=127.0.0.1:9999
//! ```
//!
//! or JSON lines (`{"ts":...,"level":"info","target":"...","msg":"...",...}`).
//!
//! Configuration comes from the `PM_LOG` environment variable, read once on
//! first use: `PM_LOG=<level>` or `PM_LOG=<level>,json`, where `<level>` is
//! one of `error`, `warn`, `info` (the default), `debug`, or `off`.
//!
//! Use through the macros:
//!
//! ```
//! pm_obs::info!("pm_engine::server", "listening", addr = "127.0.0.1:7878");
//! pm_obs::warn!("pm_core::history", "cap reached", evicted = 12);
//! ```
//!
//! Field values go through `Display`. A level that is disabled costs one
//! relaxed atomic load and never evaluates its field expressions.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; the server keeps running but work was lost.
    Error = 1,
    /// Something surprising that merits attention (slow ops, rejected input).
    Warn = 2,
    /// Lifecycle events: startup, shutdown, connections. The default level.
    Info = 3,
    /// Per-request detail; off unless explicitly enabled.
    Debug = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn as_json_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Packed config: low 3 bits = max enabled level (0 = off), bit 3 = JSON,
/// bit 7 = initialized.
static CONFIG: AtomicU8 = AtomicU8::new(0);
const INIT_BIT: u8 = 0x80;
const JSON_BIT: u8 = 0x08;
const LEVEL_MASK: u8 = 0x07;

fn parse_config(spec: &str) -> u8 {
    let mut max_level = Level::Info as u8;
    let mut json = false;
    for part in spec.split(',') {
        match part.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => max_level = 0,
            "error" => max_level = Level::Error as u8,
            "warn" => max_level = Level::Warn as u8,
            "info" => max_level = Level::Info as u8,
            "debug" => max_level = Level::Debug as u8,
            "json" => json = true,
            "text" | "" => {}
            other => {
                // Mis-spelled PM_LOG should not silently swallow logs.
                let _ = writeln!(
                    std::io::stderr(),
                    "pm_obs: ignoring unknown PM_LOG token `{other}`"
                );
            }
        }
    }
    INIT_BIT | (if json { JSON_BIT } else { 0 }) | (max_level & LEVEL_MASK)
}

fn config() -> u8 {
    let current = CONFIG.load(Ordering::Relaxed);
    if current & INIT_BIT != 0 {
        return current;
    }
    let parsed = match std::env::var("PM_LOG") {
        Ok(spec) => parse_config(&spec),
        Err(_) => INIT_BIT | Level::Info as u8,
    };
    // Racing initializers parse the same env var to the same value.
    CONFIG.store(parsed, Ordering::Relaxed);
    parsed
}

/// Applies a `PM_LOG`-syntax spec (e.g. the value of a `--log` CLI flag),
/// overriding any environment-derived configuration.
pub fn set_config_spec(spec: &str) {
    CONFIG.store(parse_config(spec), Ordering::Relaxed);
}

/// Overrides the `PM_LOG`-derived configuration (e.g. from a CLI flag).
pub fn set_config(max_level: Option<Level>, json: bool) {
    let level = max_level.map_or(0, |l| l as u8);
    CONFIG.store(
        INIT_BIT | (if json { JSON_BIT } else { 0 }) | level,
        Ordering::Relaxed,
    );
}

/// Whether `level` is currently enabled. Cheap: one atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    (config() & LEVEL_MASK) >= level as u8
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats one log line (without trailing newline). Pure — exposed so tests
/// can pin the format without capturing stderr. `ts_millis` is milliseconds
/// since the Unix epoch.
pub fn format_line(
    ts_millis: u64,
    json: bool,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, String)],
) -> String {
    let mut line = String::with_capacity(64 + msg.len());
    if json {
        let _ = write!(
            line,
            "{{\"ts\":{}.{:03},\"level\":\"{}\",\"target\":\"",
            ts_millis / 1000,
            ts_millis % 1000,
            level.as_json_str()
        );
        escape_json_into(&mut line, target);
        line.push_str("\",\"msg\":\"");
        escape_json_into(&mut line, msg);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_json_into(&mut line, key);
            line.push_str("\":\"");
            escape_json_into(&mut line, value);
            line.push('"');
        }
        line.push('}');
    } else {
        let _ = write!(
            line,
            "[{}.{:03} {} {}] {}",
            ts_millis / 1000,
            ts_millis % 1000,
            level.as_str(),
            target,
            msg
        );
        for (key, value) in fields {
            let _ = write!(line, " {key}={value}");
        }
    }
    line
}

/// Emits one log line to stderr if `level` is enabled. Called by the
/// macros; prefer those.
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    let cfg = config();
    if (cfg & LEVEL_MASK) < level as u8 {
        return;
    }
    let ts_millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let line = format_line(ts_millis, cfg & JSON_BIT != 0, level, target, msg, fields);
    // One locked write per line keeps concurrent lines intact.
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

/// Logs at an explicit [`Level`]:
/// `log!(Level::Info, "target", "message", key = value, ...)`.
/// Field expressions are not evaluated when the level is disabled.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log::enabled($level) {
            $crate::log::emit(
                $level,
                $target,
                $msg,
                &[$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
            );
        }
    };
}

/// Logs at [`Level::Error`]. See [`log!`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`]. See [`log!`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`]. See [`log!`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`]. See [`log!`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Debug, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_stable() {
        let line = format_line(
            1_722_960_000_123,
            false,
            Level::Info,
            "pm_engine::server",
            "listening",
            &[
                ("addr", "127.0.0.1:7878".to_owned()),
                ("shards", "4".to_owned()),
            ],
        );
        assert_eq!(
            line,
            "[1722960000.123 INFO pm_engine::server] listening addr=127.0.0.1:7878 shards=4"
        );
    }

    #[test]
    fn json_format_is_stable_and_escaped() {
        let line = format_line(
            7_001,
            true,
            Level::Warn,
            "pm_core",
            "bad \"input\"",
            &[("raw", "a\nb".to_owned())],
        );
        assert_eq!(
            line,
            "{\"ts\":7.001,\"level\":\"warn\",\"target\":\"pm_core\",\
             \"msg\":\"bad \\\"input\\\"\",\"raw\":\"a\\nb\"}"
        );
    }

    #[test]
    fn parse_config_handles_level_and_json() {
        assert_eq!(parse_config("debug") & LEVEL_MASK, Level::Debug as u8);
        assert_eq!(parse_config("off") & LEVEL_MASK, 0);
        assert_eq!(parse_config("warn,json") & JSON_BIT, JSON_BIT);
        assert_eq!(parse_config("warn,json") & LEVEL_MASK, Level::Warn as u8);
        // Unknown tokens keep the default level.
        assert_eq!(parse_config("verbose") & LEVEL_MASK, Level::Info as u8);
    }

    #[test]
    fn levels_order_from_severe_to_chatty() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
