//! A small metrics registry with Prometheus text-format exposition.
//!
//! Metric families are registered once (name, help, kind) and then grow
//! labeled series; handles ([`Counter`], [`Gauge`],
//! [`crate::LogHistogram`]) are `Arc`s the hot path updates without ever
//! touching the registry again — the registry's mutex is taken only at
//! registration and render time.
//!
//! [`Registry::render`] produces text-format **0.0.4** exposition:
//! `# HELP`/`# TYPE` headers, families sorted by name, series sorted by
//! label values, histograms as cumulative `_bucket{le=...}` samples plus
//! `_sum`/`_count`. Durations are recorded in nanoseconds
//! ([`crate::LogHistogram::record_duration`]) and rendered in **seconds**,
//! per Prometheus convention.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::hist::LogHistogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for counters mirrored from an authoritative
    /// lifetime counter elsewhere (e.g. an engine snapshot) at scrape time.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The three exposition kinds the registry knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing counter (`# TYPE ... counter`).
    Counter,
    /// A settable gauge (`# TYPE ... gauge`).
    Gauge,
    /// A duration histogram in nanoseconds, rendered in seconds
    /// (`# TYPE ... histogram`).
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

struct Series {
    /// Pre-rendered `{k="v",...}` label block (empty for unlabeled).
    labels: String,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A collection of metric families (see the module docs).
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn lock_families(mutex: &Mutex<Vec<Family>>) -> MutexGuard<'_, Vec<Family>> {
    // Registration and rendering only append/read; a panicked holder
    // leaves the vector consistent.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            families: Mutex::new(Vec::new()),
        }
    }

    fn register(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> usize {
        let mut families = lock_families(&self.families);
        let family = match families.iter().position(|f| f.name == name) {
            Some(index) => {
                assert_eq!(
                    families[index].kind, kind,
                    "metric family `{name}` re-registered with a different kind"
                );
                index
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.len() - 1
            }
        };
        let rendered = render_labels(labels);
        assert!(
            !families[family].series.iter().any(|s| s.labels == rendered),
            "metric series `{name}{rendered}` registered twice"
        );
        families[family].series.push(Series {
            labels: rendered,
            handle: Handle::Counter(Arc::new(Counter::default())), // placeholder
        });
        family
    }

    /// Registers (or extends) a counter family and returns the new series'
    /// handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let family = self.register(name, help, MetricKind::Counter, labels);
        let handle = Arc::new(Counter::default());
        let mut families = lock_families(&self.families);
        families[family].series.last_mut().unwrap().handle = Handle::Counter(Arc::clone(&handle));
        handle
    }

    /// Registers (or extends) a gauge family and returns the new series'
    /// handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let family = self.register(name, help, MetricKind::Gauge, labels);
        let handle = Arc::new(Gauge::default());
        let mut families = lock_families(&self.families);
        families[family].series.last_mut().unwrap().handle = Handle::Gauge(Arc::clone(&handle));
        handle
    }

    /// Registers (or extends) a histogram family and returns the new
    /// series' handle. Record durations in nanoseconds; exposition is in
    /// seconds.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<LogHistogram> {
        let family = self.register(name, help, MetricKind::Histogram, labels);
        let handle = Arc::new(LogHistogram::new());
        let mut families = lock_families(&self.families);
        families[family].series.last_mut().unwrap().handle = Handle::Histogram(Arc::clone(&handle));
        handle
    }

    /// Renders the whole registry as Prometheus text-format 0.0.4
    /// exposition. Families are sorted by name and series by label block,
    /// so the output layout is deterministic.
    pub fn render(&self) -> String {
        let families = lock_families(&self.families);
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::new();
        for index in order {
            let family = &families[index];
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                family.name,
                family.kind.exposition_name()
            );
            let mut series: Vec<&Series> = family.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, s.labels, c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, s.labels, g.get());
                    }
                    Handle::Histogram(h) => render_histogram(&mut out, &family.name, &s.labels, h),
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders one histogram series: cumulative buckets over the non-empty
/// edges, a `+Inf` bucket, `_sum` and `_count`. Edges and the sum are
/// converted from nanoseconds to seconds.
fn render_histogram(out: &mut String, name: &str, labels: &str, histogram: &LogHistogram) {
    let snapshot = histogram.snapshot();
    // Splice `le` into a possibly present label block.
    let with_le = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cumulative = 0u64;
    for (upper, count) in snapshot.nonzero_buckets() {
        cumulative += count;
        let le = upper as f64 / 1e9;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            with_le(&le.to_string())
        );
    }
    let _ = writeln!(out, "{name}_bucket{} {}", with_le("+Inf"), snapshot.count());
    let _ = writeln!(out, "{name}_sum{labels} {}", snapshot.sum() as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{labels} {}", snapshot.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_sorted() {
        let r = Registry::new();
        let c = r.counter("zz_total", "Last family.", &[]);
        c.inc_by(3);
        let g0 = r.gauge("aa_users", "First family.", &[("shard", "0")]);
        let g1 = r.gauge("aa_users", "First family.", &[("shard", "1")]);
        g0.set(2.0);
        g1.set(5.0);
        let text = r.render();
        let expected = "# HELP aa_users First family.\n\
                        # TYPE aa_users gauge\n\
                        aa_users{shard=\"0\"} 2\n\
                        aa_users{shard=\"1\"} 5\n\
                        # HELP zz_total Last family.\n\
                        # TYPE zz_total counter\n\
                        zz_total 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histograms_render_cumulative_buckets_in_seconds() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "Latency.", &[("verb", "ingest")]);
        h.record(1_000_000_000); // exactly 1s falls in a bucket whose edge >= 1s
        h.record(5);
        let text = r.render();
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
        assert!(
            text.contains("lat_seconds_bucket{verb=\"ingest\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_count{verb=\"ingest\"} 2"),
            "{text}"
        );
        // Cumulative: the +Inf line equals the count; earlier lines ascend.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c_total", "Help.", &[("path", "a\"b\\c\nd")]);
        let text = r.render();
        assert!(
            text.contains("c_total{path=\"a\\\"b\\\\c\\nd\"} 0"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_series_panic() {
        let r = Registry::new();
        r.counter("dup_total", "Help.", &[("a", "1")]);
        r.counter("dup_total", "Help.", &[("a", "1")]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("kind_total", "Help.", &[]);
        r.gauge("kind_total", "Help.", &[]);
    }
}
