//! # pm-obs
//!
//! Observability primitives for the serving stack: a lock-free log-bucket
//! latency histogram, a small Prometheus-style metrics registry, a leveled
//! structured logger, and a windowed throughput rate.
//!
//! Everything here is hand-rolled on `std` (no crates.io access in the
//! build environment) and designed for the hot path:
//!
//! * [`LogHistogram`] — fixed-size `AtomicU64` buckets with log-linear
//!   bucketing (64 linear sub-buckets per power of two), so `record` is a
//!   single `fetch_add` with no allocation and no lock, quantiles carry at
//!   most ~1.6% relative error (documented bound: 2%), and per-shard
//!   histograms merge by plain bucket addition — or, as the engine does,
//!   by sharing one histogram behind an [`std::sync::Arc`].
//! * [`Registry`] — named metric families (counters, gauges, histograms)
//!   with stable label sets, rendered as Prometheus text-format 0.0.4
//!   exposition (`# HELP`/`# TYPE` headers, deterministic ordering).
//! * [`mod@log`] — leveled `error!`/`warn!`/`info!`/`debug!` macros with
//!   `target` and `key=value` fields, controlled by the `PM_LOG`
//!   environment variable, with an optional JSON-lines mode.
//! * [`WindowedRate`] — a ring of per-second counters giving a "recent"
//!   events/sec rate that, unlike a lifetime average, decays after idle
//!   periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod log;
pub mod rate;
pub mod registry;

pub use hist::{HistogramSnapshot, LogHistogram};
pub use log::Level;
pub use rate::WindowedRate;
pub use registry::{Counter, Gauge, MetricKind, Registry};
