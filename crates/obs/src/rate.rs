//! A windowed events-per-second rate.
//!
//! The engine's lifetime `arrivals_per_sec` (total ingested / uptime) keeps
//! averaging over idle periods, so a server that ingested a burst an hour
//! ago still "has throughput". [`WindowedRate`] fixes that with a ring of
//! per-second counters: recording bumps the current second's slot, and the
//! rate is the sum over the last ten seconds divided by the window length —
//! it decays to zero within ten seconds of the last event.
//!
//! Lock-free: slots are `AtomicU64` pairs (stamp, count). A recorder that
//! finds a stale slot swaps the stamp and resets the count; racing
//! recorders on a second boundary can drop a handful of events from the
//! closing second, which is acceptable for a monitoring rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring size. Must exceed [`WINDOW_SECS`] so a just-expired slot is not
/// confused with the current second.
const SLOTS: usize = 16;
/// The averaging window, in seconds.
const WINDOW_SECS: u64 = 10;

struct Slot {
    /// Second index + 1 (0 = never written).
    stamp: AtomicU64,
    count: AtomicU64,
}

/// A ring of per-second counters giving a recent events/sec rate (see the
/// module docs).
pub struct WindowedRate {
    slots: Vec<Slot>,
    epoch: Instant,
}

impl WindowedRate {
    /// A new rate with an empty window. Seconds are measured from creation.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, || Slot {
            stamp: AtomicU64::new(0),
            count: AtomicU64::new(0),
        });
        Self {
            slots,
            epoch: Instant::now(),
        }
    }

    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records `n` events now.
    #[inline]
    pub fn record(&self, n: u64) {
        self.record_at(self.now_sec(), n);
    }

    /// Records `n` events in second `sec` (seconds since creation).
    /// Exposed for deterministic tests; production code uses [`Self::record`].
    pub fn record_at(&self, sec: u64, n: u64) {
        let slot = &self.slots[(sec as usize) % SLOTS];
        let stamp = sec + 1;
        if slot.stamp.swap(stamp, Ordering::Relaxed) != stamp {
            // First writer of this second claims the slot. A racing writer
            // from the previous lap may lose its reset — bounded error, see
            // the module docs.
            slot.count.store(0, Ordering::Relaxed);
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Events/sec over the recent window (shorter if the
    /// rate was created more recently).
    pub fn rate(&self) -> f64 {
        self.rate_at(self.now_sec())
    }

    /// The rate as of second `now_sec`. Exposed for deterministic tests.
    pub fn rate_at(&self, now_sec: u64) -> f64 {
        let oldest = now_sec.saturating_sub(WINDOW_SECS - 1);
        let mut total = 0u64;
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp == 0 {
                continue;
            }
            let sec = stamp - 1;
            if sec >= oldest && sec <= now_sec {
                total += slot.count.load(Ordering::Relaxed);
            }
        }
        // Early in life the window is shorter than WINDOW_SECS.
        let window = (now_sec + 1).min(WINDOW_SECS);
        total as f64 / window as f64
    }
}

impl Default for WindowedRate {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WindowedRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedRate")
            .field("rate", &self.rate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_reports_its_rate() {
        let r = WindowedRate::new();
        for sec in 0..20 {
            r.record_at(sec, 100);
        }
        let rate = r.rate_at(19);
        assert!((rate - 100.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn rate_decays_after_idle() {
        let r = WindowedRate::new();
        r.record_at(0, 5_000);
        // Burst visible immediately...
        assert!(r.rate_at(0) >= 5_000.0);
        // ...still partially visible inside the window...
        assert!(r.rate_at(5) > 0.0);
        // ...gone once the window has passed.
        assert_eq!(r.rate_at(50), 0.0);
    }

    #[test]
    fn short_lifetimes_use_a_short_window() {
        let r = WindowedRate::new();
        r.record_at(0, 30);
        r.record_at(1, 30);
        // Two seconds of life: divide by 2, not by 10.
        assert!((r.rate_at(1) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn old_laps_do_not_leak_into_the_window() {
        let r = WindowedRate::new();
        r.record_at(3, 77);
        // Second 3 + SLOTS maps to the same slot; its count must be
        // reclaimed, not added to the stale 77.
        let lapped = 3 + SLOTS as u64;
        r.record_at(lapped, 10);
        let expected = 10.0 / WINDOW_SECS as f64;
        assert!((r.rate_at(lapped) - expected).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_path_smoke() {
        let r = WindowedRate::new();
        r.record(50);
        assert!(r.rate() >= 50.0 / WINDOW_SECS as f64);
    }
}
