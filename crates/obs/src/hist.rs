//! A lock-free log-bucket latency histogram.
//!
//! [`LogHistogram`] spreads `u64` values (the engine records durations in
//! nanoseconds) over fixed buckets with **log-linear** resolution: values
//! below 64 get one bucket each (exact), and every power-of-two range
//! `[2^e, 2^(e+1))` above that is split into 64 equal sub-buckets. A
//! bucket's width is therefore at most 1/64 of its lower bound, so any
//! quantile read from bucket upper edges overestimates the true value by
//! less than 1.5625% — comfortably inside the documented 2% relative-error
//! bound (property-tested against an exact sorted reference in
//! `tests/tests/properties.rs`).
//!
//! `record` is wait-free: one `leading_zeros`, three relaxed `fetch_add`s.
//! There is no lock anywhere, so shards can share one histogram behind an
//! `Arc` (the sharded engine does exactly that), and independent histograms
//! can still be merged bucket-by-bucket ([`HistogramSnapshot::merge`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two range, as a shift. 6 bits = 64
/// sub-buckets = a worst-case bucket width of 1/64 of the value, the ~2%
/// relative-error budget of the crate docs.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 64 exact buckets for values `0..64`, then 64
/// sub-buckets for each exponent `6..=63`.
const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let e = 63 - u64::from(value.leading_zeros());
        (SUB + (e - u64::from(SUB_BITS)) * SUB + ((value >> (e - u64::from(SUB_BITS))) - SUB))
            as usize
    }
}

/// Largest value stored in bucket `index` (the Prometheus `le` edge).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let octave = (index - SUB) / SUB;
        let within = (index - SUB) % SUB;
        let upper = ((u128::from(SUB + within + 1)) << octave) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }
}

/// A fixed-size, lock-free histogram with log-linear buckets (see the
/// module docs). All methods take `&self`; concurrent recorders never
/// block each other.
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free; relaxed ordering (monitoring
    /// data, not synchronization).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`, about
    /// 584 years).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Not a single atomic snapshot —
    /// recorders racing the copy may be partially included, which is fine
    /// for monitoring; the copy is internally consistent enough that
    /// `count == buckets.sum()` holds for all settled recordings.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Convenience: the `q`-quantile of a fresh [`Self::snapshot`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// A non-atomic copy of a [`LogHistogram`], for quantile math and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), as the upper edge of the bucket
    /// holding the rank-`ceil(q·n)` observation — within 1/64 (~1.6%) above
    /// the exact order statistic, and exact for values below 64. Returns 0
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Adds `other`'s observations into `self` — bucket-wise, so merging
    /// per-shard snapshots is exactly the histogram of the concatenated
    /// recordings.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The non-empty buckets as `(upper_edge, count)` pairs, ascending by
    /// edge — the exposition layer renders these as cumulative Prometheus
    /// `_bucket{le=...}` samples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 2, 63] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 63);
        assert_eq!(s.quantile(0.5), 1);
    }

    #[test]
    fn bucket_round_trip_brackets_every_value() {
        // The bucket an arbitrary value lands in must cover it: upper edge
        // at or above the value, and within 1/64 relative error.
        for shift in 0..64u32 {
            for offset in [0u64, 1, 7] {
                let v = (1u64 << shift).saturating_add(offset.wrapping_mul(shift as u64));
                let upper = bucket_upper(bucket_index(v));
                assert!(upper >= v, "upper {upper} < value {v}");
                if v >= SUB {
                    // True error is strictly below 1/SUB; f64 rounding near
                    // 2^63 can land exactly on it.
                    let error = (upper - v) as f64 / v as f64;
                    assert!(error <= 1.0 / SUB as f64, "error {error} at value {v}");
                }
            }
        }
    }

    #[test]
    fn bucket_edges_are_strictly_increasing() {
        let mut previous = None;
        for i in 0..NUM_BUCKETS {
            let upper = bucket_upper(i);
            if let Some(p) = previous {
                assert!(upper > p, "edges not increasing at bucket {i}");
            }
            previous = Some(upper);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn extreme_values_are_accepted() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.snapshot().quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_stay_within_two_percent_of_exact() {
        let h = LogHistogram::new();
        let values: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &v in &values {
            h.record(v);
        }
        let snapshot = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = snapshot.quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            assert!(
                (got - exact) as f64 <= exact as f64 * 0.02,
                "q={q}: {got} more than 2% above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_bucketwise_concatenation() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let all = LogHistogram::new();
        for v in [3u64, 900, 70_000, 1] {
            a.record(v);
            all.record(v);
        }
        for v in [42u64, 5_000_000, 900] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * 7 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = LogHistogram::new();
        h.record_duration(Duration::from_micros(5));
        let p100 = h.quantile(1.0);
        assert!((5_000..=5_100).contains(&p100), "{p100}");
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }
}
