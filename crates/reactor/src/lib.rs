//! # pm-reactor
//!
//! Readiness polling behind a safe API, with no dependencies beyond the
//! libc every Rust std program already links.
//!
//! The serving layer needs to drive 100k+ mostly-idle subscriber sockets
//! from one thread, which means readiness notification — but the build has
//! no crates.io access, so this crate binds the raw syscalls itself:
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux, `poll(2)` elsewhere,
//! via small `extern "C"` declarations. All `unsafe` in the workspace lives
//! here (the engine crates stay `forbid(unsafe_code)`), wrapped by
//! [`Poller`], whose API cannot be misused into memory unsafety: file
//! descriptors are passed by value, event buffers are owned by the poller,
//! and the epoll fd is closed on drop.
//!
//! The crate also exposes the process' `RLIMIT_NOFILE` ([`nofile_limit`] /
//! [`raise_nofile_limit`]) so fd-hungry subscriber tests and benches can
//! ask for headroom and scale themselves to what they actually get.

#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_uint};
use std::time::Duration;

/// Which readiness a registration waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Readable or writable.
    ReadWrite,
}

impl Interest {
    fn readable(self) -> bool {
        matches!(self, Interest::Read | Interest::ReadWrite)
    }

    fn writable(self) -> bool {
        matches!(self, Interest::Write | Interest::ReadWrite)
    }
}

/// One readiness event: the registered token plus what the fd is ready for.
///
/// `hangup`/`error` can fire even when not asked for; the owner should
/// treat either as "try the I/O and observe the failure".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Ready for reading (or a peer half-close, which reads as EOF).
    pub readable: bool,
    /// Ready for writing.
    pub writable: bool,
    /// The peer hung up.
    pub hangup: bool,
    /// The fd is in an error state.
    pub error: bool,
}

/// A readiness poller: register fds with a token and an [`Interest`], then
/// [`Poller::wait`] for events. Level-triggered on every platform.
#[derive(Debug)]
pub struct Poller {
    sys: sys::Poller,
}

impl Poller {
    /// Creates a poller. The underlying fd is close-on-exec and closed on
    /// drop.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            sys: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token`. The caller keeps ownership of the fd
    /// and must [`Poller::deregister`] it before closing it.
    pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.sys.register(fd, token, interest)
    }

    /// Changes the token or interest of a registered fd.
    pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.sys.modify(fd, token, interest)
    }

    /// Removes a registration. Must be called before the fd is closed.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        self.sys.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// elapses; `None` waits forever), appending events to `events` after
    /// clearing it. Returns the number of events. `EINTR` retries
    /// internally.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(t) => c_int::try_from(t.as_millis()).unwrap_or(c_int::MAX),
        };
        self.sys.wait(events, timeout_ms)?;
        Ok(events.len())
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_int;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
    /// it (no padding between the 32-bit mask and the 64-bit data word).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: c_int,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable() {
            mask |= EPOLLIN;
        }
        if interest.writable() {
            mask |= EPOLLOUT;
        }
        mask
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flag word and returns an fd or
            // -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&mut self, op: c_int, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live stack value
            // that outlives the call; the kernel copies it synchronously.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd as c_int, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(
            &mut self,
            fd: i32,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: mask_of(interest),
                    data: token,
                }),
            )
        }

        pub(super) fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: mask_of(interest),
                    data: token,
                }),
            )
        }

        pub(super) fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<()> {
            let mut kernel: [EpollEvent; 1024] = [EpollEvent { events: 0, data: 0 }; 1024];
            let n = loop {
                // SAFETY: the buffer pointer and capacity describe a live
                // stack array; the kernel writes at most `maxevents`
                // entries before returning.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        kernel.as_mut_ptr(),
                        kernel.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for entry in &kernel[..n] {
                // A packed struct field cannot be borrowed; copy it out.
                let events = { entry.events };
                let data = { entry.data };
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLHUP | EPOLLRDHUP) != 0,
                    error: events & EPOLLERR != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: the fd was returned by epoll_create1 and is closed
            // exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Portable fallback: a registration table replayed through `poll(2)`
    /// on every wait. O(n) per wake-up, fine for the modest fd counts
    /// non-Linux development machines see.
    #[derive(Debug)]
    pub(super) struct Poller {
        registered: Vec<(i32, u64, Interest)>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Vec::new(),
            })
        }

        pub(super) fn register(
            &mut self,
            fd: i32,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            if self.registered.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub(super) fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            match self.registered.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub(super) fn deregister(&mut self, fd: i32) -> io::Result<()> {
            match self.registered.iter().position(|(f, _, _)| *f == fd) {
                Some(at) => {
                    self.registered.swap_remove(at);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable() { POLLIN } else { 0 }
                        | if interest.writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            loop {
                // SAFETY: the pointer/length pair describes a live vector;
                // the kernel writes only the `revents` fields.
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (slot, (_, token, _)) in fds.iter().zip(&self.registered) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    hangup: slot.revents & POLLHUP != 0,
                    error: slot.revents & POLLERR != 0,
                });
            }
            Ok(())
        }
    }
}

#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_uint = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_uint = 8;

extern "C" {
    fn getrlimit(resource: c_uint, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_uint, rlim: *const RLimit) -> c_int;
}

/// The process' `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut rlim = RLimit { cur: 0, max: 0 };
    // SAFETY: the pointer targets a live stack value the kernel fills.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut rlim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((rlim.cur, rlim.max))
}

/// Raises the soft `RLIMIT_NOFILE` towards `want`, lifting the hard limit
/// too when the process is privileged to. Returns the soft limit actually
/// in effect afterwards — callers holding many sockets should scale
/// themselves to the returned value rather than assume the ask succeeded.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    // Privileged processes may lift the hard limit with the soft one.
    if want > hard {
        let rlim = RLimit {
            cur: want,
            max: want,
        };
        // SAFETY: plain by-value struct pointer, read synchronously.
        if unsafe { setrlimit(RLIMIT_NOFILE, &rlim) } == 0 {
            return Ok(want);
        }
    }
    let cur = want.min(hard);
    let rlim = RLimit { cur, max: hard };
    // SAFETY: as above.
    if unsafe { setrlimit(RLIMIT_NOFILE, &rlim) } == 0 {
        return Ok(cur);
    }
    Err(io::Error::last_os_error())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_readable_and_writable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();

        // A fresh socket with room in its send buffer is writable.
        poller
            .register(client.as_raw_fd(), 7, Interest::ReadWrite)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Nothing to read yet: read-only interest times out.
        poller
            .modify(client.as_raw_fd(), 7, Interest::Read)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "{events:?}");

        // Peer data makes it readable.
        (&server).write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!((&client).read(&mut buf).unwrap(), 1);

        // Peer close reports readable (EOF) and usually hangup.
        drop(server);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);

        poller.deregister(client.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn deregistered_fd_errors_on_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut poller = Poller::new().unwrap();
        assert!(poller
            .modify(listener.as_raw_fd(), 1, Interest::Read)
            .is_err());
    }

    #[test]
    fn nofile_limit_reports_and_raises() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Asking for what we already have is a no-op success.
        assert!(raise_nofile_limit(soft).unwrap() >= soft);
    }
}
