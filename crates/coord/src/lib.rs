//! Cluster coordinator: a replicated object stream over partitioned
//! `pm-server` nodes.
//!
//! `pm-coord` turns N `pm-server --node` processes into one logical
//! engine speaking the unchanged text protocol:
//!
//! - **Objects are replicated.** Every `INGEST` batch is stamped with a
//!   sequence number (the id of its first object — ids double as log
//!   positions) and fanned to all nodes as `SEQ <n> INGEST <rows>`, with a
//!   per-node pipelined barrier so log order is apply order everywhere.
//!   Each node applies the batch against the *same* deterministic id
//!   stream, so replicas are state-identical, not merely convergent.
//! - **Users are partitioned.** Each node registers only the preferences
//!   of the users it owns — the [`pm_model::Partitioner`] hash over the
//!   node count, the same scheme the engine uses for shards — so the
//!   per-user frontier work (the actual cost driver in the paper's
//!   workload) splits across machines. `REGISTER`, `UPDATE`,
//!   `UNREGISTER`, `FRONTIER`, `QUERY`-per-user routing, `EXPORT` and
//!   `SUBSCRIBE` go to the owning node only.
//! - **Reads merge.** `QUERY` unions target lists across nodes, `STATS`
//!   and `METRICS` roll the cluster up with a per-node breakdown,
//!   `SNAPSHOT` reports the floor of the nodes' durable positions.
//! - **Failures degrade, not corrupt.** A dead node's key range answers
//!   `ERR degraded node=<n>` while every other range keeps serving; the
//!   node recovers through its own WAL plus a replay of the coordinator's
//!   retained batch backlog, fenced by sequence number so a batch lands
//!   exactly at its announced position or not at all.
//!
//! Membership is a static topology file ([`topology`]); there is no
//! consensus layer in v1 — the coordinator is the single sequencer, and
//! an honest one: every consistency claim above is enforced with explicit
//! fences rather than assumed.

pub mod cluster;
pub mod harness;
pub mod node;
pub mod obs;
pub mod serve;
pub mod topology;

pub use cluster::{Cluster, ClusterConfig, Routed};
pub use harness::{spawn_coordinator, spawn_node, spawn_node_at, NodeHandle, NodeSpec, TextClient};
pub use node::{NodeClient, NodeInfo};
pub use obs::CoordMetrics;
pub use serve::{serve, serve_with_signal, ServeConfig};
pub use topology::Topology;
