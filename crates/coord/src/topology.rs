//! Static cluster membership: an ordered list of node addresses.
//!
//! The v1 coordinator deliberately avoids consensus: the operator writes a
//! topology file with one `host:port` per non-empty line (`#` starts a
//! comment), and the **line order is the node id**. Every component that
//! names a node — degraded errors, `STATS` rollups, `pm_node_*` metric
//! labels, backlog replay logs — uses that id, so the file is the single
//! source of truth for the cluster shape. Changing the node *count*
//! changes user ownership (the [`pm_model::Partitioner`] hashes users over
//! the node count), so a resize is a migration, not an edit; swapping the
//! address behind an existing id is safe.

use std::path::Path;

/// An ordered set of node addresses; the index is the node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    addrs: Vec<String>,
}

impl Topology {
    /// Builds a topology from explicit addresses (tests, in-process
    /// harnesses). Fails on an empty list.
    pub fn new(addrs: Vec<String>) -> Result<Self, String> {
        if addrs.is_empty() {
            return Err("a topology needs at least one node".to_owned());
        }
        Ok(Self { addrs })
    }

    /// Parses topology-file text: one address per non-empty line, `#`
    /// comments (full-line or trailing) stripped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut addrs = Vec::new();
        for line in text.lines() {
            let line = match line.split_once('#') {
                Some((before, _)) => before,
                None => line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if !line.contains(':') {
                return Err(format!("node address `{line}` is not host:port"));
            }
            addrs.push(line.to_owned());
        }
        Self::new(addrs)
    }

    /// Loads and parses a topology file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read topology {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.addrs.len()
    }

    /// The address of node `id`.
    pub fn addr(&self, id: usize) -> &str {
        &self.addrs[id]
    }

    /// Iterates `(node id, address)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.addrs
            .iter()
            .enumerate()
            .map(|(id, a)| (id, a.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_addresses_in_id_order_with_comments() {
        let topo = Topology::parse(
            "# cluster of three\n\
             127.0.0.1:7001\n\
             \n\
             127.0.0.1:7002  # second node\n\
             127.0.0.1:7003\n",
        )
        .unwrap();
        assert_eq!(topo.nodes(), 3);
        assert_eq!(topo.addr(0), "127.0.0.1:7001");
        assert_eq!(topo.addr(2), "127.0.0.1:7003");
        let ids: Vec<usize> = topo.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_empty_and_malformed_files() {
        assert!(Topology::parse("# nothing but comments\n").is_err());
        assert!(Topology::parse("not-an-address\n").is_err());
    }
}
