//! Cluster-level observability: the coordinator's own `pm-obs` registry.
//!
//! The coordinator never merges node expositions — each node keeps serving
//! its own `METRICS` with the engine-level families. The coordinator's
//! exposition describes the *cluster*: per-node liveness, ownership and
//! applied position under `pm_node_*` (labelled `node="<id>"`), plus
//! cluster-wide totals under `pm_cluster_*` / `pm_coord_*`. The family
//! skeleton is fixed at startup from the node count, so a scrape's shape
//! only depends on the topology — the golden test normalizes the `node`
//! label and gets the same skeleton for one node or three.

use std::sync::Arc;

use pm_obs::{Counter, Gauge, LogHistogram, Registry};

/// Per-node and cluster-wide metric handles.
pub struct CoordMetrics {
    registry: Registry,
    /// `pm_cluster_seq`: the next sequence number (== objects replicated).
    pub cluster_seq: Arc<Gauge>,
    /// `pm_cluster_live`: nodes currently serving.
    pub cluster_live: Arc<Gauge>,
    /// `pm_coord_backlog_batches`: replicated batches retained for rejoin.
    pub backlog_batches: Arc<Gauge>,
    /// `pm_coord_requests_total`: client requests handled.
    pub requests: Arc<Counter>,
    /// `pm_coord_request_errors_total`: client requests answered `ERR`.
    pub errors: Arc<Counter>,
    /// `pm_coord_subscriptions`: live client subscriptions.
    pub subscriptions: Arc<Gauge>,
    /// `pm_node_up{node=..}`: 1 while the node serves, 0 while degraded.
    pub node_up: Vec<Arc<Gauge>>,
    /// `pm_node_users{node=..}`: users owned by the node.
    pub node_users: Vec<Arc<Gauge>>,
    /// `pm_node_next_id{node=..}`: the node's applied position.
    pub node_next_id: Vec<Arc<Gauge>>,
    /// `pm_node_rpc_ns{node=..}`: control round-trip latency (nanoseconds).
    pub node_rpc_ns: Vec<Arc<LogHistogram>>,
    /// `pm_node_replayed_batches_total{node=..}`: backlog batches replayed
    /// into the node across all rejoins.
    pub node_replays: Vec<Arc<Counter>>,
}

impl CoordMetrics {
    /// Registers the full cluster family set for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        let registry = Registry::new();
        let build = registry.counter(
            "pm_coord_build_info",
            "Coordinator build and topology identity (value is always 1)",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("nodes", &nodes.to_string()),
            ],
        );
        build.store(1);
        let cluster_nodes = registry.gauge("pm_cluster_nodes", "Nodes in the static topology", &[]);
        cluster_nodes.set(nodes as f64);
        let cluster_seq = registry.gauge(
            "pm_cluster_seq",
            "Next replication sequence number (objects replicated since genesis)",
            &[],
        );
        let cluster_live = registry.gauge(
            "pm_cluster_live",
            "Nodes currently serving (topology minus degraded)",
            &[],
        );
        let backlog_batches = registry.gauge(
            "pm_coord_backlog_batches",
            "Replicated ingest batches retained for rejoin replay",
            &[],
        );
        let requests = registry.counter(
            "pm_coord_requests_total",
            "Client requests handled by the coordinator",
            &[],
        );
        let errors = registry.counter(
            "pm_coord_request_errors_total",
            "Client requests answered with ERR (including degraded ranges)",
            &[],
        );
        let subscriptions = registry.gauge(
            "pm_coord_subscriptions",
            "Live client subscriptions across all nodes",
            &[],
        );
        let mut node_up = Vec::with_capacity(nodes);
        let mut node_users = Vec::with_capacity(nodes);
        let mut node_next_id = Vec::with_capacity(nodes);
        let mut node_rpc_ns = Vec::with_capacity(nodes);
        let mut node_replays = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let label = node.to_string();
            let labels: &[(&str, &str)] = &[("node", &label)];
            node_up.push(registry.gauge(
                "pm_node_up",
                "1 while the node serves its key range, 0 while degraded",
                labels,
            ));
            node_users.push(registry.gauge(
                "pm_node_users",
                "Users owned by the node (coordinator routing view)",
                labels,
            ));
            node_next_id.push(registry.gauge(
                "pm_node_next_id",
                "The node's applied position in the replicated object stream",
                labels,
            ));
            node_rpc_ns.push(registry.histogram(
                "pm_node_rpc_ns",
                "Control-connection round-trip latency in nanoseconds",
                labels,
            ));
            node_replays.push(registry.counter(
                "pm_node_replayed_batches_total",
                "Backlog batches replayed into the node across rejoins",
                labels,
            ));
        }
        Self {
            registry,
            cluster_seq,
            cluster_live,
            backlog_batches,
            requests,
            errors,
            subscriptions,
            node_up,
            node_users,
            node_next_id,
            node_rpc_ns,
            node_replays,
        }
    }

    /// Renders the Prometheus text-format exposition body.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl std::fmt::Debug for CoordMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordMetrics")
            .field("nodes", &self.node_up.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_carries_per_node_families() {
        let metrics = CoordMetrics::new(3);
        metrics.node_up[0].set(1.0);
        metrics.node_up[2].set(0.0);
        metrics.cluster_seq.set(42.0);
        let body = metrics.render();
        assert!(body.contains("pm_node_up{node=\"0\"} 1"), "{body}");
        assert!(body.contains("pm_node_up{node=\"2\"} 0"), "{body}");
        assert!(body.contains("pm_cluster_seq 42"), "{body}");
        assert!(body.contains("pm_cluster_nodes 3"), "{body}");
        assert!(
            body.contains("pm_node_replayed_batches_total{node=\"1\"} 0"),
            "{body}"
        );
    }
}
