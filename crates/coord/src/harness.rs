//! In-process cluster harness: spawn nodes and a coordinator on loopback
//! threads, each with a clean shutdown handle.
//!
//! Tests and benches use this to stand up an N-node cluster without
//! forking processes: every node is a real `pm-engine` reactor behind a
//! real TCP listener (so the coordinator's I/O paths are exercised end to
//! end), and [`NodeHandle::kill`] / [`spawn_node_at`] model a node crash
//! and restart on the same address — the same sequence an operator's
//! supervisor performs.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pm_engine::durability::recover_or_create;
use pm_engine::{
    serve_with_signal as node_serve_with_signal, shutdown_pair, BackendSpec, DurabilityConfig,
    EngineConfig, EngineService, ReactorConfig, ServerConfig, ShardedEngine, Shutdown,
};

use crate::cluster::{Cluster, ClusterConfig};
use crate::serve::{serve_with_signal as coord_serve_with_signal, ServeConfig};
use crate::topology::Topology;

/// How to build one node of an in-process cluster.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Backend spec (must agree across the cluster).
    pub backend: BackendSpec,
    /// Shard threads inside the node.
    pub shards: usize,
    /// Attributes per object.
    pub arity: usize,
    /// `QUERY` history bound.
    pub history: usize,
    /// Give the node a WAL so a kill/respawn recovers its state.
    pub wal: Option<DurabilityConfig>,
    /// Slow-op warning threshold of the node's service; `None` silences
    /// it (benches do — a saturated bench batch is *supposed* to be slow,
    /// and the log writes would perturb the measurement).
    pub slow_op: Option<Duration>,
}

impl NodeSpec {
    /// A node with the given backend and shard count, arity 4, history
    /// 4096, no WAL, and the server's default slow-op threshold.
    pub fn new(backend: BackendSpec, shards: usize) -> Self {
        Self {
            backend,
            shards,
            arity: 4,
            history: 4096,
            wal: None,
            slow_op: ServerConfig::default().slow_op,
        }
    }
}

/// A spawned server thread (node or coordinator) with its address and a
/// shutdown handle.
#[derive(Debug)]
pub struct NodeHandle {
    addr: String,
    shutdown: Shutdown,
    thread: JoinHandle<std::io::Result<()>>,
}

impl NodeHandle {
    /// The listener address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the server and joins its thread. Models a node crash from
    /// the cluster's point of view: every open connection drops.
    pub fn kill(self) {
        self.shutdown.shutdown();
        let _ = self.thread.join();
    }
}

/// Spawns a node on a fresh loopback port. An empty genesis: cluster
/// nodes start with no users and grow through `REGISTER` / replication.
pub fn spawn_node(spec: &NodeSpec) -> std::io::Result<NodeHandle> {
    spawn_node_at("127.0.0.1:0", spec)
}

/// Spawns a node on a specific address — respawning on a killed node's
/// address is how tests model a restart (the std listener sets
/// `SO_REUSEADDR`, so the port is immediately rebindable).
pub fn spawn_node_at(addr: &str, spec: &NodeSpec) -> std::io::Result<NodeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?.to_string();
    let service = match &spec.wal {
        Some(durability) => {
            let (service, _report) = recover_or_create(
                Vec::new(),
                &EngineConfig::new(spec.shards),
                &spec.backend,
                spec.arity,
                spec.history,
                durability,
            )?;
            service
        }
        None => EngineService::new(
            ShardedEngine::new(Vec::new(), &EngineConfig::new(spec.shards), &spec.backend),
            spec.backend.clone(),
            spec.arity,
            spec.history,
        ),
    }
    .with_slow_op(spec.slow_op);
    let (shutdown, signal) = shutdown_pair()?;
    let service = Arc::new(service);
    let thread = std::thread::spawn(move || {
        node_serve_with_signal(listener, service, ReactorConfig::default(), signal)
    });
    Ok(NodeHandle {
        addr,
        shutdown,
        thread,
    })
}

/// Spawns a coordinator over `topology` on a fresh loopback port. Fails
/// if any node is unreachable or the cluster is inconsistent (mixed
/// backends, diverged positions).
pub fn spawn_coordinator(topology: &Topology, config: ClusterConfig) -> Result<NodeHandle, String> {
    let cluster = Cluster::connect(topology, config)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    let (shutdown, signal) = shutdown_pair().map_err(|e| e.to_string())?;
    let thread = std::thread::spawn(move || {
        coord_serve_with_signal(listener, cluster, ServeConfig::default(), signal)
    });
    Ok(NodeHandle {
        addr,
        shutdown,
        thread,
    })
}

/// A blocking line-protocol client for tests and benches.
#[derive(Debug)]
pub struct TextClient {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl TextClient {
    /// Connects to `addr` with a generous read timeout so a wedged server
    /// fails a test instead of hanging it.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, stream })
    }

    /// One request/response round trip; the response has no newline.
    pub fn ask(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.recv()
    }

    /// Reads one pushed line (an `EVENT` or a terminal error).
    pub fn recv(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
