//! The coordinator's serving loop: one readiness reactor over the client
//! listener, every client connection and one *event connection* per node.
//!
//! Client traffic is the plain text protocol (the coordinator does not
//! speak frame mode; `HELLO frame` answers `ERR`). Request/response verbs
//! go through [`Cluster::handle`] synchronously — the control connections
//! are blocking with a read timeout, so a wedged node degrades instead of
//! hanging the loop forever.
//!
//! Subscriptions need an asynchronous channel: a node pushes `EVENT` lines
//! whenever a subscribed user's frontier changes. Each live node therefore
//! gets a second, nonblocking *event connection*, registered with the
//! poller. The coordinator subscribes **once per user** on that connection
//! and fans the node's `EVENT` lines out to every subscribed client
//! (refcounted); a second client subscribing to an already-subscribed user
//! gets its snapshot from a `FRONTIER` round trip on the same event
//! connection, which the node answers *in order with the event stream*, so
//! the snapshot is exactly consistent with the deltas already delivered.
//! When a node dies, every subscription it carried ends with a pushed
//! `ERR degraded node=<n>` line and the client must re-subscribe after the
//! node rejoins.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

use pm_engine::ShutdownSignal;
use pm_model::UserId;
use pm_reactor::{Interest, Poller};

use crate::cluster::{Cluster, Routed};
use crate::node::connect_stream;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-client outbox bound in bytes; a subscriber that stops reading
    /// is evicted with a terminal `ERR lagged`, like a node would.
    pub max_outbox: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_outbox: 1 << 20,
        }
    }
}

const LISTENER: u64 = 0;
const SHUTDOWN: u64 = u64::MAX;
/// Node `i`'s event connection is registered under `EVENT_BASE + i`.
const EVENT_BASE: u64 = 1;

/// A nonblocking buffered connection: line-split input, bounded output.
#[derive(Debug)]
struct Buffered {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_head: usize,
}

impl Buffered {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_head: 0,
        })
    }

    /// Reads whatever is available and returns the complete lines plus
    /// whether the peer reached EOF.
    fn read_lines(&mut self) -> std::io::Result<(Vec<String>, bool)> {
        let mut eof = false;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let mut lines = Vec::new();
        while let Some(at) = self.inbuf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = self.inbuf.drain(..=at).collect();
            let mut line = String::from_utf8_lossy(&raw[..at]).into_owned();
            while line.ends_with('\r') {
                line.pop();
            }
            lines.push(line);
        }
        Ok((lines, eof))
    }

    fn enqueue(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Writes as much buffered output as the socket accepts. Returns
    /// whether unsent bytes remain (the caller keeps write interest).
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_head < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_head..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_head += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_head == self.outbuf.len() {
            self.outbuf.clear();
            self.out_head = 0;
        }
        Ok(!self.outbuf.is_empty())
    }

    fn pending(&self) -> usize {
        self.outbuf.len() - self.out_head
    }
}

/// One client connection.
#[derive(Debug)]
struct Client {
    buf: Buffered,
    subscriptions: HashSet<UserId>,
    closing: bool,
}

/// An in-flight request on a node's event connection; responses arrive
/// in FIFO order, interleaved with (but distinguishable from) `EVENT`
/// pushes.
#[derive(Debug)]
enum Pending {
    /// First subscriber: a node-side `SUBSCRIBE` was sent.
    Subscribe { client: u64, user: UserId },
    /// Later subscriber: a `FRONTIER` snapshot was sent; the response is
    /// rewritten to `OK SUBSCRIBED` for the client.
    Snapshot { client: u64, user: UserId },
    /// A node-side `UNSUBSCRIBE` whose response nobody awaits.
    Discard,
}

/// One node's event connection plus its in-flight request queue.
#[derive(Debug)]
struct EventConn {
    buf: Buffered,
    pending: VecDeque<Pending>,
}

/// The refcounted node-side subscription for one user.
#[derive(Debug)]
struct SubState {
    node: usize,
    clients: Vec<u64>,
}

struct CoordServer {
    cluster: Cluster,
    config: ServeConfig,
    clients: HashMap<u64, Client>,
    event_conns: Vec<Option<EventConn>>,
    user_subs: HashMap<UserId, SubState>,
    next_token: u64,
}

/// Serves the cluster on `listener` until the process dies.
pub fn serve(listener: TcpListener, cluster: Cluster, config: ServeConfig) -> std::io::Result<()> {
    serve_impl(listener, cluster, config, None)
}

/// [`serve`] with an in-process shutdown handle (tests, benches): the
/// loop returns cleanly when the paired [`pm_engine::Shutdown`] fires.
pub fn serve_with_signal(
    listener: TcpListener,
    cluster: Cluster,
    config: ServeConfig,
    signal: ShutdownSignal,
) -> std::io::Result<()> {
    serve_impl(listener, cluster, config, Some(signal))
}

fn serve_impl(
    listener: TcpListener,
    cluster: Cluster,
    config: ServeConfig,
    signal: Option<ShutdownSignal>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::Read)?;
    if let Some(signal) = &signal {
        poller.register(signal.as_raw_fd(), SHUTDOWN, Interest::Read)?;
    }
    let nodes = cluster.nodes();
    let mut server = CoordServer {
        cluster,
        config,
        clients: HashMap::new(),
        event_conns: (0..nodes).map(|_| None).collect(),
        user_subs: HashMap::new(),
        next_token: EVENT_BASE + nodes as u64,
    };
    for node in 0..nodes {
        if server.cluster.is_up(node) {
            server.open_event_conn(node, &mut poller);
        }
    }
    server.reap_transitions(&mut poller);

    let mut events = Vec::new();
    loop {
        poller.wait(&mut events, None)?;
        let batch = std::mem::take(&mut events);
        for event in &batch {
            match event.token {
                SHUTDOWN => return Ok(()),
                LISTENER => server.accept_all(&listener, &mut poller),
                token if token < EVENT_BASE + nodes as u64 => {
                    let node = (token - EVENT_BASE) as usize;
                    server.event_conn_ready(node, event.readable, event.writable, &mut poller);
                }
                token => server.client_ready(token, event.readable, event.writable, &mut poller),
            }
            server.reap_transitions(&mut poller);
        }
        events = batch;
    }
}

impl CoordServer {
    fn accept_all(&mut self, listener: &TcpListener, poller: &mut Poller) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let buf = match Buffered::new(stream) {
                        Ok(buf) => buf,
                        Err(_) => continue,
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if poller
                        .register(buf.stream.as_raw_fd(), token, Interest::Read)
                        .is_err()
                    {
                        continue;
                    }
                    self.clients.insert(
                        token,
                        Client {
                            buf,
                            subscriptions: HashSet::new(),
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Applies node up/down transitions the cluster recorded during the
    /// last operation: drop dead nodes' event state, open fresh event
    /// connections for rejoined nodes.
    fn reap_transitions(&mut self, poller: &mut Poller) {
        for node in self.cluster.take_failures() {
            self.on_node_down(node, poller);
        }
        for node in self.cluster.take_rejoined() {
            self.open_event_conn(node, poller);
        }
    }

    fn open_event_conn(&mut self, node: usize, poller: &mut Poller) {
        if self.event_conns[node].is_some() {
            return;
        }
        let timeout = std::time::Duration::from_secs(5);
        let conn = connect_stream(self.cluster.node_addr(node), timeout)
            .ok()
            .and_then(|stream| Buffered::new(stream).ok())
            .and_then(|buf| {
                poller
                    .register(
                        buf.stream.as_raw_fd(),
                        EVENT_BASE + node as u64,
                        Interest::Read,
                    )
                    .ok()
                    .map(|()| buf)
            });
        match conn {
            Some(buf) => {
                self.event_conns[node] = Some(EventConn {
                    buf,
                    pending: VecDeque::new(),
                });
            }
            None => {
                pm_obs::warn!("pm_coord", "event connection failed", node = node);
                self.cluster.mark_down(node);
                // The failure is reaped by the caller.
            }
        }
    }

    /// A node died: close its event connection, terminate every
    /// subscription it carried with a pushed `ERR degraded` line.
    fn on_node_down(&mut self, node: usize, poller: &mut Poller) {
        if let Some(conn) = self.event_conns[node].take() {
            let _ = poller.deregister(conn.buf.stream.as_raw_fd());
            for pending in conn.pending {
                if let Pending::Subscribe { client, .. } | Pending::Snapshot { client, .. } =
                    pending
                {
                    self.push_line(client, &format!("ERR degraded node={node}"), poller);
                }
            }
        }
        let dropped: Vec<UserId> = self
            .user_subs
            .iter()
            .filter(|(_, state)| state.node == node)
            .map(|(&user, _)| user)
            .collect();
        for user in dropped {
            if let Some(state) = self.user_subs.remove(&user) {
                for client in state.clients {
                    if let Some(c) = self.clients.get_mut(&client) {
                        c.subscriptions.remove(&user);
                    }
                    self.push_line(client, &format!("ERR degraded node={node}"), poller);
                }
            }
        }
        self.refresh_subscription_gauge();
    }

    fn refresh_subscription_gauge(&self) {
        let total: usize = self.user_subs.values().map(|s| s.clients.len()).sum();
        self.cluster.metrics.subscriptions.set(total as f64);
    }

    /// Enqueues one line to a client and re-arms its write interest,
    /// evicting it if its outbox is over budget.
    fn push_line(&mut self, token: u64, line: &str, poller: &mut Poller) {
        let max_outbox = self.config.max_outbox;
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        if client.closing {
            return;
        }
        client.buf.enqueue(line);
        if client.buf.pending() > max_outbox {
            // Same contract as a node: a subscriber that stops reading is
            // evicted, not buffered without bound.
            client.buf.outbuf.clear();
            client.buf.out_head = 0;
            client.buf.enqueue("ERR lagged");
            client.closing = true;
        }
        self.arm_client(token, poller);
    }

    fn arm_client(&mut self, token: u64, poller: &mut Poller) {
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        let done = match client.buf.flush() {
            Ok(pending) => !pending,
            Err(_) => {
                self.drop_client(token, poller);
                return;
            }
        };
        if done && client.closing {
            self.drop_client(token, poller);
            return;
        }
        let interest = if done {
            Interest::Read
        } else {
            Interest::ReadWrite
        };
        let _ = poller.modify(client.buf.stream.as_raw_fd(), token, interest);
    }

    fn drop_client(&mut self, token: u64, poller: &mut Poller) {
        let Some(client) = self.clients.remove(&token) else {
            return;
        };
        let _ = poller.deregister(client.buf.stream.as_raw_fd());
        for user in client.subscriptions {
            self.release_subscription(user, token);
        }
        self.refresh_subscription_gauge();
    }

    /// Drops `client` from `user`'s subscription; when the last client is
    /// gone the node-side subscription is torn down too (unless responses
    /// are still in flight for the user, in which case the node-side
    /// subscription is left standing for the next subscriber).
    fn release_subscription(&mut self, user: UserId, client: u64) {
        let Some(state) = self.user_subs.get_mut(&user) else {
            return;
        };
        state.clients.retain(|&c| c != client);
        if !state.clients.is_empty() {
            return;
        }
        let node = state.node;
        let in_flight = self.event_conns[node].as_ref().is_some_and(|conn| {
            conn.pending.iter().any(|p| {
                matches!(p, Pending::Subscribe { user: u, .. } | Pending::Snapshot { user: u, .. } if *u == user)
            })
        });
        if in_flight {
            return;
        }
        self.user_subs.remove(&user);
        if let Some(conn) = self.event_conns[node].as_mut() {
            conn.buf.enqueue(&format!("UNSUBSCRIBE {}", user.raw()));
            conn.pending.push_back(Pending::Discard);
            let _ = conn.buf.flush();
        }
    }

    fn client_ready(&mut self, token: u64, readable: bool, writable: bool, poller: &mut Poller) {
        if !self.clients.contains_key(&token) {
            return;
        }
        if readable {
            let result = self
                .clients
                .get_mut(&token)
                .map(|client| client.buf.read_lines());
            match result {
                Some(Ok((lines, eof))) => {
                    for line in lines {
                        if self.clients.get(&token).map_or(true, |c| c.closing) {
                            break;
                        }
                        self.handle_client_line(token, &line, poller);
                    }
                    if eof {
                        if let Some(client) = self.clients.get_mut(&token) {
                            client.closing = true;
                        }
                    }
                }
                Some(Err(_)) => {
                    self.drop_client(token, poller);
                    return;
                }
                None => return,
            }
        }
        if writable || self.clients.get(&token).is_some_and(|c| c.closing) {
            self.arm_client(token, poller);
        }
    }

    fn handle_client_line(&mut self, token: u64, line: &str, poller: &mut Poller) {
        if line.trim().is_empty() {
            return;
        }
        match self.cluster.handle(line) {
            Routed::Line(text) => self.push_line(token, &text, poller),
            Routed::Bye(text) => {
                self.push_line(token, &text, poller);
                if let Some(client) = self.clients.get_mut(&token) {
                    client.closing = true;
                }
                self.arm_client(token, poller);
            }
            Routed::Subscribe(user) => self.subscribe(token, user, poller),
            Routed::Unsubscribe(user) => self.unsubscribe(token, user, poller),
        }
        self.reap_transitions(poller);
    }

    fn subscribe(&mut self, token: u64, user: UserId, poller: &mut Poller) {
        let node = self.cluster.owner_of(user);
        if !self.cluster.is_up(node) || self.event_conns[node].is_none() {
            self.cluster.metrics.errors.inc();
            self.push_line(token, &format!("ERR degraded node={node}"), poller);
            return;
        }
        if self
            .clients
            .get(&token)
            .is_some_and(|c| c.subscriptions.contains(&user))
        {
            self.cluster.metrics.errors.inc();
            self.push_line(
                token,
                &format!("ERR already subscribed to user {}", user.raw()),
                poller,
            );
            return;
        }
        let conn = self.event_conns[node]
            .as_mut()
            .expect("checked above: the event connection is open");
        match self.user_subs.entry(user) {
            Entry::Occupied(_) => {
                // The node-side subscription exists; this client only needs
                // a snapshot, answered in order with the event stream.
                conn.buf.enqueue(&format!("FRONTIER {}", user.raw()));
                conn.pending.push_back(Pending::Snapshot {
                    client: token,
                    user,
                });
            }
            Entry::Vacant(slot) => {
                conn.buf.enqueue(&format!("SUBSCRIBE {}", user.raw()));
                conn.pending.push_back(Pending::Subscribe {
                    client: token,
                    user,
                });
                slot.insert(SubState {
                    node,
                    clients: Vec::new(),
                });
            }
        }
        if conn.buf.flush().is_err() {
            self.cluster.mark_down(node);
        }
        self.reap_transitions(poller);
    }

    fn unsubscribe(&mut self, token: u64, user: UserId, poller: &mut Poller) {
        let subscribed = self
            .clients
            .get_mut(&token)
            .is_some_and(|c| c.subscriptions.remove(&user));
        if !subscribed {
            self.cluster.metrics.errors.inc();
            self.push_line(
                token,
                &format!("ERR not subscribed to user {}", user.raw()),
                poller,
            );
            return;
        }
        self.release_subscription(user, token);
        self.refresh_subscription_gauge();
        self.push_line(token, &format!("OK UNSUBSCRIBED {}", user.raw()), poller);
    }

    fn event_conn_ready(
        &mut self,
        node: usize,
        readable: bool,
        writable: bool,
        poller: &mut Poller,
    ) {
        let Some(conn) = self.event_conns[node].as_mut() else {
            return;
        };
        if writable {
            let _ = conn.buf.flush();
        }
        if !readable {
            return;
        }
        let (lines, eof) = match conn.buf.read_lines() {
            Ok(result) => result,
            Err(_) => (Vec::new(), true),
        };
        for line in lines {
            self.handle_event_line(node, &line, poller);
        }
        if eof {
            pm_obs::warn!("pm_coord", "event connection closed", node = node);
            self.cluster.mark_down(node);
            self.reap_transitions(poller);
        }
    }

    fn handle_event_line(&mut self, node: usize, line: &str, poller: &mut Poller) {
        if line.is_empty() {
            return;
        }
        if let Some(rest) = line.strip_prefix("EVENT ") {
            let user = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse::<u32>().ok())
                .map(UserId::new);
            if let Some(user) = user {
                let targets: Vec<u64> = self
                    .user_subs
                    .get(&user)
                    .map(|state| state.clients.clone())
                    .unwrap_or_default();
                for client in targets {
                    self.push_line(client, line, poller);
                }
            }
            return;
        }
        let Some(pending) = self.event_conns[node]
            .as_mut()
            .and_then(|conn| conn.pending.pop_front())
        else {
            // A non-EVENT line with nothing in flight: the node evicted
            // this connection (`ERR lagged`) or is otherwise confused.
            pm_obs::warn!(
                "pm_coord",
                "unexpected line on event connection",
                node = node,
                line = line
            );
            self.cluster.mark_down(node);
            self.reap_transitions(poller);
            return;
        };
        match pending {
            Pending::Subscribe { client, user } => {
                if line.starts_with("OK SUBSCRIBED ") {
                    self.confirm_subscription(node, client, user);
                    self.push_line(client, line, poller);
                } else {
                    // The node refused (e.g. unknown user): no node-side
                    // subscription exists, so forget the placeholder
                    // unless a later subscriber already piled on.
                    if self
                        .user_subs
                        .get(&user)
                        .is_some_and(|state| state.clients.is_empty())
                    {
                        self.user_subs.remove(&user);
                    }
                    self.cluster.metrics.errors.inc();
                    self.push_line(client, line, poller);
                }
            }
            Pending::Snapshot { client, user } => {
                let prefix = format!("OK FRONTIER {} ", user.raw());
                if let Some(snapshot) = line.strip_prefix(&prefix) {
                    if self.user_subs.contains_key(&user) {
                        self.confirm_subscription(node, client, user);
                        self.push_line(
                            client,
                            &format!("OK SUBSCRIBED {} {snapshot}", user.raw()),
                            poller,
                        );
                    } else {
                        self.cluster.metrics.errors.inc();
                        self.push_line(client, &format!("ERR degraded node={node}"), poller);
                    }
                } else {
                    self.cluster.metrics.errors.inc();
                    self.push_line(client, line, poller);
                }
            }
            Pending::Discard => {}
        }
    }

    fn confirm_subscription(&mut self, node: usize, client: u64, user: UserId) {
        let state = self.user_subs.entry(user).or_insert(SubState {
            node,
            clients: Vec::new(),
        });
        if !state.clients.contains(&client) {
            state.clients.push(client);
        }
        if let Some(c) = self.clients.get_mut(&client) {
            c.subscriptions.insert(user);
        }
        self.refresh_subscription_gauge();
    }
}
