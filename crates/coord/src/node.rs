//! The coordinator's control connection to one node.
//!
//! Each node gets one blocking TCP connection carrying strict
//! request/response traffic (the coordinator's event connections — the
//! `SUBSCRIBE` side — live in the serve loop, where they are polled).
//! Requests can be *pipelined*: [`NodeClient::send`] writes without
//! waiting, [`NodeClient::recv`] reads one response line, and the
//! replication barrier writes to every node before reading from any —
//! per-node responses arrive in request order, so log order is apply
//! order.
//!
//! Any I/O failure (connect, write, read, timeout) drops the connection
//! and leaves the client in the *down* state; the cluster layer translates
//! that into degraded serving for the node's key range until a rejoin
//! succeeds.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What a node reports in its `HELLO node` handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Backend spec string (must agree across the cluster).
    pub backend: String,
    /// Per-node shard thread count (must agree across the cluster).
    pub shards: usize,
    /// Attributes per object (must agree across the cluster).
    pub arity: usize,
    /// The node's applied position: the id the next ingested object will
    /// be assigned. The coordinator fences backlog replay against it.
    pub next_id: u64,
}

/// A control connection to one node; `None` while the node is down.
#[derive(Debug)]
pub struct NodeClient {
    addr: String,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NodeClient {
    /// A client for `addr`, initially disconnected.
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_owned(),
            conn: None,
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the control connection is up.
    pub fn is_up(&self) -> bool {
        self.conn.is_some()
    }

    /// Drops the control connection (the node is considered down until the
    /// next [`NodeClient::connect`]).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Connects and performs the `HELLO node` handshake, returning the
    /// node's identity and applied position. Replaces any existing
    /// connection.
    pub fn connect(&mut self, timeout: Duration) -> Result<NodeInfo, String> {
        self.conn = None;
        let stream = connect_stream(&self.addr, timeout)?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("node {}: {e}", self.addr))?,
        );
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        let line = self.request("HELLO node").map_err(|e| e.to_string())?;
        let info = parse_node_hello(&line)
            .ok_or_else(|| format!("node {}: unexpected handshake `{line}`", self.addr))?;
        Ok(info)
    }

    /// Writes one request line without waiting for the response.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        let conn = self.conn.as_mut().ok_or_else(down)?;
        let result = conn
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"));
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Reads one response line (without the newline). EOF is an error: a
    /// control connection only closes when the node dies.
    pub fn recv(&mut self) -> std::io::Result<String> {
        let conn = self.conn.as_mut().ok_or_else(down)?;
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(0) => {
                self.conn = None;
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "node closed the control connection",
                ))
            }
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(line)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// One blocking round trip.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()
    }
}

fn down() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::NotConnected, "node is down")
}

/// Connects a plain TCP stream to `addr` with connect and read timeouts.
/// Used for both control and event connections.
pub fn connect_stream(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    use std::net::ToSocketAddrs;
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("node {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("node {addr}: address resolves to nothing"))?;
    let stream =
        TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| format!("node {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("node {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("node {addr}: {e}"))?;
    Ok(stream)
}

/// Parses `OK HELLO pm-node proto=text version=.. backend=.. shards=..
/// arity=.. next_id=..` into a [`NodeInfo`]. Returns `None` on anything
/// else (including a plain `pm-server` hello: the target is not in node
/// mode).
pub fn parse_node_hello(line: &str) -> Option<NodeInfo> {
    let mut tokens = line.split_whitespace();
    if (tokens.next(), tokens.next(), tokens.next()) != (Some("OK"), Some("HELLO"), Some("pm-node"))
    {
        return None;
    }
    let mut backend = None;
    let mut shards = None;
    let mut arity = None;
    let mut next_id = None;
    for token in tokens {
        if let Some((key, value)) = token.split_once('=') {
            match key {
                "backend" => backend = Some(value.to_owned()),
                "shards" => shards = value.parse().ok(),
                "arity" => arity = value.parse().ok(),
                "next_id" => next_id = value.parse().ok(),
                _ => {}
            }
        }
    }
    Some(NodeInfo {
        backend: backend?,
        shards: shards?,
        arity: arity?,
        next_id: next_id?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_node_handshake() {
        let info = parse_node_hello(
            "OK HELLO pm-node proto=text version=0.1.0 backend=ftv:0.4:compact \
             shards=2 arity=4 next_id=17",
        )
        .unwrap();
        assert_eq!(
            info,
            NodeInfo {
                backend: "ftv:0.4:compact".to_owned(),
                shards: 2,
                arity: 4,
                next_id: 17,
            }
        );
    }

    #[test]
    fn rejects_a_client_mode_hello() {
        assert!(parse_node_hello(
            "OK HELLO pm-server proto=text version=0.1.0 backend=baseline shards=2 arity=4"
        )
        .is_none());
        assert!(parse_node_hello("ERR nope").is_none());
    }
}
